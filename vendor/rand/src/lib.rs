//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset this repository uses — [`SeedableRng`],
//! [`Rng::gen`], [`Rng::gen_bool`], [`Rng::gen_range`] and
//! [`rngs::StdRng`] — over a SplitMix64 core. Deterministic for a given
//! seed, which is all the simulator requires; it is **not** the same
//! stream as the real `StdRng`, so traces differ from registry builds.

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (stand-in for `Standard` sampling).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample(rng: &mut impl RngCore) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample_from(self, rng: &mut impl RngCore) -> T;
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample(self) < p
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore> Rng for R {}

macro_rules! int_standard {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample(rng: &mut impl RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample(rng: &mut impl RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample(rng: &mut impl RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types with uniform range sampling. Mirrors the real crate's trait of
/// the same name so that `gen_range(0..100)` resolves the literal's type
/// from context (via the single generic [`SampleRange`] impl) instead of
/// falling back to `i32`.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)`.
    fn sample_half_open(lo: Self, hi: Self, rng: &mut impl RngCore) -> Self;
    /// Samples uniformly from `[lo, hi]`.
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut impl RngCore) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: $t, hi: $t, rng: &mut impl RngCore) -> $t {
                assert!(lo < hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
            fn sample_inclusive(lo: $t, hi: $t, rng: &mut impl RngCore) -> $t {
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open(lo: f64, hi: f64, rng: &mut impl RngCore) -> f64 {
        lo + f64::sample(rng) * (hi - lo)
    }
    fn sample_inclusive(lo: f64, hi: f64, rng: &mut impl RngCore) -> f64 {
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from(self, rng: &mut impl RngCore) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from(self, rng: &mut impl RngCore) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (SplitMix64 core here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng {
                // Avoid the all-zero fixed point and decorrelate small seeds.
                state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x6A09_E667_F3BC_C909,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(0..10);
            assert!(v < 10);
            let w = r.gen_range(-0.25..=0.25f64);
            assert!((-0.25..=0.25).contains(&w));
            let x: i64 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
