//! Offline stand-in for `crossbeam`, providing the `channel` module the
//! simulator's scheduler uses, backed by `std::sync::mpsc`.

/// Multi-producer channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// The sending half of a channel. Clonable, `Sync` (unlike
    /// `std::sync::mpsc::SyncSender` before Rust 1.72 this wrapper is
    /// always `Sync` because access is serialized through a mutex).
    pub struct Sender<T> {
        inner: Arc<Mutex<mpsc::SyncSender<T>>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while the channel is full.
        ///
        /// # Errors
        ///
        /// Returns the value if the receiving half was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let tx = self.inner.lock().unwrap_or_else(|p| p.into_inner()).clone();
            tx.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of a channel. Clonable like the real crate's;
    /// clones share one queue through a mutex.
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] if every sender was dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let rx = self.inner.lock().unwrap_or_else(|p| p.into_inner());
            rx.recv().map_err(|_| RecvError)
        }

        /// Returns a pending value if one is ready.
        ///
        /// # Errors
        ///
        /// Returns an error if the channel is empty or disconnected.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            let rx = self.inner.lock().unwrap_or_else(|p| p.into_inner());
            rx.try_recv()
        }
    }

    /// Creates a bounded channel of the given capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                inner: Arc::new(Mutex::new(tx)),
            },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        // Serviceable stand-in: a large bounded queue.
        bounded(1 << 20)
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn bounded_roundtrip() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(7).unwrap();
        assert_eq!(rx.recv(), Ok(7));
    }

    #[test]
    fn disconnect_reported() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
        let (tx2, rx2) = bounded::<u32>(1);
        drop(tx2);
        assert_eq!(rx2.recv(), Err(RecvError));
    }
}
