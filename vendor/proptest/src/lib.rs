//! Offline stand-in for `proptest`.
//!
//! The build container has no crate registry, so the workspace patches
//! `proptest` to this subset: the [`Strategy`] trait, the combinators
//! this repository's tests use (`prop_map`, `prop_recursive`,
//! `prop_oneof!`, collections, simple regex-class string strategies)
//! and a [`proptest!`] macro that runs each property for
//! [`ProptestConfig::cases`] deterministic pseudo-random cases.
//!
//! Differences from the real crate: no shrinking (a failing case
//! reports its inputs via the panic message only), no persisted
//! regressions, and string strategies support only the
//! `CLASS{m,n}` patterns used in this workspace.

use std::collections::BTreeMap;
use std::sync::Arc;

/// Deterministic pseudo-random source for test-case generation
/// (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from an arbitrary label (test name).
    pub fn deterministic(label: &str) -> TestRng {
        // FNV-1a over the label, so each test gets its own stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h | 1 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> BoxedStrategy<O>
    where
        Self: Sized + 'static,
        F: Fn(Self::Value) -> O + 'static,
    {
        BoxedStrategy::new(move |rng| f(self.generate(rng)))
    }

    /// Generates via a strategy derived from each generated value.
    fn prop_flat_map<O, S2, F>(self, f: F) -> BoxedStrategy<O>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = O>,
        F: Fn(Self::Value) -> S2 + 'static,
    {
        BoxedStrategy::new(move |rng| f(self.generate(rng)).generate(rng))
    }

    /// Builds recursive values: `branch` receives the strategy for the
    /// previous depth level. `depth` levels are stacked eagerly; the
    /// node/item hints of the real crate are accepted and ignored.
    fn prop_recursive<F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> BoxedStrategy<Self::Value>,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = branch(strat);
        }
        strat
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::new(move |rng| self.generate(rng))
    }
}

/// A clonable, type-erased strategy.
pub struct BoxedStrategy<T> {
    gen_fn: Arc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy {
            gen_fn: Arc::clone(&self.gen_fn),
        }
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> BoxedStrategy<T> {
    /// Wraps a generation function.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
        BoxedStrategy {
            gen_fn: Arc::new(f),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen_fn)(rng)
    }
}

/// Strategy producing one constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Produces one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite floats over a wide range; NaN-free by construction.
        (rng.unit_f64() - 0.5) * 2e18
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Produces arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + (rng.next_u64() % (span.wrapping_add(1).max(1))) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

/// String strategies from `CLASS{m,n}` regex-like patterns: the only
/// regex forms this workspace's tests use. `CLASS` is `.` (printable
/// ASCII) or a bracket class of literal chars and `a-z`-style ranges.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

/// Parses `CLASS{m,n}` into (alphabet, m, n).
fn parse_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let brace = pat.find('{')?;
    let (class, counts) = pat.split_at(brace);
    let counts = counts.strip_prefix('{')?.strip_suffix('}')?;
    let (m, n) = counts.split_once(',')?;
    let (min, max) = (m.parse().ok()?, n.parse().ok()?);
    let mut chars = Vec::new();
    if class == "." {
        chars.extend((0x20u8..0x7f).map(char::from));
    } else {
        let inner: Vec<char> = class
            .strip_prefix('[')?
            .strip_suffix(']')?
            .chars()
            .collect();
        let mut i = 0;
        while i < inner.len() {
            if i + 2 < inner.len() && inner[i + 1] == '-' && inner[i + 2] != ']' {
                let (lo, hi) = (inner[i] as u32, inner[i + 2] as u32);
                chars.extend((lo..=hi).filter_map(char::from_u32));
                i += 3;
            } else {
                chars.push(inner[i]);
                i += 1;
            }
        }
    }
    if chars.is_empty() || min > max {
        return None;
    }
    Some((chars, min, max))
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Uniform choice between type-erased strategies (`prop_oneof!`).
pub fn one_of<T>(choices: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T>
where
    T: 'static,
{
    assert!(!choices.is_empty(), "prop_oneof! of nothing");
    BoxedStrategy::new(move |rng| {
        let i = rng.below(choices.len() as u64) as usize;
        choices[i].generate(rng)
    })
}

/// Weighted choice between type-erased strategies
/// (`prop_oneof![w => strategy, ...]`).
pub fn one_of_weighted<T>(choices: Vec<(u32, BoxedStrategy<T>)>) -> BoxedStrategy<T>
where
    T: 'static,
{
    assert!(!choices.is_empty(), "prop_oneof! of nothing");
    let total: u64 = choices.iter().map(|(w, _)| u64::from(*w)).sum();
    assert!(total > 0, "prop_oneof! weights sum to zero");
    BoxedStrategy::new(move |rng| {
        let mut pick = rng.below(total);
        for (w, s) in &choices {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    })
}

/// Collection strategies.
pub mod collection {
    use super::{BoxedStrategy, Strategy, TestRng};
    use std::collections::BTreeMap;

    /// Sizes acceptable to collection strategies.
    pub trait IntoSizeRange {
        /// Lower and upper bound (inclusive).
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    fn draw_len(rng: &mut TestRng, min: usize, max: usize) -> usize {
        min + rng.below((max - min + 1) as u64) as usize
    }

    /// A strategy for `Vec`s whose length falls in `size`.
    pub fn vec<S>(element: S, size: impl IntoSizeRange) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        let (min, max) = size.bounds();
        BoxedStrategy::new(move |rng| {
            let len = draw_len(rng, min, max);
            (0..len).map(|_| element.generate(rng)).collect()
        })
    }

    /// A strategy for `BTreeMap`s with `size` entries (before key
    /// deduplication, as in the real crate's minimum-size caveat).
    pub fn btree_map<K, V>(
        keys: K,
        values: V,
        size: impl IntoSizeRange,
    ) -> BoxedStrategy<BTreeMap<K::Value, V::Value>>
    where
        K: Strategy + 'static,
        V: Strategy + 'static,
        K::Value: Ord + 'static,
        V::Value: 'static,
    {
        let (min, max) = size.bounds();
        BoxedStrategy::new(move |rng| {
            let len = draw_len(rng, min, max);
            (0..len)
                .map(|_| (keys.generate(rng), values.generate(rng)))
                .collect()
        })
    }
}

/// Option strategies.
pub mod option {
    use super::{BoxedStrategy, Strategy};

    /// `None` half the time, `Some(inner)` otherwise.
    pub fn of<S>(inner: S) -> BoxedStrategy<Option<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        BoxedStrategy::new(move |rng| {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(inner.generate(rng))
            }
        })
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 128 }
    }
}

/// A failed (or rejected) property case. Test bodies may `return
/// Err(TestCaseError::fail(..))` or use `?`; the harness reports the
/// message and panics the test.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold.
    Fail(String),
    /// The generated input was unsuitable (counted as a skip by the real
    /// crate; treated as a failure here to keep the stand-in strict).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(reason) => write!(f, "{reason}"),
            TestCaseError::Reject(reason) => write!(f, "input rejected: {reason}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Declares property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running the body for each generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $( $(#[$attr:meta])* fn $name:ident ( $($p:pat in $s:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let case_rng = &mut rng;
                    let run = |rng: &mut $crate::TestRng| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $(let $p = $crate::Strategy::generate(&($s), rng);)*
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    if let Err(err) = run(case_rng) {
                        panic!("proptest case {case} failed: {err}");
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (no shrinking: plain assert_eq).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The glob-import surface test files expect.
pub mod prelude {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::{
        any, one_of, one_of_weighted, Any, Arbitrary, BoxedStrategy, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($w:expr => $s:expr),+ $(,)?) => {
        $crate::one_of_weighted(vec![$(($w, $crate::Strategy::boxed($s))),+])
    };
    ($($s:expr),+ $(,)?) => {
        $crate::one_of(vec![$($crate::Strategy::boxed($s)),+])
    };
}

// Referenced to keep the import above obviously used.
#[allow(unused)]
type _Unused = BTreeMap<u8, u8>;

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn string_patterns_parse() {
        let mut rng = TestRng::deterministic("t");
        for _ in 0..50 {
            let s = Strategy::generate(&"[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let d = Strategy::generate(&".{0,24}", &mut rng);
            assert!(d.len() <= 24);
        }
    }

    #[test]
    fn oneof_and_collections() {
        let mut rng = TestRng::deterministic("t2");
        let strat = prop_oneof![Just(1u8), Just(2u8)];
        let v = collection::vec(strat, 3..10);
        for _ in 0..20 {
            let xs = v.generate(&mut rng);
            assert!((3..10).contains(&xs.len()));
            assert!(xs.iter().all(|x| *x == 1 || *x == 2));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_works(x in 0u64..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            let _ = flip;
        }
    }

    proptest! {
        #[test]
        fn recursive_terminates(depth in 0u8..3) {
            let leaf = Just(0u32);
            let strat = leaf.prop_recursive(4, 16, 4, |inner| {
                inner.prop_map(|n| n + 1)
            });
            let mut rng = TestRng::deterministic("rec");
            let v = strat.generate(&mut rng);
            prop_assert!(v <= 4);
            let _ = depth;
        }
    }
}
