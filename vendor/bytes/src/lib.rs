//! Offline stand-in for the `bytes` crate.
//!
//! The build container has no access to a crate registry, so the
//! workspace patches `bytes` to this API-compatible subset (see
//! `[patch.crates-io]` in the workspace `Cargo.toml`). It provides the
//! pieces this repository actually uses: [`Bytes`] (cheaply clonable,
//! immutable), [`BytesMut`] (growable builder) and the [`BufMut`]
//! writer methods. Remove the patch to use the real crate when a
//! registry is reachable.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

// Like the real crate, comparisons and hashing look at the *contents*,
// never at the identity of the backing allocation — a sub-slice of one
// buffer equals a fresh copy of the same bytes.
impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wraps a static slice (copied here; the real crate borrows).
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-range sharing the same backing allocation.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && self.start + range.end <= self.end);
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for b in self.iter() {
            for esc in std::ascii::escape_default(*b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts to an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Writer methods for growable byte buffers (subset of the real trait).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, s: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, b: u8) {
        self.put_slice(&[b]);
    }

    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, n: u32) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Appends a little-endian u64.
    fn put_u64_le(&mut self, n: u64) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Appends a little-endian f64.
    fn put_f64_le(&mut self, x: f64) {
        self.put_slice(&x.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u8(1);
        b.put_u32_le(0x0403_0201);
        b.put_slice(b"xy");
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 7);
        assert_eq!(&frozen[..], &[1, 1, 2, 3, 4, b'x', b'y']);
        let s = frozen.slice(1..5);
        assert_eq!(&s[..], &[1, 2, 3, 4]);
        assert_eq!(s.to_vec(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn equality_and_clone() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::copy_from_slice(b"abc");
        assert_eq!(a, b);
        assert_eq!(a.clone(), b);
        assert!(Bytes::new().is_empty());
    }
}
