//! Offline stand-in for `criterion`.
//!
//! Runs each benchmark body for a short, fixed number of iterations and
//! prints a rough mean per-iteration time. No statistics, plots or
//! saved baselines — just enough to keep `benches/` compiling and
//! runnable without a crate registry.

use std::time::{Duration, Instant};

/// Re-export of the standard black box (the real crate's is compatible).
pub use std::hint::black_box;

/// Iteration count used by the stand-in (the real crate samples
/// adaptively).
const ITERS: u64 = 1000;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepted and ignored (the stand-in has a fixed budget).
    #[must_use]
    pub fn measurement_time(self, _d: Duration) -> Criterion {
        self
    }

    /// Accepted and ignored.
    #[must_use]
    pub fn warm_up_time(self, _d: Duration) -> Criterion {
        self
    }

    /// Accepted and ignored.
    #[must_use]
    pub fn sample_size(self, _n: usize) -> Criterion {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs one benchmark outside any group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) {
        run_one("", id, f);
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted and ignored (throughput reporting is not implemented).
    pub fn throughput(&mut self, _t: Throughput) {}

    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) {
        run_one(&self.name, &id.to_string(), f);
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_one(&self.name, &id.label, |b| f(b, input));
    }

    /// Ends the group (no-op).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Throughput annotation (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to each benchmark body to drive iterations.
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f` over a fixed number of iterations.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(f());
        }
        self.total = start.elapsed();
        self.iters = ITERS;
    }

    /// Lets the body time itself: `f(iters)` returns the measured
    /// duration for `iters` iterations.
    pub fn iter_custom(&mut self, mut f: impl FnMut(u64) -> Duration) {
        // Keep custom bodies (which may build whole simulations) cheap.
        let iters = 100;
        self.total = f(iters);
        self.iters = iters;
    }
}

fn run_one(group: &str, id: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let per = if b.iters > 0 {
        b.total.as_nanos() as f64 / b.iters as f64
    } else {
        0.0
    };
    println!(
        "bench {label:<40} {per:>12.1} ns/iter  (stub harness, {} iters)",
        b.iters
    );
}

/// Declares the benchmark entry list (compatible subset).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
