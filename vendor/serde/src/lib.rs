//! Offline stand-in for `serde`.
//!
//! The container building this repository has no crate registry, so the
//! workspace patches `serde` to this stub: marker traits plus no-op
//! derives. Nothing in the workspace calls serde's data model at
//! runtime — JSON emission is hand-rolled in `obs` — but the derives
//! keep every annotated type source-compatible with the real crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// Stand-in for the `serde::de` module path.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// Stand-in for the `serde::ser` module path.
pub mod ser {
    pub use super::Serialize;
}
