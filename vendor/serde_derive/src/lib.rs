//! Offline stand-in for `serde_derive`.
//!
//! Emits marker-trait impls for the stub `serde` crate: the stub's
//! `Serialize`/`Deserialize` traits carry no methods, so the derives
//! only need the type's name (and that it is non-generic, which holds
//! for every derived type in this workspace).

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the struct/enum a derive was applied to.
/// Returns `None` when the item is generic (no impl emitted — no type
/// in this workspace derives serde traits generically).
fn item_name(input: TokenStream) -> Option<String> {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Skip the attribute group (and `!` for inner attrs).
                if let Some(TokenTree::Punct(b)) = tokens.peek() {
                    if b.as_char() == '!' {
                        tokens.next();
                    }
                }
                tokens.next();
            }
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    _ => return None,
                };
                if let Some(TokenTree::Punct(p)) = tokens.peek() {
                    if p.as_char() == '<' {
                        return None; // generic item: skip
                    }
                }
                return Some(name);
            }
            _ => {}
        }
    }
    None
}

/// Derives the stub `serde::Serialize` marker.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match item_name(input) {
        Some(name) => format!("impl ::serde::Serialize for {name} {{}}")
            .parse()
            .unwrap(),
        None => TokenStream::new(),
    }
}

/// Derives the stub `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match item_name(input) {
        Some(name) => format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .unwrap(),
        None => TokenStream::new(),
    }
}
