//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the poison-free `lock()` signature this repository relies
//! on; poisoned std locks are recovered transparently (a panicking
//! simulated process must not wedge the scheduler's registry).

use std::sync::TryLockError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutex whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Mutex<T> {
        Mutex::new(value)
    }
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A reader-writer lock whose methods never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, recovering from poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write lock, recovering from poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
