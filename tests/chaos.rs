//! Chaos soak: every subsystem at once under a hostile network with
//! runtime fault injection, checking the invariants each layer promises.
//!
//! * network: 8% loss, 8% duplication, 25% jitter, plus partitions that
//!   open and heal mid-run and a service crash with checkpoint recovery;
//! * services: caching kv, migratory counter, stub queue, async
//!   replicated register — all driven concurrently by several clients;
//! * invariants: read-your-writes on private kv keys, monotonic register
//!   reads, queue exactly-once bounds, counter conservation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proxide::prelude::*;
use proxide::replication::register_replica_proxy;
use proxide::services::counter::{Counter, CounterClient};
use proxide::services::kv::{KvClient, KvStore};
use proxide::services::queue::{PrintQueue, QueueClient};

const CLIENTS: u32 = 5;
const ROUNDS: u64 = 40;

#[test]
fn chaos_soak_preserves_every_layer_invariant() {
    let cfg = NetworkConfig::lan()
        .with_loss(0.08)
        .with_duplicate(0.08)
        .with_jitter(0.25);
    let mut sim = Simulation::new(cfg, 777);
    let ns = spawn_name_server(&sim, NodeId(0));
    let factories = proxide::services::all_factories();

    spawn_service(
        &sim,
        NodeId(1),
        ns,
        "kv",
        ProxySpec::Caching(CachingParams::default()),
        || Box::new(KvStore::new()),
    );
    spawn_service_with_factories(
        &sim,
        NodeId(2),
        ns,
        "ctr",
        ProxySpec::Migratory { threshold: 15 },
        factories.clone(),
        || Box::new(Counter::new()),
    );
    spawn_service(&sim, NodeId(3), ns, "queue", ProxySpec::Stub, || {
        Box::new(PrintQueue::new())
    });
    spawn_replica_group(
        &sim,
        ns,
        ReplicaGroupConfig {
            service: "reg".into(),
            nodes: vec![NodeId(4), NodeId(5)],
            propagation: Propagation::Async,
            read_target: ReadTarget::Nearest,
        },
        || Box::new(RegisterObj(0)),
    );

    let acked_submissions = Arc::new(AtomicU64::new(0));
    let acked_incs = Arc::new(AtomicU64::new(0));
    let invariant_failures = Arc::new(AtomicU64::new(0));

    for c in 0..CLIENTS {
        let subs = Arc::clone(&acked_submissions);
        let incs = Arc::clone(&acked_incs);
        let fails = Arc::clone(&invariant_failures);
        let facs = factories.clone();
        sim.spawn(format!("client{c}"), NodeId(10 + c), move |ctx| {
            let mut rt = ClientRuntime::new(ns).with_factories(facs);
            register_replica_proxy(rt.binder_mut());
            let kv = match KvClient::bind(&mut rt, ctx, "kv") {
                Ok(h) => h,
                Err(_) => return,
            };
            let ctr = CounterClient::bind(&mut rt, ctx, "ctr").unwrap();
            let q = QueueClient::bind(&mut rt, ctx, "queue").unwrap();
            let reg = rt.bind(ctx, "reg").unwrap();

            let mut my_kv: Option<String> = None; // last acked value of MY key
            for round in 0..ROUNDS {
                // kv: write then read MY OWN key — RYW must hold since
                // nobody else touches it.
                let val = format!("r{round}");
                match kv.put(&mut rt, ctx, &format!("client{c}"), &val) {
                    Ok(_) => my_kv = Some(val),
                    Err(RpcError::Timeout { .. }) => my_kv = None, // ambiguous
                    Err(RpcError::Remote(_)) | Err(RpcError::Wire(_)) => {}
                    Err(RpcError::Stopped) => return,
                }
                if let Some(expect) = &my_kv {
                    if let Ok(Some(got)) = kv.get(&mut rt, ctx, &format!("client{c}")) {
                        if &got != expect {
                            fails.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
                // counter: count only acknowledged increments.
                match ctr.inc(&mut rt, ctx) {
                    Ok(_) => {
                        incs.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(RpcError::Stopped) => return,
                    Err(_) => {}
                }
                // queue: acked submissions must appear exactly once.
                match q.submit(&mut rt, ctx, &format!("c{c}r{round}")) {
                    Ok(_) => {
                        subs.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(RpcError::Stopped) => return,
                    Err(_) => {}
                }
                // register: reads go through the replica proxy, whose
                // version floor gives monotonic *versions*; with several
                // concurrent writers the *values* are arbitrary, so the
                // checkable invariant here is just that reads keep
                // working through partitions and replica lag.
                let _ = rt.invoke(ctx, reg, "read", Value::Null);
                if round % 7 == c as u64 % 7 {
                    let _ = rt.invoke(
                        ctx,
                        reg,
                        "write",
                        Value::record([("v", Value::U64(round * 100 + c as u64))]),
                    );
                }
                if ctx.sleep(Duration::from_millis(2)).is_err() {
                    return;
                }
            }
        });
    }

    // The saboteur: opens and heals partitions between random node pairs.
    sim.spawn("saboteur", NodeId(99), move |ctx| {
        for round in 0..6u32 {
            if ctx.sleep(Duration::from_millis(40)).is_err() {
                return;
            }
            let a = NodeId(1 + (ctx.rand_u64() % 5) as u32);
            let b = NodeId(10 + (ctx.rand_u64() % CLIENTS as u64) as u32);
            ctx.net().partition(a, b);
            if ctx.sleep(Duration::from_millis(20)).is_err() {
                return;
            }
            ctx.net().heal(a, b);
            let _ = round;
        }
    });

    sim.run();

    assert_eq!(
        invariant_failures.load(Ordering::SeqCst),
        0,
        "client-observed invariant violated under chaos"
    );

    // Exactly-once accounting: every acked operation executed exactly
    // once, so the acked totals are lower bounds on server state; the
    // queue/counter cannot exceed the attempt count either. Those bounds
    // are asserted structurally by the rpc and whole_system suites; the
    // soak's own success criteria are the zero client-observed invariant
    // failures above plus a panic-free, deadlock-free run to completion.
    assert!(acked_submissions.load(Ordering::SeqCst) > 0);
    assert!(acked_incs.load(Ordering::SeqCst) > 0);
}

/// Minimal register object for the replicated group.
struct RegisterObj(u64);

impl proxide::proxy_core::ServiceObject for RegisterObj {
    fn interface(&self) -> InterfaceDesc {
        InterfaceDesc::new(
            "chaos-register",
            [
                proxide::proxy_core::OpDesc::read_whole("read"),
                proxide::proxy_core::OpDesc::write_whole("write"),
            ],
        )
    }
    fn dispatch(
        &mut self,
        _ctx: &mut simnet::Ctx,
        op: &str,
        args: &Value,
    ) -> Result<Value, RemoteError> {
        match op {
            "read" => Ok(Value::U64(self.0)),
            "write" => {
                self.0 = args
                    .get_u64("v")
                    .map_err(|e| RemoteError::new(ErrorCode::BadArgs, e.to_string()))?;
                Ok(Value::Null)
            }
            other => Err(RemoteError::new(ErrorCode::NoSuchOp, other.to_owned())),
        }
    }
}
