//! Chaos soak: every subsystem at once under a hostile network with
//! runtime fault injection, checking the invariants each layer promises.
//!
//! * network: 8% loss, 8% duplication, 25% jitter, plus partitions that
//!   open and heal mid-run and a service crash with checkpoint recovery;
//! * services: caching kv, migratory counter, stub queue, async
//!   replicated register — all driven concurrently by several clients;
//! * invariants: read-your-writes on private kv keys, monotonic register
//!   reads, queue exactly-once bounds, counter conservation — plus the
//!   observability layer's own promises: every reply correlates to an
//!   allocated span, retransmissions share the original call's span, and
//!   the span graph is causally well-formed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proxide::prelude::*;
use proxide::replication::register_replica_proxy;
use proxide::services::counter::{Counter, CounterClient};
use proxide::services::kv::{KvClient, KvStore};
use proxide::services::queue::{PrintQueue, QueueClient};

const CLIENTS: u32 = 5;
const ROUNDS: u64 = 40;

#[test]
fn chaos_soak_preserves_every_layer_invariant() {
    let cfg = NetworkConfig::lan()
        .with_loss(0.08)
        .with_duplicate(0.08)
        .with_jitter(0.25);
    let mut sim = Simulation::new(cfg, 777);
    let ns = spawn_name_server(&sim, NodeId(0));
    let factories = proxide::services::all_factories();

    ServiceBuilder::new("kv")
        .spec(ProxySpec::Caching(CachingParams::default()))
        .object(|| Box::new(KvStore::new()))
        .spawn(&sim, NodeId(1), ns);
    ServiceBuilder::new("ctr")
        .spec(ProxySpec::Migratory { threshold: 15 })
        .factories(factories.clone())
        .object(|| Box::new(Counter::new()))
        .spawn(&sim, NodeId(2), ns);
    ServiceBuilder::new("queue")
        .object(|| Box::new(PrintQueue::new()))
        .spawn(&sim, NodeId(3), ns);
    spawn_replica_group(
        &sim,
        ns,
        ReplicaGroupConfig {
            service: "reg".into(),
            nodes: vec![NodeId(4), NodeId(5)],
            propagation: Propagation::Async,
            read_target: ReadTarget::Nearest,
        },
        || Box::new(RegisterObj(0)),
    );

    let acked_submissions = Arc::new(AtomicU64::new(0));
    let acked_incs = Arc::new(AtomicU64::new(0));
    let invariant_failures = Arc::new(AtomicU64::new(0));

    for c in 0..CLIENTS {
        let subs = Arc::clone(&acked_submissions);
        let incs = Arc::clone(&acked_incs);
        let fails = Arc::clone(&invariant_failures);
        let facs = factories.clone();
        sim.spawn(format!("client{c}"), NodeId(10 + c), move |ctx| {
            let mut rt = ClientRuntime::new(ns).with_factories(facs);
            register_replica_proxy(rt.binder_mut());
            let mut s = Session::new(&mut rt, ctx);
            let kv = match KvClient::bind(&mut s, "kv") {
                Ok(h) => h,
                Err(_) => return,
            };
            let ctr = CounterClient::bind(&mut s, "ctr").unwrap();
            let q = QueueClient::bind(&mut s, "queue").unwrap();
            let reg = s.bind("reg").unwrap();

            let mut my_kv: Option<String> = None; // last acked value of MY key
            for round in 0..ROUNDS {
                // kv: write then read MY OWN key — RYW must hold since
                // nobody else touches it.
                let val = format!("r{round}");
                match kv.put(&mut s, &format!("client{c}"), &val) {
                    Ok(_) => my_kv = Some(val),
                    Err(RpcError::Timeout { .. }) => my_kv = None, // ambiguous
                    Err(RpcError::Remote(_)) | Err(RpcError::Wire(_)) => {}
                    Err(RpcError::Stopped) => return,
                }
                if let Some(expect) = &my_kv {
                    if let Ok(Some(got)) = kv.get(&mut s, &format!("client{c}")) {
                        if &got != expect {
                            fails.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
                // counter: count only acknowledged increments.
                match ctr.inc(&mut s) {
                    Ok(_) => {
                        incs.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(RpcError::Stopped) => return,
                    Err(_) => {}
                }
                // queue: acked submissions must appear exactly once.
                match q.submit(&mut s, &format!("c{c}r{round}")) {
                    Ok(_) => {
                        subs.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(RpcError::Stopped) => return,
                    Err(_) => {}
                }
                // register: reads go through the replica proxy, whose
                // version floor gives monotonic *versions*; with several
                // concurrent writers the *values* are arbitrary, so the
                // checkable invariant here is just that reads keep
                // working through partitions and replica lag.
                let _ = s.invoke(reg, "read", Value::Null);
                if round % 7 == c as u64 % 7 {
                    let _ = s.invoke(
                        reg,
                        "write",
                        Value::record([("v", Value::U64(round * 100 + c as u64))]),
                    );
                }
                if s.ctx().sleep(Duration::from_millis(2)).is_err() {
                    return;
                }
            }
        });
    }

    // The saboteur: opens and heals partitions between random node pairs.
    sim.spawn("saboteur", NodeId(99), move |ctx| {
        for round in 0..6u32 {
            if ctx.sleep(Duration::from_millis(40)).is_err() {
                return;
            }
            let a = NodeId(1 + (ctx.rand_u64() % 5) as u32);
            let b = NodeId(10 + (ctx.rand_u64() % CLIENTS as u64) as u32);
            ctx.net().partition(a, b);
            if ctx.sleep(Duration::from_millis(20)).is_err() {
                return;
            }
            ctx.net().heal(a, b);
            let _ = round;
        }
    });

    sim.run();

    assert_eq!(
        invariant_failures.load(Ordering::SeqCst),
        0,
        "client-observed invariant violated under chaos"
    );

    // Exactly-once accounting: every acked operation executed exactly
    // once, so the acked totals are lower bounds on server state; the
    // queue/counter cannot exceed the attempt count either. Those bounds
    // are asserted structurally by the rpc and whole_system suites; the
    // soak's own success criteria are the zero client-observed invariant
    // failures above plus a panic-free, deadlock-free run to completion.
    assert!(acked_submissions.load(Ordering::SeqCst) > 0);
    assert!(acked_incs.load(Ordering::SeqCst) > 0);

    // ---- Observability invariants, checked on the same hostile run ----
    let report = sim.obs_report();

    // Loss forced retransmissions, and each one inside an invocation
    // was attributed to that call's span (the client re-sends the same
    // encoded datagram, so the span is shared by construction). Only
    // bind-time and registration traffic runs outside a span, so the
    // span-attributed count is a nonzero lower bound on total retries.
    assert!(report.rpc.client.retries > 0, "chaos run saw no retries?");
    assert!(
        report.spans.retransmissions > 0,
        "no retransmission was attributed to its call's span"
    );
    assert!(
        report.spans.retransmissions <= report.rpc.client.retries,
        "more span retransmissions ({}) than rpc retries ({})?",
        report.spans.retransmissions,
        report.rpc.client.retries
    );

    // Every reply that reached a client correlated with a span this
    // registry actually allocated — duplicated replies may arrive late
    // (after their span closed) but never unknown.
    assert_eq!(
        report.spans.replies.unknown_span, 0,
        "reply correlated to a span nobody opened"
    );
    assert!(
        report.spans.replies.matched > 0,
        "no reply matched a live span"
    );

    // The span graph itself is causally well-formed: parents exist,
    // children do not start before their parents, dispatches are never
    // parented to one-way notifications.
    let violations = sim.obs().verify_causality();
    assert!(
        violations.is_empty(),
        "span causality violated: {violations:?}"
    );

    // The unified report covers the layers this soak exercised.
    assert!(report.net.msgs_dropped > 0, "lossy run dropped nothing?");
    assert!(report.rpc.server.executed > 0);
    assert!(
        report.ops.keys().any(|k| k.starts_with("kv/")),
        "kv latency histograms missing from report: {:?}",
        report.ops.keys().collect::<Vec<_>>()
    );
    assert!(!report.proxies.is_empty(), "proxy stats never published");
    assert!(!report.servers.is_empty(), "server stats never published");
}

/// Proxy self-repair counters under adversity: a lossy, partitioned
/// network must surface as `retries` and `rebinds` (stub re-resolving a
/// dead endpoint), and a phase-shifted workload must surface as
/// `strategy_switches` on an adaptive proxy. The soak above checks
/// invariants; this checks the *meters* the experiments read.
#[test]
fn proxy_stats_meter_adversity() {
    // Part 1: rebinds + retries. A stub client calls a migratable
    // counter through a lossy network; mid-run the object migrates, so
    // the old home answers `Moved` redirects and the proxy must repair
    // its binding. A partition window adds timeout pressure on top.
    let cfg = NetworkConfig::lan().with_loss(0.10).with_jitter(0.2);
    let mut sim = Simulation::new(cfg, 4242);
    let ns = spawn_name_server(&sim, NodeId(0));
    let factories = proxide::services::all_factories();
    let home = spawn_migratable(
        &sim,
        NodeId(1),
        ns,
        MigratableConfig::new("ctr"),
        factories.clone(),
        || Box::new(Counter::new()),
    );

    let observed = Arc::new(AtomicU64::new(0));
    let obs2 = Arc::clone(&observed);
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns).with_factories(factories);
        let mut s = Session::new(&mut rt, ctx);
        let ctr = CounterClient::bind(&mut s, "ctr").unwrap();
        for _ in 0..15 {
            let _ = ctr.inc(&mut s);
        }
        // Move the object: the stale binding now yields Moved redirects,
        // each repaired with a rebind to the forwarder's next hop.
        request_migration(s.ctx(), home, NodeId(3)).unwrap();
        for _ in 0..15 {
            let _ = ctr.inc(&mut s);
        }
        // A partition window forces timeouts too (retries under loss are
        // already guaranteed by the 10% drop rate).
        s.ctx().net().partition(NodeId(3), NodeId(2));
        let _ = ctr.get(&mut s);
        s.ctx().net().heal(NodeId(3), NodeId(2));
        let _ = ctr.get(&mut s);

        let stats = s.stats(ctr.handle());
        assert!(stats.invocations >= 32);
        assert!(
            stats.rebinds >= 1,
            "Moved redirects after migration must repair the binding: {stats:?}"
        );
        obs2.store(1, Ordering::SeqCst);
    });
    sim.run();
    assert_eq!(observed.load(Ordering::SeqCst), 1);

    // The lossy network must also show up as RPC retries in the unified
    // report, and the published per-proxy stats must match what the
    // client saw (the registry holds the last snapshot).
    let report = sim.obs_report();
    assert!(
        report.rpc.client.retries > 0,
        "10% loss produced no retransmissions?"
    );
    let proxy = report
        .proxies
        .get("ctr@client")
        .expect("client proxy stats published to the registry");
    assert!(proxy.rebinds >= 1);

    // Part 2: strategy_switches. Drive an adaptive proxy read-heavy
    // (caching turns on), then write-heavy (caching turns off): two
    // switches, visible both locally and in the registry.
    let mut sim = Simulation::new(NetworkConfig::lan(), 4343);
    let ns = spawn_name_server(&sim, NodeId(0));
    ServiceBuilder::new("adapt")
        .spec(ProxySpec::Adaptive(AdaptiveParams::default()))
        .object(|| Box::new(KvStore::new()))
        .spawn(&sim, NodeId(1), ns);
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let mut s = Session::new(&mut rt, ctx);
        let kv = KvClient::bind(&mut s, "adapt").unwrap();
        kv.put(&mut s, "k", "v").unwrap();
        for _ in 0..40 {
            kv.get(&mut s, "k").unwrap(); // read-heavy: caching turns on
        }
        for i in 0..40u64 {
            kv.put(&mut s, "k", &format!("v{i}")).unwrap(); // write-heavy: off again
        }
        let stats = s.stats(kv.handle());
        assert!(
            stats.strategy_switches >= 2,
            "read->write phase shift must toggle the adaptive strategy: {stats:?}"
        );
    });
    sim.run();
    let report = sim.obs_report();
    assert!(
        report
            .proxies
            .get("adapt@client")
            .is_some_and(|p| p.strategy_switches >= 2),
        "strategy switches not published to the registry"
    );
}

/// Pipelined traffic under chaos: a [`rpc::Channel`] keeps 8
/// non-idempotent calls in flight (sharing batch datagrams) through 30%
/// loss, 30% duplication and a partition window that opens and heals
/// mid-run. Out-of-order completion plus whole-batch duplication is the
/// worst case for the server's duplicate window — and the counter must
/// still never over-execute: executions ≤ acknowledged + timed-out.
#[test]
fn pipelined_chaos_never_over_executes() {
    use proxide::rpc::{Channel, ChannelConfig, RetryPolicy};

    let cfg = NetworkConfig::lan()
        .with_loss(0.30)
        .with_duplicate(0.30)
        .with_jitter(0.25);
    let mut sim = Simulation::new(cfg, 31337);
    let execs = Arc::new(AtomicU64::new(0));
    let e2 = Arc::clone(&execs);
    let server = sim.spawn_at("counter", NodeId(0), PortId(1), move |ctx| {
        let mut srv = RpcServer::new();
        srv.serve(
            ctx,
            |_ctx, req| match req.op.as_str() {
                "inc" => Ok(Value::U64(e2.fetch_add(1, Ordering::SeqCst) + 1)),
                other => Err(RemoteError::new(ErrorCode::NoSuchOp, other.to_owned())),
            },
            |_, _| {},
        );
    });

    let acked = Arc::new(AtomicU64::new(0));
    let timed_out = Arc::new(AtomicU64::new(0));
    let (a2, t2) = (Arc::clone(&acked), Arc::clone(&timed_out));
    sim.spawn("pipeliner", NodeId(1), move |ctx| {
        let cfg = ChannelConfig::with_depth(8)
            .batched(4)
            .with_policy(RetryPolicy::exponential(Duration::from_millis(4), 8));
        let mut ch = Channel::new("counter", server, cfg);
        let handles: Vec<_> = (0..160u64)
            .map(|_| ch.begin_call(ctx, "inc", Value::Null))
            .collect();
        for h in handles {
            match ch.wait(ctx, h) {
                Ok(_) => {
                    a2.fetch_add(1, Ordering::SeqCst);
                }
                Err(RpcError::Timeout { .. }) => {
                    t2.fetch_add(1, Ordering::SeqCst);
                }
                Err(RpcError::Stopped) => return,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
    });
    sim.spawn("saboteur", NodeId(99), move |ctx| {
        if ctx.sleep(Duration::from_millis(15)).is_err() {
            return;
        }
        ctx.net().partition(NodeId(0), NodeId(1));
        if ctx.sleep(Duration::from_millis(10)).is_err() {
            return;
        }
        ctx.net().heal(NodeId(0), NodeId(1));
    });
    sim.run();

    let (ok, timeouts) = (
        acked.load(Ordering::SeqCst),
        timed_out.load(Ordering::SeqCst),
    );
    let e = execs.load(Ordering::SeqCst);
    assert_eq!(ok + timeouts, 160, "every pipelined call settled");
    assert!(
        e >= ok,
        "every acknowledged call executed: {e} execs, {ok} acked"
    );
    assert!(
        e <= ok + timeouts,
        "over-execution under pipelined chaos: {e} execs for {ok} acked + {timeouts} timeouts"
    );
}

/// Minimal register object for the replicated group.
struct RegisterObj(u64);

impl proxide::proxy_core::ServiceObject for RegisterObj {
    fn interface(&self) -> InterfaceDesc {
        InterfaceDesc::new(
            "chaos-register",
            [
                proxide::proxy_core::OpDesc::read_whole("read"),
                proxide::proxy_core::OpDesc::write_whole("write"),
            ],
        )
    }
    fn dispatch(
        &mut self,
        _ctx: &mut simnet::Ctx,
        op: &str,
        args: &Value,
    ) -> Result<Value, RemoteError> {
        match op {
            "read" => Ok(Value::U64(self.0)),
            "write" => {
                self.0 = args
                    .get_u64("v")
                    .map_err(|e| RemoteError::new(ErrorCode::BadArgs, e.to_string()))?;
                Ok(Value::Null)
            }
            other => Err(RemoteError::new(ErrorCode::NoSuchOp, other.to_owned())),
        }
    }
}
