//! Whole-system integration tests: several services with different
//! proxy strategies coexisting in one simulated distributed system,
//! exercised through the public `proxide` API.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proxide::prelude::*;
use proxide::replication::register_replica_proxy;
use proxide::services::counter::{Counter, CounterClient};
use proxide::services::directory::{Directory, DirectoryClient};
use proxide::services::file::{BlockFile, FileClient};
use proxide::services::kv::{KvClient, KvStore};
use proxide::services::queue::{PrintQueue, QueueClient};

/// One client process bound to five services, each with a different
/// service-chosen strategy, all through the same runtime.
#[test]
fn five_services_five_strategies_one_client() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 100);
    let ns = spawn_name_server(&sim, NodeId(0));
    let factories = proxide::services::all_factories();

    ServiceBuilder::new("kv")
        .object(|| Box::new(KvStore::new()))
        .spawn(&sim, NodeId(1), ns);
    ServiceBuilder::new("files")
        // Pure invalidation coherence: entries live until written, so the
        // second read pass below hits even though it happens tens of
        // simulated milliseconds later.
        .spec(ProxySpec::Caching(CachingParams {
            coherence: Coherence::Invalidate,
            capacity: 1024,
        }))
        .object(|| Box::new(BlockFile::new()))
        .spawn(&sim, NodeId(2), ns);
    ServiceBuilder::new("counter")
        .spec(ProxySpec::Migratory { threshold: 5 })
        .factories(factories.clone())
        .object(|| Box::new(Counter::new()))
        .spawn(&sim, NodeId(3), ns);
    ServiceBuilder::new("queue")
        .spec(ProxySpec::Adaptive(AdaptiveParams::default()))
        .object(|| Box::new(PrintQueue::new()))
        .spawn(&sim, NodeId(4), ns);
    spawn_replica_group(
        &sim,
        ns,
        ReplicaGroupConfig {
            service: "dir".into(),
            nodes: vec![NodeId(5), NodeId(6)],
            propagation: Propagation::Sync,
            read_target: ReadTarget::Nearest,
        },
        || Box::new(Directory::new()),
    );

    let done = Arc::new(AtomicU64::new(0));
    let d = Arc::clone(&done);
    sim.spawn("client", NodeId(9), move |ctx| {
        let mut rt = ClientRuntime::new(ns).with_factories(factories);
        register_replica_proxy(rt.binder_mut());
        let mut s = Session::new(&mut rt, ctx);

        let kv = KvClient::bind(&mut s, "kv").unwrap();
        let fs = FileClient::bind(&mut s, "files").unwrap();
        let ctr = CounterClient::bind(&mut s, "counter").unwrap();
        let q = QueueClient::bind(&mut s, "queue").unwrap();
        let dir = DirectoryClient::bind(&mut s, "dir").unwrap();

        // Interleave operations across all five.
        for i in 0..20u64 {
            kv.put(&mut s, &format!("k{i}"), "v").unwrap();
            fs.write(&mut s, "f", i, vec![i as u8]).unwrap();
            ctr.inc(&mut s).unwrap();
            q.submit(&mut s, &format!("job{i}")).unwrap();
            dir.insert(&mut s, &format!("/p{i}"), "x").unwrap();
        }
        for pass in 0..2 {
            for i in 0..20u64 {
                assert_eq!(
                    kv.get(&mut s, &format!("k{i}")).unwrap().as_deref(),
                    Some("v")
                );
                assert_eq!(
                    fs.read(&mut s, "f", i).unwrap().as_deref(),
                    Some(&[i as u8][..])
                );
                assert!(dir.lookup(&mut s, &format!("/p{i}")).unwrap().is_some());
            }
            let _ = pass;
        }
        assert_eq!(ctr.get(&mut s).unwrap(), 20);
        assert_eq!(q.len(&mut s).unwrap(), 20);
        let job = q.take(&mut s).unwrap().unwrap();
        assert_eq!(job.doc, "job0");

        // The migratory counter should have localized.
        assert_eq!(s.stats(ctr.handle()).migrations, 1);
        // The caching file proxy fills on the first read pass and hits
        // on the whole second pass.
        assert!(s.stats(fs.handle()).local_hits >= 20);

        d.store(1, Ordering::SeqCst);
    });
    sim.run();
    assert_eq!(done.load(Ordering::SeqCst), 1);
}

/// The same workload gives byte-identical metrics across runs with the
/// same seed — the determinism the whole experiment suite relies on.
#[test]
fn whole_system_is_deterministic() {
    fn run(seed: u64) -> (u64, u64, u64) {
        let mut sim = Simulation::new(NetworkConfig::lan().with_jitter(0.2).with_loss(0.05), seed);
        let ns = spawn_name_server(&sim, NodeId(0));
        ServiceBuilder::new("kv")
            .spec(ProxySpec::Caching(CachingParams::default()))
            .object(|| Box::new(KvStore::new()))
            .spawn(&sim, NodeId(1), ns);
        for c in 0..3u32 {
            sim.spawn(format!("c{c}"), NodeId(2 + c), move |ctx| {
                let mut rt = ClientRuntime::new(ns);
                let mut s = Session::new(&mut rt, ctx);
                let kv = KvClient::bind(&mut s, "kv").unwrap();
                for i in 0..30u64 {
                    let key = format!("k{}", i % 7);
                    if i % 3 == 0 {
                        let _ = kv.put(&mut s, &key, "x");
                    } else {
                        let _ = kv.get(&mut s, &key);
                    }
                }
            });
        }
        let r = sim.run();
        (
            r.end_time.as_nanos(),
            r.metrics.msgs_sent,
            r.metrics.msgs_dropped,
        )
    }
    assert_eq!(run(1234), run(1234));
    assert_ne!(run(1234), run(1235));
}

/// Services keep their contracts under a hostile network: loss,
/// duplication and jitter simultaneously.
#[test]
fn queue_is_exactly_once_under_hostile_network() {
    let cfg = NetworkConfig::lan()
        .with_loss(0.15)
        .with_duplicate(0.15)
        .with_jitter(0.3);
    let mut sim = Simulation::new(cfg, 200);
    let ns = spawn_name_server(&sim, NodeId(0));
    ServiceBuilder::new("printq")
        .object(|| Box::new(PrintQueue::new()))
        .spawn(&sim, NodeId(1), ns);
    let submitted = Arc::new(AtomicU64::new(0));
    let s2 = Arc::clone(&submitted);
    sim.spawn("submitter", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let mut s = Session::new(&mut rt, ctx);
        let q = QueueClient::bind(&mut s, "printq").unwrap();
        let mut ok = 0u64;
        for i in 0..60 {
            match q.submit(&mut s, &format!("doc{i}")) {
                Ok(_) => ok += 1,
                Err(RpcError::Timeout { .. }) => {} // may have executed; counted below
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        s2.store(ok, Ordering::SeqCst);
        // Drain: the queue length must be between the acknowledged count
        // (every acked submit executed exactly once) and 60.
        let len = q.len(&mut s).unwrap();
        assert!(len >= ok, "acked submissions missing: {len} < {ok}");
        assert!(len <= 60, "duplicate executions inflated the queue: {len}");
    });
    sim.run();
    assert!(submitted.load(Ordering::SeqCst) > 0);
}

/// A migratable service and a caching service interact: migration of one
/// object does not disturb the other service's coherence.
#[test]
fn migration_and_caching_coexist() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 300);
    let ns = spawn_name_server(&sim, NodeId(0));
    let factories = proxide::services::all_factories();

    let home = spawn_migratable(
        &sim,
        NodeId(1),
        ns,
        MigratableConfig::new("ctr").with_naming_updates(),
        factories.clone(),
        || Box::new(Counter::new()),
    );
    ServiceBuilder::new("kv")
        .spec(ProxySpec::Caching(CachingParams {
            coherence: Coherence::Invalidate,
            capacity: 128,
        }))
        .object(|| Box::new(KvStore::new()))
        .spawn(&sim, NodeId(2), ns);

    sim.spawn("client", NodeId(3), move |ctx| {
        let mut rt = ClientRuntime::new(ns).with_factories(factories);
        let mut s = Session::new(&mut rt, ctx);
        let ctr = CounterClient::bind(&mut s, "ctr").unwrap();
        let kv = KvClient::bind(&mut s, "kv").unwrap();

        kv.put(&mut s, "a", "1").unwrap();
        assert_eq!(kv.get(&mut s, "a").unwrap().as_deref(), Some("1"));
        ctr.inc(&mut s).unwrap();

        // Move the counter to another node mid-session.
        request_migration(s.ctx(), home, NodeId(4)).unwrap();

        // Both services still work; cached kv entry still valid.
        assert_eq!(ctr.inc(&mut s).unwrap(), 2);
        assert_eq!(kv.get(&mut s, "a").unwrap().as_deref(), Some("1"));
        let kv_stats = s.stats(kv.handle());
        assert_eq!(kv_stats.local_hits, 1, "cache disturbed by migration");
    });
    sim.run();
}

/// Node crash: calls time out, and after the node comes back (state
/// intact in this model), the same proxies keep working.
#[test]
fn crash_and_recovery_through_same_proxy() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 400);
    let ns = spawn_name_server(&sim, NodeId(0));
    ServiceBuilder::new("kv")
        .object(|| Box::new(KvStore::new()))
        .spawn(&sim, NodeId(1), ns);
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let mut s = Session::new(&mut rt, ctx);
        let kv = KvClient::bind(&mut s, "kv").unwrap();
        kv.put(&mut s, "x", "1").unwrap();

        s.ctx().net().take_down(NodeId(1));
        match kv.get(&mut s, "x") {
            Err(RpcError::Timeout { .. }) => {}
            other => panic!("expected timeout while down, got {other:?}"),
        }

        s.ctx().net().bring_up(NodeId(1));
        assert_eq!(kv.get(&mut s, "x").unwrap().as_deref(), Some("1"));
    });
    sim.run();
}
