#!/usr/bin/env bash
# Local CI gate: everything a PR must pass.
#
#   ./ci.sh          # full gate
#   ./ci.sh quick    # skip the release build (fmt + clippy + tests)
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo test (workspace)"
cargo test --workspace -q

if [ "${1:-}" != "quick" ]; then
  step "cargo build --release (experiment harness)"
  cargo build --release -p bench
fi

printf '\nci.sh: all green\n'
