#!/usr/bin/env bash
# Local CI gate: everything a PR must pass.
#
#   ./ci.sh          # full gate
#   ./ci.sh quick    # skip the release build (fmt + clippy + tests)
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo test (workspace)"
cargo test --workspace -q

if [ "${1:-}" != "quick" ]; then
  step "cargo build --release (experiment harness)"
  cargo build --release -p bench

  step "cargo bench --no-run (Criterion benches must compile)"
  cargo bench -p bench --no-run

  step "E14 macro-benchmark smoke (closed-loop hot path + BENCH_e14.json)"
  # Shrunken workload; asserts the closed loop completes, the run is
  # deterministic, batching beats 2 msgs/call, and the artifact writes.
  # PROXIDE_BENCH_DIR keeps the committed full-mode BENCH_e14.json intact.
  PROXIDE_E14_SMOKE=1 PROXIDE_BENCH_DIR=target \
    cargo run -q --release -p bench --bin e14_hotpath

  step "tracectl smoke (trace export + round-trip + critical-path self-check)"
  # Exits nonzero on malformed Chrome output, a failed JSONL round-trip,
  # no reconstructable critical path, component sums off by >1%, or any
  # verify_causality() violation.
  cargo run -q --release -p bench --bin tracectl -- smoke

  step "chaos causality gate (verify_causality under loss/partitions/crashes)"
  cargo test -q --test chaos
fi

printf '\nci.sh: all green\n'
