#!/usr/bin/env bash
# Local CI gate: everything a PR must pass.
#
#   ./ci.sh          # full gate
#   ./ci.sh quick    # skip the release build (fmt + clippy + tests)
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo test (workspace)"
cargo test --workspace -q

if [ "${1:-}" != "quick" ]; then
  step "cargo build --release (experiment harness)"
  cargo build --release -p bench

  step "cargo bench --no-run (Criterion benches must compile)"
  cargo bench -p bench --no-run

  step "E14 macro-benchmark smoke (closed-loop hot path + BENCH_e14.json)"
  # Shrunken workload; asserts the closed loop completes, the run is
  # deterministic, batching beats 2 msgs/call, and the artifact writes.
  # PROXIDE_BENCH_DIR keeps the committed full-mode BENCH_e14.json intact.
  PROXIDE_E14_SMOKE=1 PROXIDE_BENCH_DIR=target \
    cargo run -q --release -p bench --bin e14_hotpath

  step "perfgate (regression gate against the committed E14 baseline)"
  # Strict self-compare: the committed baseline must gate cleanly against
  # itself (artifact well-formed, all metrics within tolerance).
  cargo run -q --release -p bench --bin perfgate -- BENCH_e14.json BENCH_e14.json
  # The smoke artifact runs a shrunken config, so it is legitimately
  # incomparable with the full-mode baseline: warn-only keeps the step
  # green while still exercising the comparability refusal path.
  cargo run -q --release -p bench --bin perfgate -- --warn-only \
    target/BENCH_e14.json BENCH_e14.json

  step "E16 million-process smoke (poll-driven fleet + BENCH_e16.json)"
  # ~2k poll-driven clients; asserts every client completes, the whole
  # fleet is concurrently parked, and the process table stays bounded.
  PROXIDE_E16_SMOKE=1 PROXIDE_BENCH_DIR=target \
    cargo run -q --release -p bench --bin e16_million

  step "perfgate (E16 baseline self-compare + warn-only smoke compare)"
  cargo run -q --release -p bench --bin perfgate -- BENCH_e16.json BENCH_e16.json
  # Smoke runs a shrunken fleet: incomparable config, warn-only.
  cargo run -q --release -p bench --bin perfgate -- --warn-only \
    target/BENCH_e16.json BENCH_e16.json

  step "E17 observability-plane smoke (obs-on vs obs-off + BENCH_e17.json)"
  # ~20k clients, two legs (instrumented vs dark); asserts retirement
  # conserves spans, the table ends O(open + sampled), self-measurement
  # records the plane's own cost, and overhead stays under 2x.
  PROXIDE_E17_SMOKE=1 PROXIDE_BENCH_DIR=target \
    cargo run -q --release -p bench --bin e17_obsplane

  step "perfgate (E17 baseline self-compare + warn-only smoke compare)"
  cargo run -q --release -p bench --bin perfgate -- BENCH_e17.json BENCH_e17.json
  # Smoke runs a shrunken fleet: incomparable config, warn-only.
  cargo run -q --release -p bench --bin perfgate -- --warn-only \
    target/BENCH_e17.json BENCH_e17.json

  step "E18 multi-core scheduler smoke (thread sweep + BENCH_e18.json)"
  # 1k poll-driven clients over 8 domains, run at 1/2/4 worker threads;
  # asserts every leg is byte-identical to the 1-thread run (summary,
  # causal trace, RunReport JSON), zero time inversions, and the >=3x
  # speedup gate arms only on hosts with >= 4 cores.
  PROXIDE_E18_SMOKE=1 PROXIDE_BENCH_DIR=target \
    cargo run -q --release -p bench --bin e18_multicore

  step "perfgate (E18 baseline self-compare + warn-only smoke compare)"
  cargo run -q --release -p bench --bin perfgate -- BENCH_e18.json BENCH_e18.json
  # Smoke runs a shrunken sweep: incomparable config, warn-only.
  cargo run -q --release -p bench --bin perfgate -- --warn-only \
    target/BENCH_e18.json BENCH_e18.json

  step "E19 bulk-data-plane smoke (pass-by-ref + edge caches + BENCH_e19.json)"
  # 3 WAN regions under Zipf + flash-crowd traffic; asserts by-reference
  # results are bit-identical to inline marshalling, >=5x fewer RPC-path
  # bytes through the catalog, the edge hierarchy absorbs repeat fetches,
  # and the bulk leg is byte-identical across 1/4 scheduler threads.
  PROXIDE_E19_SMOKE=1 PROXIDE_BENCH_DIR=target \
    cargo run -q --release -p bench --bin e19_bulkplane

  step "perfgate (E19 baseline self-compare + warn-only smoke compare)"
  cargo run -q --release -p bench --bin perfgate -- BENCH_e19.json BENCH_e19.json
  # Smoke runs a shrunken workload: incomparable config, warn-only.
  cargo run -q --release -p bench --bin perfgate -- --warn-only \
    target/BENCH_e19.json BENCH_e19.json

  step "E20 continuous-profiler smoke (overhead + conservation + BENCH_e20.json)"
  # E18 workload, off/on interleaved x5 after a warmup (+ a 4-thread leg);
  # asserts phase walls tile the round wall exactly, frame paths+calls
  # are byte-identical across runs and thread counts, profiling leaves
  # the trace untouched, and the folded flamegraph exports canonically.
  PROXIDE_E20_SMOKE=1 PROXIDE_BENCH_DIR=target \
    cargo run -q --release -p bench --bin e20_profiler

  step "perfgate (E20 baseline self-compare + warn-only smoke compare)"
  cargo run -q --release -p bench --bin perfgate -- BENCH_e20.json BENCH_e20.json
  # Smoke runs a shrunken workload: incomparable config, warn-only.
  cargo run -q --release -p bench --bin perfgate -- --warn-only \
    target/BENCH_e20.json BENCH_e20.json

  step "flamegraph gate (folded export validates + tracectl flame round-trips)"
  # The smoke run above exported the collapsed flamegraph and the
  # RunReport it came from. Both must validate, and re-deriving the
  # folded file from the report must reproduce it byte for byte.
  cargo run -q --release -p bench --bin tracectl -- check target/traces/e20-profile.folded
  cargo run -q --release -p bench --bin tracectl -- flame \
    target/traces/e20-profile.report.json --out=target/traces/e20-profile.rt.folded
  cmp target/traces/e20-profile.folded target/traces/e20-profile.rt.folded

  step "threaded-determinism gate (1-thread vs 4-thread trace artifacts)"
  # The E18/E19 smoke runs above exported the causal traces of their
  # 1-thread and 4-thread legs. All must be well-formed and each pair
  # byte-for-byte equal: threads are a wall-clock knob, never an
  # ordering knob.
  cargo run -q --release -p bench --bin tracectl -- check target/traces/e18-t1.trace.jsonl
  cargo run -q --release -p bench --bin tracectl -- check target/traces/e18-t4.trace.jsonl
  cmp target/traces/e18-t1.trace.jsonl target/traces/e18-t4.trace.jsonl
  cargo run -q --release -p bench --bin tracectl -- check target/traces/e19-t1.trace.jsonl
  cargo run -q --release -p bench --bin tracectl -- check target/traces/e19-t4.trace.jsonl
  cmp target/traces/e19-t1.trace.jsonl target/traces/e19-t4.trace.jsonl

  step "E15 flight-recorder smoke (windowed telemetry + exemplars + validators)"
  # Runs the chaos sweep, asserts re-bucketing invariance, conservation,
  # exemplar tiling, and exports artifacts for the checks below.
  cargo run -q --release -p bench --bin e15_flight
  cargo run -q --release -p bench --bin tracectl -- check target/traces/e15-flight.timeseries.csv
  cargo run -q --release -p bench --bin tracectl -- check target/traces/e15-flight.report.json

  step "tracectl smoke (trace export + round-trip + critical-path self-check)"
  # Exits nonzero on malformed Chrome output, a failed JSONL round-trip,
  # no reconstructable critical path, component sums off by >1%, or any
  # verify_causality() violation.
  cargo run -q --release -p bench --bin tracectl -- smoke

  step "chaos causality gate (verify_causality under loss/partitions/crashes)"
  cargo test -q --test chaos
fi

printf '\nci.sh: all green\n'
