//! The replica-reading proxy.
//!
//! Reads go to the *nearest* replica (chosen by an RTT probe at bind
//! time); writes go to the primary. The proxy tracks the highest version
//! it has written or observed and falls back to the primary whenever a
//! replica's reply is older — giving each client monotonic reads and
//! read-your-writes on top of primary/backup replication.

use naming::NameClient;
use proxy_core::{
    protocol, BindContext, Binder, ClientRuntime, InterfaceDesc, OnewaySink, Proxy, ProxyStats,
    ReadTarget,
};
use rpc::{ErrorCode, RpcClient, RpcError};
use simnet::{Ctx, Endpoint};
use std::time::Duration;
use wire::Value;

/// Counters specific to the replica proxy (on top of [`ProxyStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaProxyStats {
    /// Reads served by the chosen replica.
    pub replica_reads: u64,
    /// Reads repeated at the primary because the replica lagged.
    pub freshness_fallbacks: u64,
    /// Writes redirected after a `NotPrimary` rejection.
    pub primary_redirects: u64,
}

/// A proxy that reads from the nearest replica and writes to the primary.
#[derive(Debug)]
pub struct ReplicaProxy {
    service: String,
    primary: RpcClient,
    reader: RpcClient,
    #[allow(dead_code)]
    ns: NameClient,
    iface: InterfaceDesc,
    /// Highest version this client has written or observed.
    min_version: u64,
    stats: ProxyStats,
    /// Replica-specific counters.
    pub replica_stats: ReplicaProxyStats,
    nearest: Endpoint,
}

impl ReplicaProxy {
    /// Binds to a replicated service: probes every replica once and
    /// chooses the fastest responder for reads.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] if no replica answers the probe.
    pub fn bind(
        ctx: &mut Ctx,
        service: impl Into<String>,
        ns: Endpoint,
        iface: InterfaceDesc,
        primary: Endpoint,
        replicas: &[Endpoint],
        read_target: ReadTarget,
    ) -> Result<ReplicaProxy, RpcError> {
        let service = service.into();
        let nearest = match read_target {
            ReadTarget::Primary => primary,
            ReadTarget::Nearest => {
                let mut best: Option<(Duration, Endpoint)> = None;
                for &r in replicas {
                    let mut probe = RpcClient::with_policy(
                        r,
                        rpc::RetryPolicy::no_retry(Duration::from_millis(50)),
                    );
                    let t0 = ctx.now();
                    if probe.call(ctx, protocol::OP_PING, Value::Null).is_ok() {
                        let rtt = ctx.now() - t0;
                        if best.map(|(b, _)| rtt < b).unwrap_or(true) {
                            best = Some((rtt, r));
                        }
                    }
                }
                best.map(|(_, ep)| ep).unwrap_or(primary)
            }
        };
        Ok(ReplicaProxy {
            service,
            primary: RpcClient::new(primary),
            reader: RpcClient::new(nearest),
            ns: NameClient::new(ns),
            iface,
            min_version: 0,
            stats: ProxyStats::default(),
            replica_stats: ReplicaProxyStats::default(),
            nearest,
        })
    }

    /// The replica chosen for reads.
    pub fn nearest(&self) -> Endpoint {
        self.nearest
    }

    /// The highest version this client has observed.
    pub fn version_floor(&self) -> u64 {
        self.min_version
    }

    fn call_collecting(
        rpc: &mut RpcClient,
        ctx: &mut Ctx,
        op: &str,
        args: Value,
        strays: &mut dyn OnewaySink,
    ) -> Result<Value, RpcError> {
        rpc.call_with_strays(ctx, "", op, args, |_ctx, stray| {
            if let rpc::Stray::Oneway(o, _) = stray {
                strays.push((*o).clone());
                rpc::StrayVerdict::Consumed
            } else {
                rpc::StrayVerdict::Drop
            }
        })
    }

    fn unwrap_versioned(&mut self, reply: Value) -> Result<Value, RpcError> {
        let ver = reply.get_u64("ver")?;
        let val = reply.get("val").cloned().unwrap_or(Value::Null);
        if ver > self.min_version {
            self.min_version = ver;
        }
        Ok(val)
    }
}

impl Proxy for ReplicaProxy {
    fn service(&self) -> &str {
        &self.service
    }

    fn invoke(
        &mut self,
        ctx: &mut Ctx,
        op: &str,
        args: Value,
        strays: &mut dyn OnewaySink,
    ) -> Result<Value, RpcError> {
        self.stats.invocations += 1;
        self.stats.remote_calls += 1;
        if self.iface.is_write(op) {
            let result = Self::call_collecting(&mut self.primary, ctx, op, args.clone(), strays);
            let reply = match result {
                Err(RpcError::Remote(ref e)) if e.code == ErrorCode::NotPrimary => {
                    // The group reconfigured; follow the redirect if the
                    // error carries one.
                    if let Ok(new_primary) = rpc::endpoint_from_value(&e.data) {
                        self.primary.rebind(new_primary);
                        self.replica_stats.primary_redirects += 1;
                        self.stats.rebinds += 1;
                        Self::call_collecting(&mut self.primary, ctx, op, args, strays)?
                    } else {
                        return result;
                    }
                }
                other => other?,
            };
            return self.unwrap_versioned(reply);
        }
        if self.iface.is_read(op) {
            let reply = Self::call_collecting(&mut self.reader, ctx, op, args.clone(), strays)?;
            let ver = reply.get_u64("ver")?;
            if ver >= self.min_version {
                self.replica_stats.replica_reads += 1;
                return self.unwrap_versioned(reply);
            }
            // Replica is behind what we've already seen: re-read at the
            // primary to preserve read-your-writes / monotonic reads.
            self.replica_stats.freshness_fallbacks += 1;
            self.stats.remote_calls += 1;
            let reply = Self::call_collecting(&mut self.primary, ctx, op, args, strays)?;
            return self.unwrap_versioned(reply);
        }
        // System / undeclared ops go to the primary unwrapped.
        Self::call_collecting(&mut self.primary, ctx, op, args, strays)
    }

    fn stats(&self) -> ProxyStats {
        self.stats
    }
}

/// Registers the replica proxy constructor with a binder so that
/// [`proxy_core::ProxySpec::Replicated`] bindings resolve.
pub fn register_replica_proxy(binder: &mut Binder) {
    binder.register_proxy("replicated", |ctx, bc: &BindContext<'_>| {
        let spec = proxy_core::ProxySpec::from_value(bc.params)?;
        match spec {
            proxy_core::ProxySpec::Replicated {
                primary,
                replicas,
                read_target,
            } => Ok(Box::new(ReplicaProxy::bind(
                ctx,
                bc.service,
                bc.ns,
                bc.iface.clone(),
                primary,
                &replicas,
                read_target,
            )?)),
            _ => Err(RpcError::Wire(wire::WireError::WrongKind {
                expected: "replicated spec",
                actual: "other",
            })),
        }
    });
}

/// A [`ClientRuntime`] with the replica proxy pre-registered.
pub fn client_runtime(ns: Endpoint) -> ClientRuntime {
    let mut rt = ClientRuntime::new(ns);
    register_replica_proxy(rt.binder_mut());
    rt
}
