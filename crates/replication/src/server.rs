//! The replicated server: a primary/backup group behind one service name.
//!
//! Every replica hosts its own copy of the service object. Writes go to
//! the primary, which assigns them a version, applies them, and
//! propagates `_apply {op, args, ver}` to each backup — synchronously
//! (RPC, reply gated on all backups) or asynchronously (one-way,
//! bounded staleness). Reads are served by any replica and return
//! `{val, ver}` so the proxy can enforce read-your-writes.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;

use naming::NameClient;
use proxy_core::{protocol, InterfaceDesc, ProxySpec, ReadTarget, ServiceObject};
use rpc::{
    endpoint_to_value, ErrorCode, RemoteError, Request, RpcClient, RpcError, RpcServer, Served,
    Stray, StrayVerdict,
};
use simnet::{Ctx, Endpoint, Message, NodeId, Simulation};
use wire::Value;

/// How the primary ships writes to its backups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Propagation {
    /// RPC to every backup before replying to the writer: backups never
    /// lag, at the price of write latency.
    Sync,
    /// Fire-and-forget notification: cheap writes, bounded staleness;
    /// the proxy's version check repairs reads that observe lag.
    Async,
}

/// Counters accumulated by one replica.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Reads served by this replica.
    pub reads: u64,
    /// Writes applied (as primary) or replayed (as backup).
    pub writes_applied: u64,
    /// Updates buffered out of order (backups only).
    pub buffered: u64,
    /// Writes rejected because this replica is not the primary.
    pub not_primary: u64,
    /// Missing updates recovered from the primary's log (gap repair).
    pub repaired: u64,
}

enum Role {
    Primary {
        backups: Vec<Endpoint>,
        propagation: Propagation,
        /// Recent writes kept for gap repair and late joiners.
        log: VecDeque<(u64, String, Value)>,
    },
    Backup {
        /// Filled in by the group spawner once the primary exists.
        primary: Arc<Mutex<Option<Endpoint>>>,
        /// Out-of-order updates waiting for their predecessors.
        pending: BTreeMap<u64, (String, Value)>,
    },
}

/// One member of a replica group.
pub struct ReplicaServer {
    service: String,
    object: Box<dyn ServiceObject>,
    iface: InterfaceDesc,
    version: u64,
    role: Role,
    rpc: RpcServer,
    /// Requests that arrived while the primary was mid-propagation;
    /// replayed before the next receive.
    requeued: VecDeque<Message>,
    /// Counters (readable via shared handles in tests).
    pub stats: ReplicaStats,
}

impl std::fmt::Debug for ReplicaServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaServer")
            .field("service", &self.service)
            .field("version", &self.version)
            .field(
                "role",
                &match self.role {
                    Role::Primary { .. } => "primary",
                    Role::Backup { .. } => "backup",
                },
            )
            .finish()
    }
}

const LOG_CAP: usize = 1024;

impl ReplicaServer {
    /// Creates the primary member.
    pub fn primary(
        service: impl Into<String>,
        object: Box<dyn ServiceObject>,
        backups: Vec<Endpoint>,
        propagation: Propagation,
    ) -> ReplicaServer {
        let iface = object.interface();
        ReplicaServer {
            service: service.into(),
            object,
            iface,
            version: 0,
            role: Role::Primary {
                backups,
                propagation,
                log: VecDeque::new(),
            },
            rpc: RpcServer::new(),
            requeued: VecDeque::new(),
            stats: ReplicaStats::default(),
        }
    }

    /// Creates a backup member. The primary's endpoint is usually not
    /// known yet when backups spawn; the group spawner fills `primary`
    /// in before the simulation runs.
    pub fn backup(
        service: impl Into<String>,
        object: Box<dyn ServiceObject>,
        primary: Arc<Mutex<Option<Endpoint>>>,
    ) -> ReplicaServer {
        let iface = object.interface();
        ReplicaServer {
            service: service.into(),
            object,
            iface,
            version: 0,
            role: Role::Backup {
                primary,
                pending: BTreeMap::new(),
            },
            rpc: RpcServer::new(),
            requeued: VecDeque::new(),
            stats: ReplicaStats::default(),
        }
    }

    /// Serves forever (no name registration; the group spawner registers
    /// the service once, from the primary).
    pub fn run(mut self, ctx: &mut Ctx) {
        loop {
            let msg = match self.requeued.pop_front() {
                Some(m) => m,
                None => match ctx.recv() {
                    Ok(m) => m,
                    Err(_) => return,
                },
            };
            self.handle(ctx, &msg);
        }
    }

    fn handle(&mut self, ctx: &mut Ctx, msg: &Message) {
        // Split borrows: the dispatch closure may not touch `self.rpc`.
        let service = &self.service;
        let object = &mut self.object;
        let iface = &self.iface;
        let version = &mut self.version;
        let role = &mut self.role;
        let stats = &mut self.stats;
        let requeued = &mut self.requeued;
        let served = self.rpc.handle(ctx, msg, |ctx, req| {
            Self::execute(
                service, object, iface, version, role, stats, requeued, ctx, req,
            )
        });
        if let Served::Oneway(o) = served {
            if o.op == "_apply" {
                self.apply_notification(ctx, &o.args);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn execute(
        service: &str,
        object: &mut Box<dyn ServiceObject>,
        iface: &InterfaceDesc,
        version: &mut u64,
        role: &mut Role,
        stats: &mut ReplicaStats,
        requeued: &mut VecDeque<Message>,
        ctx: &mut Ctx,
        req: &Request,
    ) -> Result<Value, RemoteError> {
        match req.op.as_str() {
            protocol::OP_PING => Ok(Value::Null),
            protocol::OP_IFACE => Ok(iface.to_value()),
            "_ver" => Ok(Value::U64(*version)),
            "_fetch" => match role {
                // Gap repair: a backup asks for every logged update at
                // or after `from`.
                Role::Primary { log, .. } => {
                    let from = req
                        .args
                        .get_u64("from")
                        .map_err(|e| RemoteError::new(ErrorCode::BadArgs, e.to_string()))?;
                    Ok(Value::record([(
                        "updates",
                        Value::list(log.iter().filter(|(v, _, _)| *v >= from).map(
                            |(v, op, args)| {
                                Value::record([
                                    ("ver", Value::U64(*v)),
                                    ("op", Value::str(op.clone())),
                                    ("args", args.clone()),
                                ])
                            },
                        )),
                    )]))
                }
                Role::Backup { .. } => Err(RemoteError::new(
                    ErrorCode::BadArgs,
                    "backups have no log to fetch",
                )),
            },
            "_apply" => {
                // Sync propagation arrives as an RPC.
                match role {
                    Role::Backup { .. } => {
                        Self::ingest_update(object, version, role, stats, requeued, ctx, &req.args);
                        Ok(Value::Null)
                    }
                    Role::Primary { .. } => Err(RemoteError::new(
                        ErrorCode::BadArgs,
                        "primary does not accept _apply",
                    )),
                }
            }
            op if iface.is_write(op) => match role {
                Role::Primary {
                    backups,
                    propagation,
                    log,
                } => {
                    let result = object.dispatch(ctx, op, &req.args)?;
                    *version += 1;
                    stats.writes_applied += 1;
                    log.push_back((*version, op.to_owned(), req.args.clone()));
                    if log.len() > LOG_CAP {
                        log.pop_front();
                    }
                    let update = Value::record([
                        ("svc", Value::str(service)),
                        ("op", Value::str(op)),
                        ("args", req.args.clone()),
                        ("ver", Value::U64(*version)),
                    ]);
                    match propagation {
                        Propagation::Async => {
                            for b in backups.iter() {
                                rpc::send_oneway(ctx, *b, "_apply", update.clone());
                            }
                        }
                        Propagation::Sync => {
                            for b in backups.iter() {
                                let mut client = RpcClient::new(*b);
                                // Requests arriving during propagation are
                                // requeued, not dropped.
                                let r = client.call_with_strays(
                                    ctx,
                                    "",
                                    "_apply",
                                    update.clone(),
                                    |_ctx, stray| match stray {
                                        Stray::Request(_, m) => {
                                            requeued.push_back((*m).clone());
                                            StrayVerdict::Consumed
                                        }
                                        Stray::Oneway(..) => StrayVerdict::Drop,
                                    },
                                );
                                if let Err(e) = r {
                                    // A backup missed a sync update (e.g.
                                    // partitioned); it will be stale until
                                    // heal + catch-up. Log-and-continue.
                                    let _ = e;
                                }
                            }
                        }
                    }
                    Ok(Value::record([
                        ("val", result),
                        ("ver", Value::U64(*version)),
                    ]))
                }
                Role::Backup { primary, .. } => {
                    stats.not_primary += 1;
                    let data = primary.lock().map(endpoint_to_value).unwrap_or(Value::Null);
                    Err(RemoteError::with_data(
                        ErrorCode::NotPrimary,
                        "writes must go to the primary",
                        data,
                    ))
                }
            },
            op if iface.is_read(op) => {
                let result = object.dispatch(ctx, op, &req.args)?;
                stats.reads += 1;
                Ok(Value::record([
                    ("val", result),
                    ("ver", Value::U64(*version)),
                ]))
            }
            op => object.dispatch(ctx, op, &req.args),
        }
    }

    fn apply_notification(&mut self, ctx: &mut Ctx, args: &Value) {
        let object = &mut self.object;
        let version = &mut self.version;
        let role = &mut self.role;
        let stats = &mut self.stats;
        let requeued = &mut self.requeued;
        Self::ingest_update(object, version, role, stats, requeued, ctx, args);
    }

    /// Applies an `_apply` update, buffering out-of-order versions and
    /// repairing persistent gaps from the primary's log.
    fn ingest_update(
        object: &mut Box<dyn ServiceObject>,
        version: &mut u64,
        role: &mut Role,
        stats: &mut ReplicaStats,
        requeued: &mut VecDeque<Message>,
        ctx: &mut Ctx,
        args: &Value,
    ) {
        let Role::Backup { pending, primary } = role else {
            return;
        };
        let (Ok(ver), Ok(op)) = (args.get_u64("ver"), args.get_str("op")) else {
            return;
        };
        let op_args = args.get("args").cloned().unwrap_or(Value::Null);
        if ver <= *version {
            return; // duplicate
        }
        pending.insert(ver, (op.to_owned(), op_args));
        Self::drain_pending(object, version, pending, stats, ctx);
        if pending.is_empty() {
            return;
        }
        stats.buffered += pending.len() as u64;
        // A gap: some predecessor was lost in flight. Fetch the missing
        // range from the primary's log (requests arriving meanwhile are
        // requeued, not dropped).
        let Some(primary_ep) = *primary.lock() else {
            return;
        };
        let mut rpc = RpcClient::new(primary_ep);
        let from = *version + 1;
        // Updates propagated while we wait for the fetch reply arrive as
        // stray one-ways; losing them would leave the backup permanently
        // behind (the fetch was issued before they were logged, and no
        // later update may ever come to expose the new gap). Buffer them
        // and merge after the reply.
        let mut late_applies: Vec<Value> = Vec::new();
        let reply = rpc.call_with_strays(
            ctx,
            "",
            "_fetch",
            Value::record([("from", Value::U64(from))]),
            |_ctx, stray| match stray {
                Stray::Request(_, m) => {
                    requeued.push_back((*m).clone());
                    StrayVerdict::Consumed
                }
                Stray::Oneway(ow, _) if ow.op == "_apply" => {
                    late_applies.push(ow.args.clone());
                    StrayVerdict::Consumed
                }
                Stray::Oneway(..) => StrayVerdict::Drop,
            },
        );
        if let Ok(reply) = reply {
            if let Ok(updates) = reply.get_list("updates") {
                for u in updates {
                    if let (Ok(v), Ok(op)) = (u.get_u64("ver"), u.get_str("op")) {
                        if v > *version && !pending.contains_key(&v) {
                            pending.insert(
                                v,
                                (op.to_owned(), u.get("args").cloned().unwrap_or(Value::Null)),
                            );
                        }
                    }
                }
            }
            for u in &late_applies {
                if let (Ok(v), Ok(op)) = (u.get_u64("ver"), u.get_str("op")) {
                    if v > *version && !pending.contains_key(&v) {
                        pending.insert(
                            v,
                            (op.to_owned(), u.get("args").cloned().unwrap_or(Value::Null)),
                        );
                    }
                }
            }
            let before = *version;
            Self::drain_pending(object, version, pending, stats, ctx);
            stats.repaired += *version - before;
        }
    }

    /// Applies every consecutive pending update.
    fn drain_pending(
        object: &mut Box<dyn ServiceObject>,
        version: &mut u64,
        pending: &mut BTreeMap<u64, (String, Value)>,
        stats: &mut ReplicaStats,
        ctx: &mut Ctx,
    ) {
        while let Some(entry) = pending.remove(&(*version + 1)) {
            let (op, op_args) = entry;
            if object.dispatch(ctx, &op, &op_args).is_ok() {
                stats.writes_applied += 1;
            }
            *version += 1;
        }
    }
}

/// Configuration for [`spawn_replica_group`].
#[derive(Debug, Clone)]
pub struct ReplicaGroupConfig {
    /// The service name to register.
    pub service: String,
    /// One node per replica; the first hosts the primary.
    pub nodes: Vec<NodeId>,
    /// Write propagation mode.
    pub propagation: Propagation,
    /// Read placement the proxies should use.
    pub read_target: ReadTarget,
}

/// Spawns a primary/backup group and registers the service with a
/// [`ProxySpec::Replicated`] binding. Returns the replica endpoints
/// (primary first).
///
/// # Panics
///
/// Panics if `nodes` is empty.
pub fn spawn_replica_group<F>(
    sim: &Simulation,
    ns: Endpoint,
    config: ReplicaGroupConfig,
    make_object: F,
) -> Vec<Endpoint>
where
    F: Fn() -> Box<dyn ServiceObject> + Send + Sync + 'static,
{
    assert!(!config.nodes.is_empty(), "replica group needs >= 1 node");
    let make_object = std::sync::Arc::new(make_object);

    // Spawn backups first so the primary knows their endpoints; the
    // primary's own endpoint is published to them through a shared slot
    // the spawner fills in below (before the simulation runs).
    let primary_slot: Arc<Mutex<Option<Endpoint>>> = Arc::new(Mutex::new(None));
    let mut backups = Vec::new();
    for (i, node) in config.nodes.iter().copied().enumerate().skip(1) {
        let mk = std::sync::Arc::clone(&make_object);
        let service = config.service.clone();
        let slot = Arc::clone(&primary_slot);
        let ep = sim.spawn(format!("replica-{service}-{i}"), node, move |ctx| {
            ReplicaServer::backup(service, mk(), slot).run(ctx);
        });
        backups.push(ep);
    }

    let service = config.service.clone();
    let mk = std::sync::Arc::clone(&make_object);
    let propagation = config.propagation;
    let read_target = config.read_target;
    let backups_for_primary = backups.clone();
    let primary = sim.spawn(
        format!("replica-{service}-primary"),
        config.nodes[0],
        move |ctx| {
            let object = mk();
            let iface = object.interface();
            let me = ctx.endpoint();
            let spec = ProxySpec::Replicated {
                primary: me,
                replicas: std::iter::once(me)
                    .chain(backups_for_primary.iter().copied())
                    .collect(),
                read_target,
            };
            let meta = Value::record([("spec", spec.to_value()), ("iface", iface.to_value())]);
            let mut nc = NameClient::new(ns);
            match nc.register(ctx, &service, me, meta) {
                Ok(_) => {}
                Err(RpcError::Stopped) => return,
                Err(e) => panic!("replica group `{service}` failed to register: {e}"),
            }
            ReplicaServer::primary(service, object, backups_for_primary, propagation).run(ctx);
        },
    );

    *primary_slot.lock() = Some(primary);

    let mut all = vec![primary];
    all.extend(backups);
    all
}
