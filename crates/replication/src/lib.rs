//! # replication — primary/backup groups and the replica-reading proxy
//!
//! One of the smart-proxy strategies the proxy principle advertises: a
//! service may replicate itself for read scalability and availability,
//! and encode that choice entirely in the proxy it hands its clients.
//! Client code is identical to the single-server case.
//!
//! * [`ReplicaServer`] / [`spawn_replica_group`] — the server side: a
//!   primary applying and versioning writes, backups replaying them in
//!   order (sync or async propagation).
//! * [`ReplicaProxy`] — the client side: reads from the nearest replica
//!   (RTT-probed at bind), writes to the primary, with a version floor
//!   giving monotonic reads and read-your-writes.
//!
//! ## Example
//!
//! ```
//! use simnet::{Simulation, NetworkConfig, NodeId};
//! use naming::spawn_name_server;
//! use replication::{spawn_replica_group, ReplicaGroupConfig, Propagation, client_runtime};
//! use proxy_core::{InterfaceDesc, OpDesc, ReadTarget, ServiceObject};
//! use rpc::{RemoteError, ErrorCode};
//! use wire::Value;
//!
//! struct Register(u64);
//! impl ServiceObject for Register {
//!     fn interface(&self) -> InterfaceDesc {
//!         InterfaceDesc::new("register",
//!             [OpDesc::read_whole("read"), OpDesc::write_whole("write")])
//!     }
//!     fn dispatch(&mut self, _ctx: &mut simnet::Ctx, op: &str, args: &Value)
//!         -> Result<Value, RemoteError> {
//!         match op {
//!             "read" => Ok(Value::U64(self.0)),
//!             "write" => { self.0 = args.get_u64("v").map_err(|e|
//!                 RemoteError::new(ErrorCode::BadArgs, e.to_string()))?; Ok(Value::Null) }
//!             o => Err(RemoteError::new(ErrorCode::NoSuchOp, o.to_owned())),
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(NetworkConfig::lan(), 1);
//! let ns = spawn_name_server(&sim, NodeId(0));
//! spawn_replica_group(&sim, ns, ReplicaGroupConfig {
//!     service: "reg".into(),
//!     nodes: vec![NodeId(1), NodeId(2), NodeId(3)],
//!     propagation: Propagation::Sync,
//!     read_target: ReadTarget::Nearest,
//! }, || Box::new(Register(0)));
//! sim.spawn("client", NodeId(2), move |ctx| {
//!     let mut rt = client_runtime(ns);
//!     let reg = rt.bind(ctx, "reg").unwrap();
//!     rt.invoke(ctx, reg, "write", Value::record([("v", Value::U64(9))])).unwrap();
//!     assert_eq!(rt.invoke(ctx, reg, "read", Value::Null).unwrap(), Value::U64(9));
//! });
//! sim.run();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod proxy;
mod server;

pub use proxy::{client_runtime, register_replica_proxy, ReplicaProxy, ReplicaProxyStats};
pub use server::{
    spawn_replica_group, Propagation, ReplicaGroupConfig, ReplicaServer, ReplicaStats,
};
