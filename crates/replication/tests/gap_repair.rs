//! Gap repair: backups that miss updates (loss, partitions) catch up
//! from the primary's log instead of staying stale forever.

use std::time::Duration;

use naming::spawn_name_server;
use proxy_core::{InterfaceDesc, OpDesc, ReadTarget, ServiceObject};
use replication::{client_runtime, spawn_replica_group, Propagation, ReplicaGroupConfig};
use rpc::{ErrorCode, RemoteError};
use simnet::{Ctx, NetworkConfig, NodeId, Simulation};
use wire::Value;

struct Register(u64);

impl ServiceObject for Register {
    fn interface(&self) -> InterfaceDesc {
        InterfaceDesc::new(
            "register",
            [OpDesc::read_whole("read"), OpDesc::write_whole("write")],
        )
    }
    fn dispatch(&mut self, _ctx: &mut Ctx, op: &str, args: &Value) -> Result<Value, RemoteError> {
        match op {
            "read" => Ok(Value::U64(self.0)),
            "write" => {
                self.0 = args
                    .get_u64("v")
                    .map_err(|e| RemoteError::new(ErrorCode::BadArgs, e.to_string()))?;
                Ok(Value::Null)
            }
            other => Err(RemoteError::new(ErrorCode::NoSuchOp, other.to_owned())),
        }
    }
}

/// Reads a replica's version counter directly.
fn replica_version(ctx: &mut Ctx, replica: simnet::Endpoint) -> u64 {
    let mut raw = rpc::RpcClient::new(replica);
    raw.call(ctx, "_ver", Value::Null)
        .unwrap()
        .as_u64()
        .unwrap()
}

#[test]
fn backup_catches_up_after_lost_async_updates() {
    // Async propagation + a partition window: updates to the backup are
    // blackholed for a while. The next update that does arrive exposes
    // the gap, and the backup must repair it from the primary's log.
    let mut sim = Simulation::new(NetworkConfig::lan(), 1);
    let ns = spawn_name_server(&sim, NodeId(0));
    let replicas = spawn_replica_group(
        &sim,
        ns,
        ReplicaGroupConfig {
            service: "reg".into(),
            nodes: vec![NodeId(1), NodeId(2)],
            propagation: Propagation::Async,
            read_target: ReadTarget::Primary,
        },
        || Box::new(Register(0)),
    );
    let backup = replicas[1];
    sim.spawn("driver", NodeId(3), move |ctx| {
        let mut rt = client_runtime(ns);
        let reg = rt.bind(ctx, "reg").unwrap();

        // Two updates that reach the backup.
        for v in 1..=2u64 {
            rt.invoke(ctx, reg, "write", Value::record([("v", Value::U64(v))]))
                .unwrap();
        }
        ctx.sleep(Duration::from_millis(10)).unwrap();
        assert_eq!(replica_version(ctx, backup), 2);

        // Cut the primary→backup link; these updates are lost.
        ctx.net().partition(NodeId(1), NodeId(2));
        for v in 3..=6u64 {
            rt.invoke(ctx, reg, "write", Value::record([("v", Value::U64(v))]))
                .unwrap();
        }
        ctx.sleep(Duration::from_millis(10)).unwrap();
        assert_eq!(replica_version(ctx, backup), 2, "updates leaked through");

        // Heal; the *next* update exposes the gap and triggers repair.
        ctx.net().heal(NodeId(1), NodeId(2));
        rt.invoke(ctx, reg, "write", Value::record([("v", Value::U64(7))]))
            .unwrap();
        ctx.sleep(Duration::from_millis(30)).unwrap();

        assert_eq!(
            replica_version(ctx, backup),
            7,
            "backup failed to repair the gap"
        );
        // And its object state matches, not just its counter.
        let mut raw = rpc::RpcClient::new(backup);
        let reply = raw.call(ctx, "read", Value::Null).unwrap();
        assert_eq!(reply.get("val"), Some(&Value::U64(7)));
    });
    sim.run();
}

#[test]
fn random_loss_converges_with_repair() {
    // 20% loss on the async propagation path: without gap repair the
    // backup would drift; with it, the final state converges.
    let mut sim = Simulation::new(NetworkConfig::lan().with_loss(0.20), 2);
    let ns = spawn_name_server(&sim, NodeId(0));
    let replicas = spawn_replica_group(
        &sim,
        ns,
        ReplicaGroupConfig {
            service: "reg".into(),
            nodes: vec![NodeId(1), NodeId(2)],
            propagation: Propagation::Async,
            read_target: ReadTarget::Primary,
        },
        || Box::new(Register(0)),
    );
    let primary = replicas[0];
    let backup = replicas[1];
    sim.spawn("driver", NodeId(3), move |ctx| {
        let mut rt = client_runtime(ns);
        let reg = rt.bind(ctx, "reg").unwrap();
        for v in 1..=60u64 {
            // A timed-out write may still have executed at the primary
            // (at-most-once ambiguity), so the primary's own version —
            // not our success count — is the convergence oracle below.
            let _ = rt.invoke(ctx, reg, "write", Value::record([("v", Value::U64(v))]));
            if ctx.sleep(Duration::from_millis(2)).is_err() {
                return;
            }
        }
        // Let stragglers and repairs settle. Final repair only triggers
        // on the next arriving update, so nudge once with loss off.
        ctx.net().set_loss(0.0);
        rt.invoke(ctx, reg, "write", Value::record([("v", Value::U64(999))]))
            .unwrap();
        ctx.sleep(Duration::from_millis(50)).unwrap();
        assert_eq!(
            replica_version(ctx, backup),
            replica_version(ctx, primary),
            "backup diverged despite gap repair"
        );
    });
    sim.run();
}
