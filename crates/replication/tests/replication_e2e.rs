//! End-to-end replication tests: read placement, consistency guarantees,
//! and sync-vs-async propagation behaviour.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use naming::spawn_name_server;
use proxy_core::{InterfaceDesc, OpDesc, ReadTarget, ServiceObject};
use replication::{client_runtime, spawn_replica_group, Propagation, ReplicaGroupConfig};
use rpc::{ErrorCode, RemoteError};
use simnet::{Ctx, NetworkConfig, NodeId, Simulation};
use wire::Value;

/// A versioned register (one cell) — the minimal replicated object.
struct Register(u64);

impl ServiceObject for Register {
    fn interface(&self) -> InterfaceDesc {
        InterfaceDesc::new(
            "register",
            [OpDesc::read_whole("read"), OpDesc::write_whole("write")],
        )
    }

    fn dispatch(&mut self, _ctx: &mut Ctx, op: &str, args: &Value) -> Result<Value, RemoteError> {
        match op {
            "read" => Ok(Value::U64(self.0)),
            "write" => {
                self.0 = args
                    .get_u64("v")
                    .map_err(|e| RemoteError::new(ErrorCode::BadArgs, e.to_string()))?;
                Ok(Value::Null)
            }
            other => Err(RemoteError::new(ErrorCode::NoSuchOp, other.to_owned())),
        }
    }
}

fn group(service: &str, nodes: &[u32], propagation: Propagation) -> ReplicaGroupConfig {
    ReplicaGroupConfig {
        service: service.into(),
        nodes: nodes.iter().map(|&n| NodeId(n)).collect(),
        propagation,
        read_target: ReadTarget::Nearest,
    }
}

#[test]
fn write_then_read_sync() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 1);
    let ns = spawn_name_server(&sim, NodeId(0));
    spawn_replica_group(
        &sim,
        ns,
        group("reg", &[1, 2, 3], Propagation::Sync),
        || Box::new(Register(0)),
    );
    sim.spawn("client", NodeId(4), move |ctx| {
        let mut rt = client_runtime(ns);
        let reg = rt.bind(ctx, "reg").unwrap();
        for i in 1..=20u64 {
            rt.invoke(ctx, reg, "write", Value::record([("v", Value::U64(i))]))
                .unwrap();
            assert_eq!(
                rt.invoke(ctx, reg, "read", Value::Null).unwrap(),
                Value::U64(i)
            );
        }
    });
    sim.run();
}

#[test]
fn nearest_replica_serves_reads() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 2);
    let ns = spawn_name_server(&sim, NodeId(0));
    // Make node 3 (second backup) much closer to the client's node 5.
    {
        let mut net = sim.net();
        net.set_link_latency(NodeId(5), NodeId(1), Duration::from_millis(5));
        net.set_link_latency(NodeId(5), NodeId(2), Duration::from_millis(3));
        net.set_link_latency(NodeId(5), NodeId(3), Duration::from_micros(100));
    }
    let replicas = spawn_replica_group(
        &sim,
        ns,
        group("reg", &[1, 2, 3], Propagation::Sync),
        || Box::new(Register(7)),
    );
    let near = replicas[2]; // replica on node 3
    sim.spawn("client", NodeId(5), move |ctx| {
        let mut rt = client_runtime(ns);
        let reg = rt.bind(ctx, "reg").unwrap();
        // Pure reads: all should go to the nearest replica.
        let t0 = ctx.now();
        for _ in 0..10 {
            assert_eq!(
                rt.invoke(ctx, reg, "read", Value::Null).unwrap(),
                Value::U64(7)
            );
        }
        let elapsed = ctx.now() - t0;
        // 10 reads at ~200us RTT (nearest) ≪ 10 reads at 6-10ms RTT.
        assert!(
            elapsed < Duration::from_millis(5),
            "reads were not served nearby: {elapsed:?}"
        );
        let _ = near; // (endpoint identity checked indirectly via latency)
    });
    sim.run();
}

#[test]
fn read_your_writes_under_async_propagation() {
    // Async propagation: backups lag. The version floor must route reads
    // to the primary until the nearest replica catches up.
    let mut sim = Simulation::new(NetworkConfig::lan(), 3);
    let ns = spawn_name_server(&sim, NodeId(0));
    // Client sits next to a backup; primary is far.
    {
        let mut net = sim.net();
        net.set_link_latency(NodeId(4), NodeId(1), Duration::from_millis(10));
        net.set_link_latency(NodeId(4), NodeId(2), Duration::from_micros(100));
        // Propagation from primary (1) to backup (2) is slow:
        net.set_link_latency(NodeId(1), NodeId(2), Duration::from_millis(20));
    }
    spawn_replica_group(&sim, ns, group("reg", &[1, 2], Propagation::Async), || {
        Box::new(Register(0))
    });
    let fallbacks = Arc::new(AtomicU64::new(0));
    sim.spawn("client", NodeId(4), move |ctx| {
        let mut rt = client_runtime(ns);
        let reg = rt.bind(ctx, "reg").unwrap();
        for i in 1..=10u64 {
            rt.invoke(ctx, reg, "write", Value::record([("v", Value::U64(i))]))
                .unwrap();
            // Immediately read: the nearby backup has almost surely not
            // seen the update yet, so the proxy must fall back to the
            // primary rather than return a stale value.
            assert_eq!(
                rt.invoke(ctx, reg, "read", Value::Null).unwrap(),
                Value::U64(i),
                "stale read violated read-your-writes"
            );
        }
        fallbacks.store(1, Ordering::SeqCst);
    });
    sim.run();
}

#[test]
fn backups_converge_after_async_writes() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 4);
    let ns = spawn_name_server(&sim, NodeId(0));
    spawn_replica_group(
        &sim,
        ns,
        group("reg", &[1, 2, 3], Propagation::Async),
        || Box::new(Register(0)),
    );
    sim.spawn("writer", NodeId(4), move |ctx| {
        let mut rt = client_runtime(ns);
        let reg = rt.bind(ctx, "reg").unwrap();
        for i in 1..=50u64 {
            rt.invoke(ctx, reg, "write", Value::record([("v", Value::U64(i))]))
                .unwrap();
        }
        // Give propagation time to drain, then check convergence through
        // a fresh binding that reads from a (nearest) replica.
        ctx.sleep(Duration::from_millis(50)).unwrap();
        let mut rt2 = client_runtime(ns);
        let reg2 = rt2.bind(ctx, "reg").unwrap();
        assert_eq!(
            rt2.invoke(ctx, reg2, "read", Value::Null).unwrap(),
            Value::U64(50)
        );
    });
    sim.run();
}

#[test]
fn writes_to_backup_redirect_to_primary() {
    // Force the read target to a backup, then check NotPrimary handling
    // by writing through a proxy whose "primary" record is stale.
    let mut sim = Simulation::new(NetworkConfig::lan(), 5);
    let ns = spawn_name_server(&sim, NodeId(0));
    let replicas = spawn_replica_group(&sim, ns, group("reg", &[1, 2], Propagation::Sync), || {
        Box::new(Register(0))
    });
    let backup = replicas[1];
    sim.spawn("client", NodeId(3), move |ctx| {
        // Hand-build a raw RPC to the backup to verify the NotPrimary
        // error surface (a real proxy would never do this).
        let mut raw = rpc::RpcClient::new(backup);
        let err = raw
            .call(ctx, "write", Value::record([("v", Value::U64(1))]))
            .unwrap_err();
        match err {
            rpc::RpcError::Remote(e) => assert_eq!(e.code, ErrorCode::NotPrimary),
            other => panic!("expected NotPrimary, got {other:?}"),
        }
    });
    sim.run();
}

#[test]
fn sync_propagation_keeps_replicas_current() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 6);
    let ns = spawn_name_server(&sim, NodeId(0));
    let replicas = spawn_replica_group(
        &sim,
        ns,
        group("reg", &[1, 2, 3], Propagation::Sync),
        || Box::new(Register(0)),
    );
    sim.spawn("client", NodeId(4), move |ctx| {
        let mut rt = client_runtime(ns);
        let reg = rt.bind(ctx, "reg").unwrap();
        rt.invoke(ctx, reg, "write", Value::record([("v", Value::U64(42))]))
            .unwrap();
        // Read every replica directly: sync mode means none may lag.
        for &r in &replicas {
            let mut raw = rpc::RpcClient::new(r);
            let reply = raw.call(ctx, "read", Value::Null).unwrap();
            assert_eq!(reply.get("val"), Some(&Value::U64(42)));
            assert_eq!(reply.get_u64("ver").unwrap(), 1);
        }
    });
    sim.run();
}

#[test]
fn readers_observe_monotonic_values_under_async_replication() {
    // One writer increments the register; several readers on different
    // nodes read through nearest replicas. Because the register's value
    // only ever increases and the proxy enforces a version floor,
    // each reader's observed sequence must be non-decreasing.
    let mut sim = Simulation::new(NetworkConfig::lan(), 7);
    let ns = spawn_name_server(&sim, NodeId(0));
    spawn_replica_group(
        &sim,
        ns,
        group("reg", &[1, 2, 3], Propagation::Async),
        || Box::new(Register(0)),
    );
    sim.spawn("writer", NodeId(4), move |ctx| {
        let mut rt = client_runtime(ns);
        let reg = rt.bind(ctx, "reg").unwrap();
        for i in 1..=40u64 {
            rt.invoke(ctx, reg, "write", Value::record([("v", Value::U64(i))]))
                .unwrap();
            ctx.sleep(Duration::from_millis(1)).unwrap();
        }
    });
    for c in 0..3u32 {
        sim.spawn(format!("reader{c}"), NodeId(5 + c), move |ctx| {
            let mut rt = client_runtime(ns);
            let reg = rt.bind(ctx, "reg").unwrap();
            let mut last = 0u64;
            for _ in 0..40 {
                let v = rt
                    .invoke(ctx, reg, "read", Value::Null)
                    .unwrap()
                    .as_u64()
                    .unwrap();
                assert!(
                    v >= last,
                    "non-monotonic read: saw {v} after {last} (reader {c})"
                );
                last = v;
                ctx.sleep(Duration::from_millis(1)).unwrap();
            }
        });
    }
    sim.run();
}
