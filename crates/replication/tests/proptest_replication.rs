//! Property-based tests of replication guarantees under arbitrary
//! schedules: read-your-writes and monotonic reads must hold for every
//! interleaving of writes, reads and pauses, under both propagation
//! modes, with the client placed anywhere.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use proptest::prelude::*;
use proxy_core::{InterfaceDesc, OpDesc, ReadTarget, ServiceObject};
use replication::{client_runtime, spawn_replica_group, Propagation, ReplicaGroupConfig};
use rpc::{ErrorCode, RemoteError};
use simnet::{Ctx, NetworkConfig, NodeId, Simulation};
use wire::Value;

struct Register(u64);

impl ServiceObject for Register {
    fn interface(&self) -> InterfaceDesc {
        InterfaceDesc::new(
            "register",
            [OpDesc::read_whole("read"), OpDesc::write_whole("write")],
        )
    }
    fn dispatch(&mut self, _ctx: &mut Ctx, op: &str, args: &Value) -> Result<Value, RemoteError> {
        match op {
            "read" => Ok(Value::U64(self.0)),
            "write" => {
                self.0 = args
                    .get_u64("v")
                    .map_err(|e| RemoteError::new(ErrorCode::BadArgs, e.to_string()))?;
                Ok(Value::Null)
            }
            other => Err(RemoteError::new(ErrorCode::NoSuchOp, other.to_owned())),
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Step {
    Write,
    Read,
    Pause(u8),
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            Just(Step::Write),
            Just(Step::Read),
            (1u8..30).prop_map(Step::Pause),
        ],
        1..30,
    )
}

fn run_schedule(
    steps: Vec<Step>,
    propagation: Propagation,
    replicas: u32,
    seed: u64,
) -> Result<(), TestCaseError> {
    let mut sim = Simulation::new(NetworkConfig::lan().with_jitter(0.2), seed);
    let ns = naming::spawn_name_server(&sim, NodeId(0));
    spawn_replica_group(
        &sim,
        ns,
        ReplicaGroupConfig {
            service: "reg".into(),
            nodes: (0..replicas).map(|r| NodeId(1 + r)).collect(),
            propagation,
            read_target: ReadTarget::Nearest,
        },
        || Box::new(Register(0)),
    );
    let failure: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
    let f2 = Arc::clone(&failure);
    sim.spawn("driver", NodeId(50), move |ctx| {
        let mut rt = client_runtime(ns);
        let reg = rt.bind(ctx, "reg").unwrap();
        let mut last_written = 0u64;
        let mut last_seen = 0u64;
        let mut counter = 0u64;
        for (i, step) in steps.iter().enumerate() {
            match step {
                Step::Write => {
                    counter += 1;
                    rt.invoke(ctx, reg, "write", Value::record([("v", Value::U64(counter))]))
                        .unwrap();
                    last_written = counter;
                }
                Step::Read => {
                    let v = rt
                        .invoke(ctx, reg, "read", Value::Null)
                        .unwrap()
                        .as_u64()
                        .unwrap();
                    if v < last_written {
                        *f2.lock().unwrap() = Some(format!(
                            "step {i}: read {v} < own last write {last_written} (RYW violated)"
                        ));
                        return;
                    }
                    if v < last_seen {
                        *f2.lock().unwrap() = Some(format!(
                            "step {i}: read {v} < previously seen {last_seen} (monotonic reads violated)"
                        ));
                        return;
                    }
                    last_seen = v;
                }
                Step::Pause(ms) => {
                    let _ = ctx.sleep(Duration::from_millis(*ms as u64));
                }
            }
        }
    });
    sim.run();
    if let Some(msg) = failure.lock().unwrap().take() {
        return Err(TestCaseError::fail(msg));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ryw_and_monotonic_reads_sync(steps in arb_steps(), replicas in 1u32..4, seed in 0u64..10_000) {
        run_schedule(steps, Propagation::Sync, replicas, seed)?;
    }

    #[test]
    fn ryw_and_monotonic_reads_async(steps in arb_steps(), replicas in 1u32..4, seed in 0u64..10_000) {
        run_schedule(steps, Propagation::Async, replicas, seed)?;
    }
}
