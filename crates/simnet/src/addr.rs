//! Addressing: nodes, ports and endpoints.
//!
//! A *node* models a machine. Each simulated process owns one or more
//! *ports* on its node; a `(node, port)` pair is an [`Endpoint`], the unit
//! of message addressing (the analogue of a socket address).

use std::fmt;

/// Identifier of a simulated machine.
///
/// ```
/// use simnet::NodeId;
/// let n = NodeId(3);
/// assert_eq!(n.to_string(), "n3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a port on a node.
///
/// Ports below [`PortId::EPHEMERAL_BASE`] are "well-known" and may be bound
/// explicitly (services listen on them); ports at or above it are assigned
/// automatically to spawned processes.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct PortId(pub u32);

impl PortId {
    /// First automatically-assigned port number.
    pub const EPHEMERAL_BASE: u32 = 1 << 16;

    /// Whether this port was assigned automatically rather than bound
    /// to a well-known number.
    pub const fn is_ephemeral(self) -> bool {
        self.0 >= Self::EPHEMERAL_BASE
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A message destination: a port on a node.
///
/// ```
/// use simnet::{Endpoint, NodeId, PortId};
/// let ep = Endpoint::new(NodeId(1), PortId(80));
/// assert_eq!(ep.to_string(), "n1:p80");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct Endpoint {
    /// The node this endpoint lives on.
    pub node: NodeId,
    /// The port on that node.
    pub port: PortId,
}

impl Endpoint {
    /// Creates an endpoint from its parts.
    pub const fn new(node: NodeId, port: PortId) -> Endpoint {
        Endpoint { node, port }
    }

    /// Whether `other` is on the same node (a local, same-machine peer).
    pub const fn is_colocated_with(self, other: Endpoint) -> bool {
        self.node.0 == other.node.0
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.node, self.port)
    }
}

/// Identifier of a simulated process (scheduler-internal, exposed for
/// diagnostics and trace output).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub u32);

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colocation_is_by_node() {
        let a = Endpoint::new(NodeId(1), PortId(1));
        let b = Endpoint::new(NodeId(1), PortId(2));
        let c = Endpoint::new(NodeId(2), PortId(1));
        assert!(a.is_colocated_with(b));
        assert!(!a.is_colocated_with(c));
    }

    #[test]
    fn ephemeral_port_classification() {
        assert!(!PortId(80).is_ephemeral());
        assert!(PortId(PortId::EPHEMERAL_BASE).is_ephemeral());
        assert!(PortId(PortId::EPHEMERAL_BASE + 7).is_ephemeral());
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(0).to_string(), "n0");
        assert_eq!(ProcId(4).to_string(), "proc4");
        assert_eq!(Endpoint::new(NodeId(2), PortId(9)).to_string(), "n2:p9");
    }

    #[test]
    fn endpoint_ordering_is_stable() {
        let a = Endpoint::new(NodeId(1), PortId(5));
        let b = Endpoint::new(NodeId(2), PortId(0));
        assert!(a < b);
    }
}
