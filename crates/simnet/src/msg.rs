//! Messages: the unit of communication between simulated processes.

use bytes::Bytes;

use crate::addr::Endpoint;
use crate::time::SimTime;

/// A datagram delivered to a process mailbox.
///
/// Messages carry their source so a receiver can reply, the send and
/// delivery instants so protocols can measure one-way latency, and an
/// opaque payload (protocol layers above `simnet` define the encoding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Endpoint the message was sent from.
    pub src: Endpoint,
    /// Endpoint the message was addressed to.
    pub dst: Endpoint,
    /// Opaque payload bytes.
    pub payload: Bytes,
    /// Instant the sender handed the message to the network.
    pub sent_at: SimTime,
    /// Instant the network delivered it to the destination mailbox.
    pub delivered_at: SimTime,
    /// The causal span the sender was working for when it sent this
    /// ([`obs::SpanId::NONE`] for unattributed traffic). Carried so the
    /// delivery-side trace event stays attributed to the request.
    pub span: obs::SpanId,
}

impl Message {
    /// Payload size in bytes (what the network charges for).
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// One-way network latency this message experienced.
    pub fn latency(&self) -> std::time::Duration {
        self.delivered_at.saturating_since(self.sent_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{NodeId, PortId};
    use std::time::Duration;

    fn ep(n: u32, p: u32) -> Endpoint {
        Endpoint::new(NodeId(n), PortId(p))
    }

    #[test]
    fn latency_is_delivery_minus_send() {
        let m = Message {
            src: ep(0, 1),
            dst: ep(1, 2),
            payload: Bytes::from_static(b"hi"),
            sent_at: SimTime::from_micros(10),
            delivered_at: SimTime::from_micros(150),
            span: obs::SpanId::NONE,
        };
        assert_eq!(m.latency(), Duration::from_micros(140));
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }
}
