//! # simnet — deterministic discrete-event network simulation
//!
//! `simnet` is the substrate every other crate in this workspace builds
//! on. It stands in for the 1986 testbed of the proxy-principle paper
//! (Unix processes on a LAN) with something strictly more controllable:
//!
//! * **Processes** come in two kinds behind one scheduler: OS threads
//!   running ordinary blocking Rust code against a [`Ctx`] handle
//!   ([`Ctx::send`], [`Ctx::recv`], [`Ctx::sleep`]), and poll-driven
//!   [`Process`] state machines that park as a single heap entry
//!   instead of a thread stack (see the [`poll`] module) — the latter
//!   scale to hundreds of thousands of concurrent processes. The
//!   scheduler runs exactly one process at a time, in virtual-time
//!   order, so every run is deterministic for a given seed.
//! * **The network** between nodes models latency, bandwidth, jitter,
//!   loss, duplication, reordering, link overrides, partitions and node
//!   crashes (see [`NetworkConfig`] and [`Network`]).
//! * **Metrics** count messages and bytes so experiments can report
//!   protocol cost alongside simulated latency.
//!
//! ## Example
//!
//! ```
//! use simnet::{Simulation, NetworkConfig, NodeId, PortId};
//! use bytes::Bytes;
//!
//! let mut sim = Simulation::new(NetworkConfig::lan(), 42);
//! let echo = sim.spawn_at("echo", NodeId(0), PortId(7), |ctx| {
//!     while let Ok(m) = ctx.recv() {
//!         ctx.send(m.src, m.payload);
//!     }
//! });
//! sim.spawn("client", NodeId(1), move |ctx| {
//!     ctx.send(echo, Bytes::from_static(b"hello"));
//!     let reply = ctx.recv().unwrap();
//!     assert_eq!(&reply.payload[..], b"hello");
//! });
//! sim.run();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
mod metrics;
mod msg;
mod net;
pub mod poll;
mod sched;
mod time;
mod trace;

pub use addr::{Endpoint, NodeId, PortId, ProcId};
pub use metrics::{Metrics, MetricsSnapshot};
pub use msg::Message;
pub use net::{Network, NetworkConfig};
pub use poll::{Poll, ProcCx, Process};
pub use sched::{Ctx, RunReport, Simulation, Stopped};
pub use time::{duration_to_nanos, SimTime};
pub use trace::{TraceDump, TraceEvent, TraceRecord};
