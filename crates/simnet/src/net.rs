//! The network model: latency, jitter, loss, duplication, reordering,
//! link overrides and partitions.
//!
//! The model is intentionally simple and fully deterministic given the
//! simulation seed: every random decision is drawn from the scheduler's
//! single seeded RNG, in event order.
//!
//! Same-node messages model IPC: they pay [`NetworkConfig::local_latency`]
//! and are exempt from loss, duplication, jitter and partitions. Cross-node
//! messages pay latency + per-byte cost + jitter and are subject to every
//! configured fault.

use std::collections::{HashMap, HashSet};
use std::time::Duration;

use rand::Rng;

use crate::addr::NodeId;
use crate::time::SimTime;

/// Static parameters of the simulated network.
///
/// ```
/// use simnet::NetworkConfig;
/// use std::time::Duration;
///
/// let cfg = NetworkConfig::lan().with_loss(0.01);
/// assert_eq!(cfg.loss, 0.01);
/// assert!(cfg.remote_latency > Duration::ZERO);
/// ```
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct NetworkConfig {
    /// One-way latency between two ports on the same node (IPC cost).
    pub local_latency: Duration,
    /// Default one-way latency between distinct nodes.
    pub remote_latency: Duration,
    /// Additional transmission delay charged per payload byte
    /// (bandwidth model). Applies to cross-node messages only.
    pub per_byte: Duration,
    /// Uniform jitter as a fraction of the base latency: each cross-node
    /// message's latency is multiplied by a factor drawn uniformly from
    /// `[1 - jitter, 1 + jitter]`. Must be in `[0, 1)`.
    pub jitter: f64,
    /// Probability a cross-node message is silently dropped.
    pub loss: f64,
    /// Probability a cross-node message is delivered twice.
    pub duplicate: f64,
    /// Extra random delay drawn uniformly from `[0, reorder_window]` per
    /// cross-node message; a nonzero window lets later sends overtake
    /// earlier ones.
    pub reorder_window: Duration,
}

impl NetworkConfig {
    /// A fault-free local-area network: 10µs IPC, 500µs one-way remote
    /// latency, 1ns/byte (~1 GB/s), no jitter/loss/duplication.
    pub fn lan() -> NetworkConfig {
        NetworkConfig {
            local_latency: Duration::from_micros(10),
            remote_latency: Duration::from_micros(500),
            per_byte: Duration::from_nanos(1),
            jitter: 0.0,
            loss: 0.0,
            duplicate: 0.0,
            reorder_window: Duration::ZERO,
        }
    }

    /// A wide-area network: 50µs IPC, 20ms one-way remote latency,
    /// 10ns/byte, 10% jitter.
    pub fn wan() -> NetworkConfig {
        NetworkConfig {
            local_latency: Duration::from_micros(50),
            remote_latency: Duration::from_millis(20),
            per_byte: Duration::from_nanos(10),
            jitter: 0.10,
            loss: 0.0,
            duplicate: 0.0,
            reorder_window: Duration::ZERO,
        }
    }

    /// Sets the drop probability for cross-node messages.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not in `[0, 1]`.
    pub fn with_loss(mut self, loss: f64) -> NetworkConfig {
        assert!((0.0..=1.0).contains(&loss), "loss must be in [0,1]");
        self.loss = loss;
        self
    }

    /// Sets the duplication probability for cross-node messages.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn with_duplicate(mut self, p: f64) -> NetworkConfig {
        assert!((0.0..=1.0).contains(&p), "duplicate must be in [0,1]");
        self.duplicate = p;
        self
    }

    /// Sets the jitter fraction for cross-node messages.
    ///
    /// # Panics
    ///
    /// Panics if `jitter` is not in `[0, 1)`.
    pub fn with_jitter(mut self, jitter: f64) -> NetworkConfig {
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0,1)");
        self.jitter = jitter;
        self
    }

    /// Sets the default cross-node latency.
    pub fn with_remote_latency(mut self, d: Duration) -> NetworkConfig {
        self.remote_latency = d;
        self
    }

    /// Sets the reorder window for cross-node messages.
    pub fn with_reorder_window(mut self, d: Duration) -> NetworkConfig {
        self.reorder_window = d;
        self
    }
}

impl Default for NetworkConfig {
    /// The [`NetworkConfig::lan`] profile.
    fn default() -> NetworkConfig {
        NetworkConfig::lan()
    }
}

/// An unordered node pair, used as the key for per-link state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct LinkKey(NodeId, NodeId);

impl LinkKey {
    fn new(a: NodeId, b: NodeId) -> LinkKey {
        if a <= b {
            LinkKey(a, b)
        } else {
            LinkKey(b, a)
        }
    }
}

/// What the network decided to do with one message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Fate {
    /// Deliver at each listed instant (two entries = duplicated).
    Deliver(Vec<SimTime>),
    /// Dropped by the loss model.
    Dropped,
    /// Discarded: src and dst are partitioned or a node is down.
    Blackholed,
}

/// Mutable network state: configuration plus runtime faults.
///
/// Owned by the simulation; processes manipulate it through
/// [`crate::Ctx::net`] and test drivers through
/// [`crate::Simulation::net`].
#[derive(Debug)]
pub struct Network {
    config: NetworkConfig,
    latency_overrides: HashMap<LinkKey, Duration>,
    partitions: HashSet<LinkKey>,
    down: HashSet<NodeId>,
}

impl Network {
    pub(crate) fn new(config: NetworkConfig) -> Network {
        Network {
            config,
            latency_overrides: HashMap::new(),
            partitions: HashSet::new(),
            down: HashSet::new(),
        }
    }

    /// Current configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Replaces the drop probability (runtime fault injection).
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not in `[0, 1]`.
    pub fn set_loss(&mut self, loss: f64) {
        assert!((0.0..=1.0).contains(&loss), "loss must be in [0,1]");
        self.config.loss = loss;
    }

    /// Replaces the duplication probability (runtime fault injection).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn set_duplicate(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "duplicate must be in [0,1]");
        self.config.duplicate = p;
    }

    /// Overrides the one-way latency between a specific node pair
    /// (both directions). Used to model topologies where some replicas
    /// are nearer than others.
    pub fn set_link_latency(&mut self, a: NodeId, b: NodeId, d: Duration) {
        self.latency_overrides.insert(LinkKey::new(a, b), d);
    }

    /// Removes a link-latency override.
    pub fn clear_link_latency(&mut self, a: NodeId, b: NodeId) {
        self.latency_overrides.remove(&LinkKey::new(a, b));
    }

    /// The smallest possible base latency between nodes in *different*
    /// scheduling domains (node `i` belongs to domain `i % ndomains`):
    /// the remote latency, unless some cross-domain pair has a lower
    /// override. This is the scheduler's conservative lookahead bound —
    /// no cross-domain message can arrive sooner than this (scaled down
    /// by the jitter factor). Nodes in the same domain never constrain
    /// the bound: their traffic stays inside one event queue.
    pub fn min_cross_domain_base_latency(&self, ndomains: usize) -> Duration {
        let mut min = self.config.remote_latency;
        for (k, d) in &self.latency_overrides {
            let cross = k.0 .0 as usize % ndomains != k.1 .0 as usize % ndomains;
            if cross && *d < min {
                min = *d;
            }
        }
        min
    }

    /// Cuts the link between `a` and `b`: messages in either direction are
    /// blackholed until [`Network::heal`].
    pub fn partition(&mut self, a: NodeId, b: NodeId) {
        self.partitions.insert(LinkKey::new(a, b));
    }

    /// Restores the link between `a` and `b`.
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        self.partitions.remove(&LinkKey::new(a, b));
    }

    /// Whether the pair is currently partitioned.
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.partitions.contains(&LinkKey::new(a, b))
    }

    /// Marks a node as crashed: all messages to or from it are blackholed.
    pub fn take_down(&mut self, n: NodeId) {
        self.down.insert(n);
    }

    /// Brings a crashed node back.
    pub fn bring_up(&mut self, n: NodeId) {
        self.down.remove(&n);
    }

    /// Whether the node is currently marked down.
    pub fn is_down(&self, n: NodeId) -> bool {
        self.down.contains(&n)
    }

    /// Base one-way latency between two nodes, before jitter and the
    /// per-byte charge.
    pub fn base_latency(&self, src: NodeId, dst: NodeId) -> Duration {
        if src == dst {
            self.config.local_latency
        } else {
            self.latency_overrides
                .get(&LinkKey::new(src, dst))
                .copied()
                .unwrap_or(self.config.remote_latency)
        }
    }

    /// Decides the fate and delivery time(s) of a message sent `now`.
    pub(crate) fn plan<R: Rng>(
        &self,
        src: NodeId,
        dst: NodeId,
        size: usize,
        now: SimTime,
        rng: &mut R,
    ) -> Fate {
        if self.down.contains(&src) || self.down.contains(&dst) {
            return Fate::Blackholed;
        }
        let local = src == dst;
        if !local && self.partitions.contains(&LinkKey::new(src, dst)) {
            return Fate::Blackholed;
        }
        if local {
            // IPC: fixed cost, fault-exempt.
            return Fate::Deliver(vec![now + self.config.local_latency]);
        }
        if self.config.loss > 0.0 && rng.gen_bool(self.config.loss) {
            return Fate::Dropped;
        }
        let base = self.base_latency(src, dst)
            + Duration::from_nanos(
                (self.config.per_byte.as_nanos() as u64).saturating_mul(size as u64),
            );
        let mut times = Vec::with_capacity(1);
        let copies = if self.config.duplicate > 0.0 && rng.gen_bool(self.config.duplicate) {
            2
        } else {
            1
        };
        for _ in 0..copies {
            let mut lat = base;
            if self.config.jitter > 0.0 {
                let factor = 1.0 + rng.gen_range(-self.config.jitter..=self.config.jitter);
                lat = Duration::from_nanos((base.as_nanos() as f64 * factor) as u64);
            }
            if !self.config.reorder_window.is_zero() {
                lat += Duration::from_nanos(
                    rng.gen_range(0..=self.config.reorder_window.as_nanos() as u64),
                );
            }
            times.push(now + lat);
        }
        Fate::Deliver(times)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn local_messages_are_fault_exempt() {
        let mut net = Network::new(NetworkConfig::lan().with_loss(1.0).with_duplicate(1.0));
        net.partition(NodeId(0), NodeId(1));
        let fate = net.plan(NodeId(0), NodeId(0), 100, SimTime::ZERO, &mut rng());
        match fate {
            Fate::Deliver(ts) => {
                assert_eq!(ts.len(), 1);
                assert_eq!(ts[0], SimTime::ZERO + Duration::from_micros(10));
            }
            other => panic!("expected delivery, got {other:?}"),
        }
    }

    #[test]
    fn total_loss_drops_every_remote_message() {
        let net = Network::new(NetworkConfig::lan().with_loss(1.0));
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(
                net.plan(NodeId(0), NodeId(1), 10, SimTime::ZERO, &mut r),
                Fate::Dropped
            );
        }
    }

    #[test]
    fn duplication_yields_two_copies() {
        let net = Network::new(NetworkConfig::lan().with_duplicate(1.0));
        match net.plan(NodeId(0), NodeId(1), 0, SimTime::ZERO, &mut rng()) {
            Fate::Deliver(ts) => assert_eq!(ts.len(), 2),
            other => panic!("expected delivery, got {other:?}"),
        }
    }

    #[test]
    fn partition_blackholes_both_directions() {
        let mut net = Network::new(NetworkConfig::lan());
        net.partition(NodeId(1), NodeId(2));
        assert!(net.is_partitioned(NodeId(2), NodeId(1)));
        let mut r = rng();
        assert_eq!(
            net.plan(NodeId(1), NodeId(2), 1, SimTime::ZERO, &mut r),
            Fate::Blackholed
        );
        assert_eq!(
            net.plan(NodeId(2), NodeId(1), 1, SimTime::ZERO, &mut r),
            Fate::Blackholed
        );
        net.heal(NodeId(2), NodeId(1));
        assert!(!net.is_partitioned(NodeId(1), NodeId(2)));
        assert!(matches!(
            net.plan(NodeId(1), NodeId(2), 1, SimTime::ZERO, &mut r),
            Fate::Deliver(_)
        ));
    }

    #[test]
    fn down_node_blackholes_even_local_traffic() {
        let mut net = Network::new(NetworkConfig::lan());
        net.take_down(NodeId(3));
        assert!(net.is_down(NodeId(3)));
        let mut r = rng();
        assert_eq!(
            net.plan(NodeId(3), NodeId(3), 1, SimTime::ZERO, &mut r),
            Fate::Blackholed
        );
        net.bring_up(NodeId(3));
        assert!(matches!(
            net.plan(NodeId(3), NodeId(3), 1, SimTime::ZERO, &mut r),
            Fate::Deliver(_)
        ));
    }

    #[test]
    fn per_byte_cost_scales_with_size() {
        let net = Network::new(NetworkConfig::lan());
        let mut r = rng();
        let small = match net.plan(NodeId(0), NodeId(1), 0, SimTime::ZERO, &mut r) {
            Fate::Deliver(ts) => ts[0],
            _ => unreachable!(),
        };
        let big = match net.plan(NodeId(0), NodeId(1), 1_000_000, SimTime::ZERO, &mut r) {
            Fate::Deliver(ts) => ts[0],
            _ => unreachable!(),
        };
        assert_eq!(big - small, Duration::from_millis(1));
    }

    #[test]
    fn link_override_changes_latency() {
        let mut net = Network::new(NetworkConfig::lan());
        net.set_link_latency(NodeId(0), NodeId(1), Duration::from_millis(7));
        assert_eq!(
            net.base_latency(NodeId(1), NodeId(0)),
            Duration::from_millis(7)
        );
        assert_eq!(
            net.base_latency(NodeId(0), NodeId(2)),
            NetworkConfig::lan().remote_latency
        );
        net.clear_link_latency(NodeId(1), NodeId(0));
        assert_eq!(
            net.base_latency(NodeId(0), NodeId(1)),
            NetworkConfig::lan().remote_latency
        );
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let net = Network::new(NetworkConfig::lan().with_jitter(0.2));
        let base = NetworkConfig::lan().remote_latency.as_nanos() as f64;
        let mut r = rng();
        for _ in 0..200 {
            match net.plan(NodeId(0), NodeId(1), 0, SimTime::ZERO, &mut r) {
                Fate::Deliver(ts) => {
                    let lat = ts[0].as_nanos() as f64;
                    assert!(lat >= base * 0.8 - 1.0 && lat <= base * 1.2 + 1.0);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "loss must be in [0,1]")]
    fn invalid_loss_rejected() {
        let _ = NetworkConfig::lan().with_loss(1.5);
    }
}
