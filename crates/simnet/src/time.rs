//! Virtual time for the discrete-event simulator.
//!
//! Simulated time is a nanosecond counter starting at zero when the
//! simulation starts. It only advances when the scheduler dispatches an
//! event, so a run is fully deterministic regardless of host load.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An instant in simulated time, in nanoseconds since simulation start.
///
/// `SimTime` is totally ordered and supports arithmetic with
/// [`std::time::Duration`]:
///
/// ```
/// use simnet::SimTime;
/// use std::time::Duration;
///
/// let t = SimTime::ZERO + Duration::from_micros(250);
/// assert_eq!(t.as_nanos(), 250_000);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; used as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a `SimTime` from raw nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> SimTime {
        SimTime(nanos)
    }

    /// Creates a `SimTime` from microseconds since simulation start.
    pub const fn from_micros(micros: u64) -> SimTime {
        SimTime(micros * 1_000)
    }

    /// Creates a `SimTime` from milliseconds since simulation start.
    pub const fn from_millis(millis: u64) -> SimTime {
        SimTime(millis * 1_000_000)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed as microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// This instant expressed as milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// This instant expressed as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Elapsed duration since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(duration_to_nanos(d)))
    }
}

/// Converts a [`Duration`] to nanoseconds, saturating at `u64::MAX`.
///
/// Durations beyond ~584 years of simulated time are clamped, which is far
/// outside any meaningful experiment horizon.
pub fn duration_to_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        self.saturating_add(rhs)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    /// Returns the duration between two instants.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when that is possible.
    fn sub(self, rhs: SimTime) -> Duration {
        assert!(
            self.0 >= rhs.0,
            "SimTime subtraction underflow: {self} - {rhs}"
        );
        Duration::from_nanos(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Pick the most readable unit for the magnitude.
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }

    #[test]
    fn add_duration_advances() {
        let t = SimTime::ZERO + Duration::from_millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        assert_eq!(t.as_micros(), 5_000);
        assert_eq!(t.as_millis(), 5);
    }

    #[test]
    fn add_assign_advances() {
        let mut t = SimTime::from_micros(1);
        t += Duration::from_micros(2);
        assert_eq!(t, SimTime::from_micros(3));
    }

    #[test]
    fn subtraction_gives_duration() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(4);
        assert_eq!(a - b, Duration::from_millis(6));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = SimTime::from_millis(1) - SimTime::from_millis(2);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert_eq!(a.saturating_since(b), Duration::ZERO);
        assert_eq!(b.saturating_since(a), Duration::from_millis(1));
    }

    #[test]
    fn saturating_add_clamps_at_max() {
        let t = SimTime::MAX.saturating_add(Duration::from_secs(1));
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimTime::from_nanos(1_500).to_string(), "1.500us");
        assert_eq!(SimTime::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimTime::from_millis(1_500).to_string(), "1.500s");
    }

    #[test]
    fn huge_duration_saturates() {
        assert_eq!(duration_to_nanos(Duration::MAX), u64::MAX);
    }
}
