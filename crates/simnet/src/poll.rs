//! Poll-driven processes: a parked process is one heap entry, not a
//! thread stack.
//!
//! The classic simnet process is an OS thread running blocking code (see
//! [`sched`](crate::sched)); that style reads naturally but caps a
//! simulation at a few thousand processes. A *poll-driven* process is a
//! state machine instead: a [`Process`] whose `poll` method the
//! scheduler calls whenever one of its wake conditions fires, and which
//! returns [`Poll::Pending`] to park itself. Parking costs nothing but
//! the machine's own struct in the process table, so a simulation can
//! hold hundreds of thousands of concurrent clients (experiment E16
//! runs 100k+).
//!
//! # Process states and block reasons
//!
//! A poll-driven process moves through three states:
//!
//! * **not started** — spawned, first poll scheduled at the current
//!   instant;
//! * **parked** — the last poll returned [`Poll::Pending`]; the machine
//!   sits in the process table waiting for a wake;
//! * **finished** — the last poll returned [`Poll::Ready`] (or the
//!   machine panicked, or the process was killed).
//!
//! A parked process wakes for exactly two reasons, mirroring the block
//! reasons of the threaded runtime:
//!
//! * **message delivery** (the `recv` reason) — every datagram delivered
//!   to one of the process's endpoints triggers a poll, so a machine
//!   that drains its mailbox with [`Ctx::try_recv`] can never miss a
//!   message: anything that arrives after it observed an empty mailbox
//!   schedules a fresh poll. Completion of an in-flight RPC is this
//!   reason seen from one layer up: the reply datagram *is* the wake.
//! * **timer** (the `sleep`/`timeout` reason) — the machine asked for a
//!   wake at an instant via [`ProcCx::wake_at`] / [`ProcCx::wake_after`]
//!   before parking. Each park arms at most one timer (the earliest
//!   requested); re-arming happens naturally because `poll` re-requests
//!   whatever deadline still matters. Stale timers from earlier parks
//!   are ignored via a per-park generation counter.
//!
//! Inside `poll` the machine has the full non-blocking [`Ctx`] surface
//! (`ProcCx` derefs to `Ctx`): `try_recv`, `send`, `spawn`, tracing,
//! observability. The *blocking* surface (`recv`, `sleep`, …) panics
//! with a descriptive message — a state machine parks by returning
//! `Pending`, never by suspending a stack.
//!
//! # Determinism
//!
//! Polls run on the thread driving the machine's scheduler *domain* —
//! the main thread by default, a worker thread when the simulation is
//! sharded with [`Simulation::with_domains`] and given a pool via
//! [`Simulation::with_threads`]. Either way the domain executes its
//! events in deterministic order and the cross-domain merge is decided
//! by `(time, src_domain, seq)`, never by thread timing, so runs stay
//! bit-for-bit reproducible: same seed, same event order, same polls,
//! at any thread count (see the `sched` module docs). The `Process`
//! trait is `Send` because a machine may be polled from a worker
//! thread.
//!
//! # Example
//!
//! ```
//! use simnet::{Poll, ProcCx, Simulation, NetworkConfig, NodeId};
//! use std::time::Duration;
//!
//! let mut sim = Simulation::new(NetworkConfig::lan(), 1);
//! let mut ticks = 0;
//! sim.spawn_poll("ticker", NodeId(0), move |cx: &mut ProcCx| {
//!     ticks += 1;
//!     if ticks == 3 {
//!         return Poll::Ready(());
//!     }
//!     cx.wake_after(Duration::from_millis(10));
//!     Poll::Pending
//! });
//! let report = sim.run();
//! assert_eq!(report.finished, 1);
//! ```

use std::ops::{Deref, DerefMut};
use std::time::Duration;

use crate::sched::Ctx;
use crate::time::SimTime;

/// Re-export of [`std::task::Poll`], the return type of
/// [`Process::poll`].
pub use std::task::Poll;

/// A poll-driven simulated process: a state machine the scheduler polls
/// whenever one of its wake conditions fires.
///
/// Return [`Poll::Pending`] to park (after registering a timer wake via
/// [`ProcCx::wake_at`] if the machine is waiting on time rather than on
/// a message), or [`Poll::Ready`] when the process is done. Implemented
/// for free by any `FnMut(&mut ProcCx) -> Poll<()> + Send` closure.
pub trait Process: Send + 'static {
    /// Advances the state machine as far as it can without blocking.
    fn poll(&mut self, cx: &mut ProcCx) -> Poll<()>;
}

impl<F> Process for F
where
    F: FnMut(&mut ProcCx) -> Poll<()> + Send + 'static,
{
    fn poll(&mut self, cx: &mut ProcCx) -> Poll<()> {
        self(cx)
    }
}

/// The context handed to [`Process::poll`]: the process's [`Ctx`] plus
/// the wake registration the machine arms before parking.
///
/// Derefs to [`Ctx`], so every non-blocking `Ctx` operation (`try_recv`,
/// `send`, `spawn`, `trace`, `obs`, …) is available directly. The
/// blocking operations panic in a poll-driven process.
pub struct ProcCx {
    pub(crate) ctx: Ctx,
    pub(crate) wake_at: Option<SimTime>,
}

impl std::fmt::Debug for ProcCx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcCx")
            .field("ctx", &self.ctx)
            .field("wake_at", &self.wake_at)
            .finish()
    }
}

impl Deref for ProcCx {
    type Target = Ctx;
    fn deref(&self) -> &Ctx {
        &self.ctx
    }
}

impl DerefMut for ProcCx {
    fn deref_mut(&mut self) -> &mut Ctx {
        &mut self.ctx
    }
}

impl ProcCx {
    pub(crate) fn new(ctx: Ctx) -> ProcCx {
        ProcCx { ctx, wake_at: None }
    }

    /// The underlying [`Ctx`] (equivalent to deref, spelled out for
    /// call sites that want a `&mut Ctx` to pass on).
    pub fn ctx(&mut self) -> &mut Ctx {
        &mut self.ctx
    }

    /// Requests a timer wake at the absolute instant `at` (clamped to
    /// now). Multiple requests within one poll keep the earliest; the
    /// registration is consumed when the process parks, so each poll
    /// must re-request whatever deadline still matters. A message
    /// delivery always wakes the process regardless.
    pub fn wake_at(&mut self, at: SimTime) {
        self.wake_at = Some(match self.wake_at {
            Some(cur) => cur.min(at),
            None => at,
        });
    }

    /// Requests a timer wake `d` from now — the poll-driven equivalent
    /// of [`Ctx::sleep`].
    pub fn wake_after(&mut self, d: Duration) {
        let at = self.ctx.now() + d;
        self.wake_at(at);
    }

    /// Requests an immediate re-poll (after all events already due at
    /// this instant) — the poll-driven equivalent of a yield.
    pub fn yield_now(&mut self) {
        let now = self.ctx.now();
        self.wake_at(now);
    }

    /// Takes the armed timer registration, leaving none (scheduler use).
    pub(crate) fn take_wake(&mut self) -> Option<SimTime> {
        self.wake_at.take()
    }
}
