//! Event tracing: a bounded timeline of what the simulation did.
//!
//! Disabled by default (zero overhead beyond a branch); enable with
//! [`crate::Simulation::enable_trace`] and read the timeline back with
//! [`crate::Simulation::take_trace`]. Intended for debugging protocol
//! interleavings and for assertions in tests that care about *ordering*
//! rather than aggregate counts.

use std::collections::VecDeque;
use std::fmt;

use crate::addr::{Endpoint, ProcId};
use crate::time::SimTime;

/// One entry in the timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A process was created.
    Spawned {
        /// The new process.
        pid: ProcId,
        /// Its name.
        name: String,
        /// Its primary endpoint.
        endpoint: Endpoint,
    },
    /// A message was handed to the network.
    Sent {
        /// Source endpoint.
        src: Endpoint,
        /// Destination endpoint.
        dst: Endpoint,
        /// Payload size in bytes.
        bytes: usize,
    },
    /// A message reached a destination mailbox.
    Delivered {
        /// Source endpoint.
        src: Endpoint,
        /// Destination endpoint.
        dst: Endpoint,
        /// Payload size in bytes.
        bytes: usize,
    },
    /// The loss model dropped a message.
    Dropped {
        /// Source endpoint.
        src: Endpoint,
        /// Destination endpoint.
        dst: Endpoint,
    },
    /// A partition/down-node/unbound endpoint swallowed a message.
    Blackholed {
        /// Source endpoint.
        src: Endpoint,
        /// Destination endpoint.
        dst: Endpoint,
    },
    /// A process ran to completion.
    Finished {
        /// The finished process.
        pid: ProcId,
    },
    /// A process was killed.
    Killed {
        /// The killed process.
        pid: ProcId,
    },
}

/// A timestamped trace entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub event: TraceEvent,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.at)?;
        match &self.event {
            TraceEvent::Spawned {
                pid,
                name,
                endpoint,
            } => write!(f, "spawn {pid} `{name}` at {endpoint}"),
            TraceEvent::Sent { src, dst, bytes } => write!(f, "send {src} -> {dst} ({bytes}B)"),
            TraceEvent::Delivered { src, dst, bytes } => {
                write!(f, "deliver {src} -> {dst} ({bytes}B)")
            }
            TraceEvent::Dropped { src, dst } => write!(f, "drop {src} -> {dst}"),
            TraceEvent::Blackholed { src, dst } => write!(f, "blackhole {src} -> {dst}"),
            TraceEvent::Finished { pid } => write!(f, "finish {pid}"),
            TraceEvent::Killed { pid } => write!(f, "kill {pid}"),
        }
    }
}

/// Bounded event buffer; oldest entries fall off when full.
#[derive(Debug)]
pub(crate) struct Trace {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    /// Entries discarded because the buffer was full.
    pub(crate) truncated: u64,
}

impl Trace {
    pub(crate) fn new(capacity: usize) -> Trace {
        Trace {
            records: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            truncated: 0,
        }
    }

    pub(crate) fn push(&mut self, at: SimTime, event: TraceEvent) {
        if self.records.len() >= self.capacity {
            self.records.pop_front();
            self.truncated += 1;
        }
        self.records.push_back(TraceRecord { at, event });
    }

    pub(crate) fn drain(&mut self) -> Vec<TraceRecord> {
        self.records.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{NodeId, PortId};

    fn ep(n: u32, p: u32) -> Endpoint {
        Endpoint::new(NodeId(n), PortId(p))
    }

    #[test]
    fn bounded_buffer_truncates_oldest() {
        let mut t = Trace::new(2);
        for i in 0..4u32 {
            t.push(
                SimTime::from_micros(i as u64),
                TraceEvent::Finished { pid: ProcId(i) },
            );
        }
        let records = t.drain();
        assert_eq!(records.len(), 2);
        assert_eq!(t.truncated, 2);
        assert_eq!(
            records[0].event,
            TraceEvent::Finished { pid: ProcId(2) },
            "oldest entries evicted first"
        );
    }

    #[test]
    fn display_is_readable() {
        let r = TraceRecord {
            at: SimTime::from_micros(1500),
            event: TraceEvent::Sent {
                src: ep(0, 1),
                dst: ep(1, 2),
                bytes: 64,
            },
        };
        let s = r.to_string();
        assert!(s.contains("1.500ms") || s.contains("1500"), "{s}");
        assert!(s.contains("n0:p1 -> n1:p2"));
        assert!(s.contains("64B"));
    }
}
