//! Event tracing: a bounded timeline of what the simulation did.
//!
//! Disabled by default (zero overhead beyond a branch); enable with
//! [`crate::Simulation::enable_trace`] and read the timeline back with
//! [`crate::Simulation::take_trace`]. Intended for debugging protocol
//! interleavings, for assertions in tests that care about *ordering*
//! rather than aggregate counts, and — through
//! [`TraceRecord::to_net_event`] — as the network-event feed of the
//! `obs` causal trace pipeline.
//!
//! Network events carry the [`obs::SpanId`] of the request they were
//! sent on behalf of ([`obs::SpanId::NONE`] for unattributed traffic
//! such as name-service lookups), so a timeline entry can always be
//! tied back to the client invocation that caused it.

use std::collections::VecDeque;
use std::fmt;

use obs::SpanId;

use crate::addr::{Endpoint, ProcId};
use crate::time::SimTime;

/// One entry in the timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A process was created.
    Spawned {
        /// The new process.
        pid: ProcId,
        /// Its name.
        name: String,
        /// Its primary endpoint.
        endpoint: Endpoint,
    },
    /// A message was handed to the network.
    Sent {
        /// Source endpoint.
        src: Endpoint,
        /// Destination endpoint.
        dst: Endpoint,
        /// Payload size in bytes.
        bytes: usize,
        /// The span the sender was working for.
        span: SpanId,
    },
    /// A message reached a destination mailbox.
    Delivered {
        /// Source endpoint.
        src: Endpoint,
        /// Destination endpoint.
        dst: Endpoint,
        /// Payload size in bytes.
        bytes: usize,
        /// The span the message was sent on behalf of.
        span: SpanId,
    },
    /// The loss model dropped a message.
    Dropped {
        /// Source endpoint.
        src: Endpoint,
        /// Destination endpoint.
        dst: Endpoint,
        /// The span the message was sent on behalf of.
        span: SpanId,
    },
    /// A partition/down-node/unbound endpoint swallowed a message.
    Blackholed {
        /// Source endpoint.
        src: Endpoint,
        /// Destination endpoint.
        dst: Endpoint,
        /// The span the message was sent on behalf of.
        span: SpanId,
    },
    /// Several RPC envelopes were coalesced into one datagram.
    Batched {
        /// The batching endpoint.
        src: Endpoint,
        /// Where the batch is headed.
        dst: Endpoint,
        /// How many envelopes the datagram carries.
        count: usize,
        /// The span the batch serves ([`obs::SpanId::NONE`] when the
        /// items belong to many spans).
        span: SpanId,
    },
    /// An RPC client timed out an attempt and re-sent its request.
    Retransmit {
        /// The retransmitting client endpoint.
        src: Endpoint,
        /// The unresponsive server endpoint.
        dst: Endpoint,
        /// The request's span.
        span: SpanId,
        /// Attempt number (1 = first retransmission).
        attempt: u32,
    },
    /// A server finished executing a dispatched operation.
    ServerExecute {
        /// The executing server process's name.
        service: String,
        /// The operation.
        op: String,
        /// The dispatch span.
        span: SpanId,
        /// Handler execution time in virtual nanoseconds.
        dur_ns: u64,
    },
    /// A caching proxy answered a read locally.
    ProxyCacheHit {
        /// The proxied service.
        service: String,
        /// The operation.
        op: String,
        /// The invoking span.
        span: SpanId,
    },
    /// A caching proxy went remote for a read.
    ProxyCacheMiss {
        /// The proxied service.
        service: String,
        /// The operation.
        op: String,
        /// The invoking span.
        span: SpanId,
    },
    /// A forwarder redirected a caller to an object's new home.
    Forwarded {
        /// The forwarder's endpoint.
        from: Endpoint,
        /// Where it pointed the caller.
        to: Endpoint,
        /// The redirected request's span.
        span: SpanId,
    },
    /// An object relocated (migration, checkout or checkin).
    Migrated {
        /// The service that moved.
        service: String,
        /// Where it was.
        from: Endpoint,
        /// Where it now lives.
        to: Endpoint,
        /// The span of the request that triggered the move.
        span: SpanId,
    },
    /// A process ran to completion.
    Finished {
        /// The finished process.
        pid: ProcId,
    },
    /// A process was killed.
    Killed {
        /// The killed process.
        pid: ProcId,
    },
}

/// A timestamped trace entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub event: TraceEvent,
}

fn loc(ep: Endpoint) -> obs::Loc {
    obs::Loc::new(ep.node.0, ep.port.0)
}

impl TraceRecord {
    /// Converts this record to the crate-neutral network-event form the
    /// `obs` trace pipeline consumes. Process lifecycle entries
    /// (`Spawned`/`Finished`/`Killed`) have no network meaning and map
    /// to `None`.
    pub fn to_net_event(&self) -> Option<obs::NetEvent> {
        let at_ns = self.at.as_nanos();
        let (span, kind) = match &self.event {
            TraceEvent::Sent {
                src,
                dst,
                bytes,
                span,
            } => (
                *span,
                obs::NetEventKind::Sent {
                    src: loc(*src),
                    dst: loc(*dst),
                    bytes: *bytes as u64,
                },
            ),
            TraceEvent::Delivered {
                src,
                dst,
                bytes,
                span,
            } => (
                *span,
                obs::NetEventKind::Delivered {
                    src: loc(*src),
                    dst: loc(*dst),
                    bytes: *bytes as u64,
                },
            ),
            TraceEvent::Dropped { src, dst, span } => (
                *span,
                obs::NetEventKind::Dropped {
                    src: loc(*src),
                    dst: loc(*dst),
                },
            ),
            TraceEvent::Blackholed { src, dst, span } => (
                *span,
                obs::NetEventKind::Blackholed {
                    src: loc(*src),
                    dst: loc(*dst),
                },
            ),
            TraceEvent::Batched {
                src,
                dst,
                count,
                span,
            } => (
                *span,
                obs::NetEventKind::Batched {
                    src: loc(*src),
                    dst: loc(*dst),
                    count: *count as u64,
                },
            ),
            TraceEvent::Retransmit {
                src,
                dst,
                span,
                attempt,
            } => (
                *span,
                obs::NetEventKind::Retransmit {
                    src: loc(*src),
                    dst: loc(*dst),
                    attempt: *attempt,
                },
            ),
            TraceEvent::ServerExecute {
                service,
                op,
                span,
                dur_ns,
            } => (
                *span,
                obs::NetEventKind::ServerExecute {
                    service: service.clone(),
                    op: op.clone(),
                    dur_ns: *dur_ns,
                },
            ),
            TraceEvent::ProxyCacheHit { service, op, span } => (
                *span,
                obs::NetEventKind::ProxyCacheHit {
                    service: service.clone(),
                    op: op.clone(),
                },
            ),
            TraceEvent::ProxyCacheMiss { service, op, span } => (
                *span,
                obs::NetEventKind::ProxyCacheMiss {
                    service: service.clone(),
                    op: op.clone(),
                },
            ),
            TraceEvent::Forwarded { from, to, span } => (
                *span,
                obs::NetEventKind::Forwarded {
                    from: loc(*from),
                    to: loc(*to),
                },
            ),
            TraceEvent::Migrated {
                service,
                from,
                to,
                span,
            } => (
                *span,
                obs::NetEventKind::Migrated {
                    service: service.clone(),
                    from: loc(*from),
                    to: loc(*to),
                },
            ),
            TraceEvent::Spawned { .. }
            | TraceEvent::Finished { .. }
            | TraceEvent::Killed { .. } => {
                return None;
            }
        };
        Some(obs::NetEvent { at_ns, span, kind })
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.at)?;
        match &self.event {
            TraceEvent::Spawned {
                pid,
                name,
                endpoint,
            } => write!(f, "spawn {pid} `{name}` at {endpoint}"),
            TraceEvent::Sent {
                src,
                dst,
                bytes,
                span,
            } => write!(f, "send {src} -> {dst} ({bytes}B, {span})"),
            TraceEvent::Delivered {
                src,
                dst,
                bytes,
                span,
            } => {
                write!(f, "deliver {src} -> {dst} ({bytes}B, {span})")
            }
            TraceEvent::Dropped { src, dst, span } => write!(f, "drop {src} -> {dst} ({span})"),
            TraceEvent::Blackholed { src, dst, span } => {
                write!(f, "blackhole {src} -> {dst} ({span})")
            }
            TraceEvent::Batched {
                src,
                dst,
                count,
                span,
            } => write!(f, "batch x{count} {src} -> {dst} ({span})"),
            TraceEvent::Retransmit {
                src,
                dst,
                span,
                attempt,
            } => write!(f, "retransmit #{attempt} {src} -> {dst} ({span})"),
            TraceEvent::ServerExecute {
                service,
                op,
                span,
                dur_ns,
            } => write!(f, "execute {service}/{op} in {dur_ns}ns ({span})"),
            TraceEvent::ProxyCacheHit { service, op, span } => {
                write!(f, "cache-hit {service}/{op} ({span})")
            }
            TraceEvent::ProxyCacheMiss { service, op, span } => {
                write!(f, "cache-miss {service}/{op} ({span})")
            }
            TraceEvent::Forwarded { from, to, span } => {
                write!(f, "forward {from} -> {to} ({span})")
            }
            TraceEvent::Migrated {
                service,
                from,
                to,
                span,
            } => write!(f, "migrate {service} {from} -> {to} ({span})"),
            TraceEvent::Finished { pid } => write!(f, "finish {pid}"),
            TraceEvent::Killed { pid } => write!(f, "kill {pid}"),
        }
    }
}

/// The drained timeline plus its truncation counter.
///
/// The ring is bounded, so a busy run can shed its oldest entries;
/// `evicted` says how many. A drained trace with `evicted != 0` must
/// never be mistaken for a complete one — completeness-sensitive
/// consumers (the causal trace pipeline, ordering assertions) check
/// [`TraceDump::is_complete`]. Derefs to the record slice, so existing
/// slice-style consumers keep working.
#[derive(Debug, Clone, Default)]
pub struct TraceDump {
    /// The surviving records, oldest first.
    pub records: Vec<TraceRecord>,
    /// Records discarded because the ring was full.
    pub evicted: u64,
}

impl TraceDump {
    /// True when no record was evicted.
    pub fn is_complete(&self) -> bool {
        self.evicted == 0
    }
}

impl std::ops::Deref for TraceDump {
    type Target = [TraceRecord];

    fn deref(&self) -> &[TraceRecord] {
        &self.records
    }
}

impl IntoIterator for TraceDump {
    type Item = TraceRecord;
    type IntoIter = std::vec::IntoIter<TraceRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

impl<'a> IntoIterator for &'a TraceDump {
    type Item = &'a TraceRecord;
    type IntoIter = std::slice::Iter<'a, TraceRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

/// Bounded event buffer; oldest entries fall off when full.
#[derive(Debug)]
pub(crate) struct Trace {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    /// Entries discarded because the buffer was full.
    pub(crate) truncated: u64,
}

impl Trace {
    pub(crate) fn new(capacity: usize) -> Trace {
        Trace {
            records: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            truncated: 0,
        }
    }

    pub(crate) fn push(&mut self, at: SimTime, event: TraceEvent) {
        if self.records.len() >= self.capacity {
            self.records.pop_front();
            self.truncated += 1;
        }
        self.records.push_back(TraceRecord { at, event });
    }

    /// Drains the buffered records and resets the truncation counter,
    /// handing both to the caller.
    pub(crate) fn drain(&mut self) -> TraceDump {
        let evicted = std::mem::take(&mut self.truncated);
        TraceDump {
            records: self.records.drain(..).collect(),
            evicted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{NodeId, PortId};

    fn ep(n: u32, p: u32) -> Endpoint {
        Endpoint::new(NodeId(n), PortId(p))
    }

    #[test]
    fn bounded_buffer_truncates_oldest_and_reports_it() {
        let mut t = Trace::new(2);
        for i in 0..4u32 {
            t.push(
                SimTime::from_micros(i as u64),
                TraceEvent::Finished { pid: ProcId(i) },
            );
        }
        let dump = t.drain();
        assert_eq!(dump.len(), 2);
        assert_eq!(dump.evicted, 2);
        assert!(!dump.is_complete());
        assert_eq!(
            dump[0].event,
            TraceEvent::Finished { pid: ProcId(2) },
            "oldest entries evicted first"
        );
        // Draining resets the counter: the next dump starts clean.
        t.push(SimTime::ZERO, TraceEvent::Finished { pid: ProcId(9) });
        let dump = t.drain();
        assert_eq!(dump.evicted, 0);
        assert!(dump.is_complete());
    }

    #[test]
    fn display_is_readable() {
        let r = TraceRecord {
            at: SimTime::from_micros(1500),
            event: TraceEvent::Sent {
                src: ep(0, 1),
                dst: ep(1, 2),
                bytes: 64,
                span: SpanId(7),
            },
        };
        let s = r.to_string();
        assert!(s.contains("1.500ms") || s.contains("1500"), "{s}");
        assert!(s.contains("n0:p1 -> n1:p2"));
        assert!(s.contains("64B"));
        assert!(s.contains("span#7") || s.contains('7'), "{s}");
    }

    #[test]
    fn net_event_conversion_keeps_attribution() {
        let r = TraceRecord {
            at: SimTime::from_micros(3),
            event: TraceEvent::Dropped {
                src: ep(0, 1),
                dst: ep(1, 2),
                span: SpanId(5),
            },
        };
        let e = r.to_net_event().expect("network event");
        assert_eq!(e.at_ns, 3_000);
        assert_eq!(e.span, SpanId(5));
        assert_eq!(
            e.kind,
            obs::NetEventKind::Dropped {
                src: obs::Loc::new(0, 1),
                dst: obs::Loc::new(1, 2),
            }
        );
        let lifecycle = TraceRecord {
            at: SimTime::ZERO,
            event: TraceEvent::Finished { pid: ProcId(1) },
        };
        assert!(lifecycle.to_net_event().is_none());
    }
}
