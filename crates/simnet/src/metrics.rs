//! Network and scheduler counters.
//!
//! Every simulation owns a [`Metrics`] instance; experiment harnesses read
//! it after a run to report message counts alongside simulated latencies.
//!
//! The snapshot type is defined in the `obs` crate (the unified
//! observability layer) and re-exported here, so the same struct flows
//! unchanged into an [`obs::RunReport`].

use std::sync::atomic::{AtomicU64, Ordering};

/// Re-export of the canonical snapshot type from the observability layer.
pub use obs::MetricsSnapshot;

/// Monotonic counters accumulated over a simulation run.
///
/// All counters use relaxed atomics: the scheduler guarantees only one
/// simulated process executes at a time, so these are effectively
/// single-threaded; atomics only make the type `Sync` for sharing.
#[derive(Debug, Default)]
pub struct Metrics {
    msgs_sent: AtomicU64,
    msgs_delivered: AtomicU64,
    msgs_dropped: AtomicU64,
    msgs_duplicated: AtomicU64,
    msgs_blackholed: AtomicU64,
    bytes_sent: AtomicU64,
    events_dispatched: AtomicU64,
    processes_spawned: AtomicU64,
    processes_live: AtomicU64,
    processes_peak: AtomicU64,
    sched_time_inversions: AtomicU64,
}

impl Metrics {
    /// Creates zeroed counters.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    pub(crate) fn on_send(&self, bytes: usize) {
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn on_deliver(&self) {
        self.msgs_delivered.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_drop(&self) {
        self.msgs_dropped.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_duplicate(&self) {
        self.msgs_duplicated.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_blackhole(&self) {
        self.msgs_blackholed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_event(&self) {
        self.events_dispatched.fetch_add(1, Ordering::Relaxed);
    }

    /// Notes one process spawn and returns `(spawned_total, peak)` for
    /// the caller to sample into the flight recorder. The peak update is
    /// a plain load/store: only the scheduler thread mutates these.
    pub(crate) fn on_proc_spawn(&self) -> (u64, u64) {
        let spawned = self.processes_spawned.fetch_add(1, Ordering::Relaxed) + 1;
        let live = self.processes_live.fetch_add(1, Ordering::Relaxed) + 1;
        if live > self.processes_peak.load(Ordering::Relaxed) {
            self.processes_peak.store(live, Ordering::Relaxed);
        }
        (spawned, self.processes_peak.load(Ordering::Relaxed))
    }

    /// Spawn accounting without the peak fold, for multi-domain rounds
    /// where concurrent domains cannot order their spawns: the round
    /// barrier folds a deterministic bound in via
    /// [`Metrics::note_peak_bound`] instead.
    pub(crate) fn on_proc_spawn_counts(&self) {
        self.processes_spawned.fetch_add(1, Ordering::Relaxed);
        self.processes_live.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_proc_finish(&self) {
        self.processes_live.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current live-process count.
    pub(crate) fn live(&self) -> u64 {
        self.processes_live.load(Ordering::Relaxed)
    }

    /// Raises the peak to at least `bound` and returns the new peak.
    pub(crate) fn note_peak_bound(&self, bound: u64) -> u64 {
        self.processes_peak
            .fetch_max(bound, Ordering::Relaxed)
            .max(bound)
    }

    /// Counts one scheduler time inversion — an event dispatched at a
    /// clock later than its scheduled time. Structurally zero; nonzero
    /// means conservative lookahead was violated (e.g. a cross-domain
    /// latency was lowered mid-round).
    pub(crate) fn on_time_inversion(&self) {
        self.sched_time_inversions.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies current counter values.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            msgs_delivered: self.msgs_delivered.load(Ordering::Relaxed),
            msgs_dropped: self.msgs_dropped.load(Ordering::Relaxed),
            msgs_duplicated: self.msgs_duplicated.load(Ordering::Relaxed),
            msgs_blackholed: self.msgs_blackholed.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            events_dispatched: self.events_dispatched.load(Ordering::Relaxed),
            processes_spawned: self.processes_spawned.load(Ordering::Relaxed),
            processes_peak: self.processes_peak.load(Ordering::Relaxed),
            sched_time_inversions: self.sched_time_inversions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.on_send(10);
        m.on_send(5);
        m.on_deliver();
        m.on_drop();
        m.on_duplicate();
        m.on_blackhole();
        m.on_event();
        m.on_proc_spawn();
        m.on_proc_spawn();
        m.on_proc_finish();
        m.on_proc_spawn();
        let s = m.snapshot();
        assert_eq!(s.processes_spawned, 3);
        // live went 1, 2, 1, 2 — the peak stays at its high-water mark.
        assert_eq!(s.processes_peak, 2);
        assert_eq!(s.msgs_sent, 2);
        assert_eq!(s.bytes_sent, 15);
        assert_eq!(s.msgs_delivered, 1);
        assert_eq!(s.msgs_dropped, 1);
        assert_eq!(s.msgs_duplicated, 1);
        assert_eq!(s.msgs_blackholed, 1);
        assert_eq!(s.events_dispatched, 1);
    }

    #[test]
    fn snapshot_diff() {
        let m = Metrics::new();
        m.on_send(10);
        let before = m.snapshot();
        m.on_send(10);
        m.on_deliver();
        let diff = m.snapshot().since(&before);
        assert_eq!(diff.msgs_sent, 1);
        assert_eq!(diff.msgs_delivered, 1);
        assert_eq!(diff.bytes_sent, 10);
    }
}
