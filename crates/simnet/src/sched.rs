//! The deterministic scheduler and the process API.
//!
//! # Execution model
//!
//! The scheduler runs two kinds of simulated process behind one event
//! loop:
//!
//! * **Thread-backed** ([`Simulation::spawn`]) — an OS thread running
//!   ordinary blocking Rust code against a [`Ctx`] handle. The process
//!   runs until it blocks (in [`Ctx::recv`], [`Ctx::sleep`], …) and
//!   control then returns to the scheduler via a channel handoff.
//!   Natural to write, but each parked process pins a thread stack.
//! * **Poll-driven** ([`Simulation::spawn_poll`]) — a [`Process`] state
//!   machine the scheduler polls in event order; parking costs one heap
//!   entry in the process table, so simulations scale to hundreds of
//!   thousands of concurrent processes (see the [`poll`](crate::poll)
//!   module and experiment E16).
//!
//! Either way **exactly one process runs at any instant**, and all
//! randomness comes from a single seeded RNG drawn in event order, so
//! runs are fully deterministic: same seed, same interleaving, same
//! results.
//!
//! This is the repo's substitute for the paper's testbed of Unix processes
//! on a LAN (see `DESIGN.md` §6): processes get the natural blocking style
//! of real code, while the network in between is simulated and fault-
//! injectable.

use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::{Mutex, MutexGuard};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::addr::{Endpoint, NodeId, PortId, ProcId};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::msg::Message;
use crate::net::{Fate, Network, NetworkConfig};
use crate::poll::{Poll, ProcCx, Process};
use crate::time::SimTime;
use crate::trace::{Trace, TraceDump, TraceEvent};

/// Error returned by blocking [`Ctx`] operations once the simulation is
/// shutting down. A process receiving `Stopped` should return promptly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stopped;

impl std::fmt::Display for Stopped {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "simulation stopped")
    }
}

impl std::error::Error for Stopped {}

/// Extracts a displayable message from a caught panic payload.
fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    p.downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| p.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic>".to_string())
}

/// Scheduler → process control transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Resume {
    /// First transfer: begin executing the process body.
    Start,
    /// A sleep expired.
    Woken,
    /// A message is available in the mailbox.
    Delivered,
    /// A `recv` deadline expired with no message.
    TimedOut,
    /// The simulation is over; unwind out of blocking calls.
    Shutdown,
}

/// Process → scheduler control transfer.
#[derive(Debug)]
enum YieldMsg {
    /// Block until the given instant.
    Sleep(SimTime),
    /// Block until a message arrives or the deadline (if any) passes.
    Recv { deadline: Option<SimTime> },
    /// The process body returned (or panicked with the given message).
    Finished { panic_msg: Option<String> },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    NotStarted,
    Sleeping,
    BlockedRecv,
    /// Poll-driven process whose last poll returned `Pending`.
    Parked,
    Finished,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EvKey {
    time: SimTime,
    seq: u64,
}

enum EvKind {
    Wake(ProcId),
    Timeout { pid: ProcId, gen: u64 },
    Deliver { msg: Message },
    Kill(ProcId),
}

struct Ev {
    key: EvKey,
    kind: EvKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    // Reversed: BinaryHeap is a max-heap, we want earliest-first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.key.cmp(&self.key)
    }
}

/// A poll-driven process's state machine plus its per-process context.
/// Taken out of the registry while being polled so no lock is held
/// during user code, and put back if the poll returns `Pending`.
struct PolledMachine {
    process: Box<dyn Process>,
    cx: ProcCx,
}

/// How a process executes: a parked thread stack or a heap-allocated
/// state machine.
enum ProcKind {
    Thread {
        resume_tx: Sender<Resume>,
        yield_rx: Receiver<YieldMsg>,
        handle: Option<JoinHandle<()>>,
    },
    Polled {
        machine: Option<PolledMachine>,
    },
}

struct ProcEntry {
    name: String,
    mailbox: VecDeque<Message>,
    state: ProcState,
    /// Incremented every time the process blocks in recv (threaded) or
    /// parks (poll-driven); stale timeout events carry an older
    /// generation and are ignored.
    gen: u64,
    kind: ProcKind,
    panic_msg: Option<String>,
}

struct Registry {
    procs: HashMap<ProcId, ProcEntry>,
    endpoints: HashMap<Endpoint, ProcId>,
    next_proc: u32,
    next_ephemeral: HashMap<NodeId, u32>,
}

impl Registry {
    fn alloc_pid(&mut self) -> ProcId {
        let pid = ProcId(self.next_proc);
        self.next_proc += 1;
        pid
    }

    fn alloc_ephemeral_port(&mut self, node: NodeId) -> PortId {
        let next = self
            .next_ephemeral
            .entry(node)
            .or_insert(PortId::EPHEMERAL_BASE);
        let port = PortId(*next);
        *next += 1;
        port
    }
}

/// The scheduler's hot state: the virtual clock, the pending-event
/// heap, and the tie-breaking sequence counter. All three live under
/// ONE mutex so the run loop pops the next event and advances time in
/// a single acquisition, and `push_event` allocates a seq and enqueues
/// without a lock handoff in between. Keeping them together also
/// removes a subtle race surface: no thread can ever observe a clock
/// that is out of step with the heap it was derived from.
struct SchedState {
    now: SimTime,
    events: BinaryHeap<Ev>,
    seq: u64,
}

struct Shared {
    sched: Mutex<SchedState>,
    registry: Mutex<Registry>,
    network: Mutex<Network>,
    metrics: Arc<Metrics>,
    obs: Arc<obs::MetricsRegistry>,
    rng: Mutex<StdRng>,
    trace: Mutex<Option<Trace>>,
    /// RNG seed the simulation was built with, stamped into report
    /// provenance so artifacts from different seeds are never compared.
    seed: u64,
}

impl Shared {
    fn now(&self) -> SimTime {
        self.sched.lock().now
    }

    fn record(&self, event: TraceEvent) {
        let mut guard = self.trace.lock();
        if let Some(trace) = guard.as_mut() {
            trace.push(self.now(), event);
        }
    }

    fn push_event(&self, time: SimTime, kind: EvKind) {
        let mut sched = self.sched.lock();
        sched.seq += 1;
        let key = EvKey {
            time,
            seq: sched.seq,
        };
        sched.events.push(Ev { key, kind });
    }

    /// Plans delivery for a payload and enqueues the resulting events.
    /// `span` is the causal span the send happens on behalf of; it
    /// rides along in the [`Message`] so the delivery (or loss) trace
    /// event stays attributed to the request.
    fn send(&self, src: Endpoint, dst: Endpoint, payload: Bytes, span: obs::SpanId) {
        let now = self.now();
        self.metrics.on_send(payload.len());
        // Per-link wire bytes for the flight recorder. The enabled check
        // is one relaxed load; the series-name formatting only happens
        // when someone is recording.
        if self.obs.timeseries_enabled() {
            self.obs.ts_add(
                now.as_nanos(),
                &format!("link_bytes@n{}->n{}", src.node.0, dst.node.0),
                payload.len() as u64,
            );
        }
        self.record(TraceEvent::Sent {
            src,
            dst,
            bytes: payload.len(),
            span,
        });
        let fate = {
            let net = self.network.lock();
            let mut rng = self.rng.lock();
            net.plan(src.node, dst.node, payload.len(), now, &mut *rng)
        };
        match fate {
            Fate::Deliver(times) => {
                if times.len() > 1 {
                    self.metrics.on_duplicate();
                }
                for t in times {
                    self.push_event(
                        t,
                        EvKind::Deliver {
                            msg: Message {
                                src,
                                dst,
                                payload: payload.clone(),
                                sent_at: now,
                                delivered_at: t,
                                span,
                            },
                        },
                    );
                }
            }
            Fate::Dropped => {
                self.metrics.on_drop();
                self.record(TraceEvent::Dropped { src, dst, span });
            }
            Fate::Blackholed => {
                self.metrics.on_blackhole();
                self.record(TraceEvent::Blackholed { src, dst, span });
            }
        }
    }

    fn pop_mailbox(&self, pid: ProcId) -> Option<Message> {
        self.registry
            .lock()
            .procs
            .get_mut(&pid)
            .and_then(|e| e.mailbox.pop_front())
    }

    /// Allocates a pid and binds its primary endpoint (common to both
    /// process kinds).
    fn bind_new_proc(&self, node: NodeId, port: Option<PortId>) -> (ProcId, Endpoint) {
        let mut reg = self.registry.lock();
        let pid = reg.alloc_pid();
        let port = match port {
            Some(p) => {
                assert!(
                    !p.is_ephemeral(),
                    "explicitly bound ports must be below PortId::EPHEMERAL_BASE, got {p}"
                );
                p
            }
            None => reg.alloc_ephemeral_port(node),
        };
        let endpoint = Endpoint::new(node, port);
        assert!(
            !reg.endpoints.contains_key(&endpoint),
            "endpoint {endpoint} already bound"
        );
        reg.endpoints.insert(endpoint, pid);
        (pid, endpoint)
    }

    /// Registers `entry`, records the spawn, samples the process gauges
    /// and schedules the first wake at the current instant.
    fn finish_spawn(&self, pid: ProcId, endpoint: Endpoint, entry: ProcEntry) {
        let proc_name = entry.name.clone();
        self.registry.lock().procs.insert(pid, entry);
        self.note_proc_spawned();
        self.record(TraceEvent::Spawned {
            pid,
            name: proc_name,
            endpoint,
        });
        // Start the process at the current instant.
        let now = self.now();
        self.push_event(now, EvKind::Wake(pid));
    }

    fn note_proc_spawned(&self) {
        let (spawned, peak) = self.metrics.on_proc_spawn();
        if self.obs.timeseries_enabled() {
            let now_ns = self.now().as_nanos();
            self.obs.ts_gauge(now_ns, "processes_spawned", spawned);
            self.obs.ts_gauge(now_ns, "processes_peak", peak);
        }
    }

    fn spawn_proc(
        self: &Arc<Self>,
        name: String,
        node: NodeId,
        port: Option<PortId>,
        body: Box<dyn FnOnce(&mut Ctx) + Send + 'static>,
    ) -> Endpoint {
        let (pid, endpoint) = self.bind_new_proc(node, port);

        let (resume_tx, resume_rx) = bounded::<Resume>(1);
        let (yield_tx, yield_rx) = bounded::<YieldMsg>(1);

        let mut ctx = Ctx {
            pid,
            name: name.clone(),
            endpoint,
            shared: Arc::clone(self),
            resume_rx: Some(resume_rx),
            yield_tx: Some(yield_tx.clone()),
            stopped: false,
            seq_counter: std::cell::Cell::new(0),
            current_span: std::cell::Cell::new(obs::SpanId::NONE),
        };

        let handle = std::thread::Builder::new()
            .name(format!("sim-{name}"))
            .spawn(move || {
                // Wait for the scheduler to start us (or abort pre-start).
                match ctx.resume_rx.as_ref().expect("threaded ctx").recv() {
                    Ok(Resume::Start) => {}
                    _ => {
                        let _ = yield_tx.send(YieldMsg::Finished { panic_msg: None });
                        return;
                    }
                }
                let result = panic::catch_unwind(AssertUnwindSafe(|| body(&mut ctx)));
                let panic_msg = result.err().map(|p| panic_message(p.as_ref()));
                let _ = yield_tx.send(YieldMsg::Finished { panic_msg });
            })
            .expect("failed to spawn simulation process thread");

        let entry = ProcEntry {
            name,
            mailbox: VecDeque::new(),
            state: ProcState::NotStarted,
            gen: 0,
            kind: ProcKind::Thread {
                resume_tx,
                yield_rx,
                handle: Some(handle),
            },
            panic_msg: None,
        };
        self.finish_spawn(pid, endpoint, entry);
        endpoint
    }

    /// Spawns a poll-driven process: no thread, just a state machine in
    /// the process table. See the [`poll`](crate::poll) module.
    fn spawn_polled(
        self: &Arc<Self>,
        name: String,
        node: NodeId,
        port: Option<PortId>,
        process: Box<dyn Process>,
    ) -> Endpoint {
        let (pid, endpoint) = self.bind_new_proc(node, port);

        let ctx = Ctx {
            pid,
            name: name.clone(),
            endpoint,
            shared: Arc::clone(self),
            // No scheduler channels: a poll-driven process parks by
            // returning Pending, never by a thread handoff.
            resume_rx: None,
            yield_tx: None,
            stopped: false,
            seq_counter: std::cell::Cell::new(0),
            current_span: std::cell::Cell::new(obs::SpanId::NONE),
        };

        let entry = ProcEntry {
            name,
            mailbox: VecDeque::new(),
            state: ProcState::NotStarted,
            gen: 0,
            kind: ProcKind::Polled {
                machine: Some(PolledMachine {
                    process,
                    cx: ProcCx::new(ctx),
                }),
            },
            panic_msg: None,
        };
        self.finish_spawn(pid, endpoint, entry);
        endpoint
    }

    /// Schedules a crash of the process owning `target` at the current
    /// instant. Endpoints are unbound immediately so no further traffic
    /// reaches the victim.
    fn request_kill(&self, target: Endpoint) -> bool {
        let mut reg = self.registry.lock();
        let Some(pid) = reg.endpoints.get(&target).copied() else {
            return false;
        };
        let alive = reg
            .procs
            .get(&pid)
            .map(|e| e.state != ProcState::Finished)
            .unwrap_or(false);
        if !alive {
            return false;
        }
        reg.endpoints.retain(|_, p| *p != pid);
        // Drop anything already queued: a crashed process processes
        // nothing more.
        if let Some(entry) = reg.procs.get_mut(&pid) {
            entry.mailbox.clear();
        }
        drop(reg);
        self.record(TraceEvent::Killed { pid });
        self.push_event(self.now(), EvKind::Kill(pid));
        true
    }
}

/// The handle a simulated process uses to interact with the world.
///
/// A `Ctx` is passed by the scheduler to the process body closure. All of
/// its blocking operations return [`Stopped`] once the simulation is
/// shutting down; a well-behaved process returns promptly on `Stopped`.
///
/// Do not hold the guard returned by [`Ctx::net`] across a blocking call.
pub struct Ctx {
    pid: ProcId,
    name: String,
    endpoint: Endpoint,
    shared: Arc<Shared>,
    /// `None` for poll-driven processes, which never block on the
    /// scheduler and so carry no handoff channels at all.
    resume_rx: Option<Receiver<Resume>>,
    yield_tx: Option<Sender<YieldMsg>>,
    stopped: bool,
    seq_counter: std::cell::Cell<u64>,
    current_span: std::cell::Cell<obs::SpanId>,
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("pid", &self.pid)
            .field("name", &self.name)
            .field("endpoint", &self.endpoint)
            .field("stopped", &self.stopped)
            .finish()
    }
}

impl Ctx {
    /// This process's identifier (for diagnostics).
    pub fn pid(&self) -> ProcId {
        self.pid
    }

    /// The name given at spawn time.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node this process runs on.
    pub fn node(&self) -> NodeId {
        self.endpoint.node
    }

    /// This process's primary endpoint (where replies should be sent).
    pub fn endpoint(&self) -> Endpoint {
        self.endpoint
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.shared.now()
    }

    /// Whether the simulation has asked this process to stop.
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    /// Returns the next value of a per-process monotonic counter,
    /// starting at 1. Protocol layers use it to mint identifiers that
    /// are unique *per process endpoint* (e.g. RPC call ids shared by
    /// every client object in the process, so server-side duplicate
    /// suppression is sound).
    pub fn next_seq(&self) -> u64 {
        let v = self.seq_counter.get() + 1;
        self.seq_counter.set(v);
        v
    }

    /// The simulation-wide observability registry: spans, latency
    /// histograms and aggregated protocol counters all land here.
    pub fn obs(&self) -> &obs::MetricsRegistry {
        &self.shared.obs
    }

    /// The span currently active in this process, or [`obs::SpanId::NONE`].
    ///
    /// Protocol layers stamp this onto outgoing packets so that work done
    /// on behalf of an invocation (dispatches, retransmissions, one-way
    /// notifications) stays attributable to it.
    pub fn current_span(&self) -> obs::SpanId {
        self.current_span.get()
    }

    /// Makes `span` the process's active span and returns the previous
    /// one, which the caller must restore when its scope ends.
    pub fn set_current_span(&self, span: obs::SpanId) -> obs::SpanId {
        self.current_span.replace(span)
    }

    /// Sends `payload` to `dst`. Non-blocking; delivery (or loss) is
    /// decided by the network model at this instant. The send is
    /// attributed to the process's current span.
    pub fn send(&self, dst: Endpoint, payload: Bytes) {
        self.shared
            .send(self.endpoint, dst, payload, self.current_span.get());
    }

    /// Sends `payload` to `dst` with an explicit source endpoint, which
    /// must be one of this process's bound endpoints (e.g. an extra port
    /// bound with [`Ctx::bind_port`]).
    pub fn send_from(&self, src: Endpoint, dst: Endpoint, payload: Bytes) {
        debug_assert_eq!(src.node, self.endpoint.node, "send_from across nodes");
        self.shared.send(src, dst, payload, self.current_span.get());
    }

    /// Like [`Ctx::send`], but attributes the send to an explicit span
    /// instead of the process's current one. Protocol layers use this
    /// when the packet belongs to a different causal context than the
    /// code sending it — e.g. a server re-sending a cached reply for a
    /// suppressed duplicate attributes the bytes to the *request's*
    /// span, not to whatever the server is doing now.
    pub fn send_traced(&self, dst: Endpoint, payload: Bytes, span: obs::SpanId) {
        self.shared.send(self.endpoint, dst, payload, span);
    }

    /// [`Ctx::send_from`] with an explicit span, see [`Ctx::send_traced`].
    pub fn send_from_traced(
        &self,
        src: Endpoint,
        dst: Endpoint,
        payload: Bytes,
        span: obs::SpanId,
    ) {
        debug_assert_eq!(src.node, self.endpoint.node, "send_from across nodes");
        self.shared.send(src, dst, payload, span);
    }

    /// Appends a protocol-level event to the simulation timeline (no-op
    /// unless tracing is enabled). Upper layers use this to record the
    /// events the network itself cannot see: retransmission decisions,
    /// server executions, proxy cache hits, forwarding and migration.
    pub fn trace(&self, event: TraceEvent) {
        self.shared.record(event);
    }

    /// Binds an additional well-known port routed to this process's
    /// mailbox. Incoming [`Message::dst`] distinguishes the ports.
    ///
    /// # Panics
    ///
    /// Panics if the port is ephemeral-range or already bound on this node.
    pub fn bind_port(&self, port: PortId) -> Endpoint {
        let ep = Endpoint::new(self.endpoint.node, port);
        let mut reg = self.shared.registry.lock();
        assert!(
            !port.is_ephemeral(),
            "bind_port requires a well-known port, got {port}"
        );
        assert!(
            !reg.endpoints.contains_key(&ep),
            "endpoint {ep} already bound"
        );
        reg.endpoints.insert(ep, self.pid);
        ep
    }

    /// Blocks until a message arrives.
    ///
    /// # Errors
    ///
    /// Returns [`Stopped`] when the simulation is shutting down.
    pub fn recv(&mut self) -> Result<Message, Stopped> {
        match self.recv_inner(None)? {
            Some(m) => Ok(m),
            None => unreachable!("recv without deadline returned empty"),
        }
    }

    /// Blocks until a message arrives or `timeout` elapses; `Ok(None)`
    /// means the timeout fired first.
    ///
    /// # Errors
    ///
    /// Returns [`Stopped`] when the simulation is shutting down.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Message>, Stopped> {
        let deadline = self.now() + timeout;
        self.recv_inner(Some(deadline))
    }

    /// Blocks until a message arrives or the absolute `deadline` passes.
    ///
    /// # Errors
    ///
    /// Returns [`Stopped`] when the simulation is shutting down.
    pub fn recv_deadline(&mut self, deadline: SimTime) -> Result<Option<Message>, Stopped> {
        self.recv_inner(Some(deadline))
    }

    /// Non-blocking receive: returns a message already in the mailbox, or
    /// `None` without advancing virtual time. Messages still in flight
    /// (scheduled for this same instant but not yet dispatched) are not
    /// visible.
    ///
    /// # Errors
    ///
    /// Returns [`Stopped`] when the simulation is shutting down.
    pub fn try_recv(&mut self) -> Result<Option<Message>, Stopped> {
        if self.stopped {
            return Err(Stopped);
        }
        Ok(self.shared.pop_mailbox(self.pid))
    }

    fn recv_inner(&mut self, deadline: Option<SimTime>) -> Result<Option<Message>, Stopped> {
        if self.stopped {
            return Err(Stopped);
        }
        loop {
            if let Some(m) = self.shared.pop_mailbox(self.pid) {
                return Ok(Some(m));
            }
            if let Some(dl) = deadline {
                if dl <= self.now() {
                    return Ok(None);
                }
            }
            match self.block_on(YieldMsg::Recv { deadline }) {
                Resume::Delivered => continue,
                Resume::TimedOut => return Ok(None),
                Resume::Shutdown => {
                    self.stopped = true;
                    return Err(Stopped);
                }
                other => unreachable!("unexpected resume in recv: {other:?}"),
            }
        }
    }

    /// Advances this process's virtual time by `d`.
    ///
    /// # Errors
    ///
    /// Returns [`Stopped`] when the simulation is shutting down.
    pub fn sleep(&mut self, d: Duration) -> Result<(), Stopped> {
        if self.stopped {
            return Err(Stopped);
        }
        if d.is_zero() {
            return Ok(());
        }
        let until = self.now() + d;
        match self.block_on(YieldMsg::Sleep(until)) {
            Resume::Woken => Ok(()),
            Resume::Shutdown => {
                self.stopped = true;
                Err(Stopped)
            }
            other => unreachable!("unexpected resume in sleep: {other:?}"),
        }
    }

    /// Spawns another process on `node` with an ephemeral port, returning
    /// its endpoint. The new process starts at the current instant.
    pub fn spawn<F>(&self, name: impl Into<String>, node: NodeId, body: F) -> Endpoint
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        self.shared
            .spawn_proc(name.into(), node, None, Box::new(body))
    }

    /// Spawns a process listening on a well-known port.
    ///
    /// # Panics
    ///
    /// Panics if the port is already bound on that node.
    pub fn spawn_at<F>(
        &self,
        name: impl Into<String>,
        node: NodeId,
        port: PortId,
        body: F,
    ) -> Endpoint
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        self.shared
            .spawn_proc(name.into(), node, Some(port), Box::new(body))
    }

    /// Spawns a poll-driven process on `node` with an ephemeral port
    /// (see [`Simulation::spawn_poll`]).
    pub fn spawn_poll<P>(&self, name: impl Into<String>, node: NodeId, process: P) -> Endpoint
    where
        P: Process,
    {
        self.shared
            .spawn_polled(name.into(), node, None, Box::new(process))
    }

    /// Spawns a poll-driven process listening on a well-known port.
    ///
    /// # Panics
    ///
    /// Panics if the port is already bound on that node or is in the
    /// ephemeral range.
    pub fn spawn_poll_at<P>(
        &self,
        name: impl Into<String>,
        node: NodeId,
        port: PortId,
        process: P,
    ) -> Endpoint
    where
        P: Process,
    {
        self.shared
            .spawn_polled(name.into(), node, Some(port), Box::new(process))
    }

    /// Exclusive access to the network model for runtime fault injection
    /// (partitions, loss, link latency). Do not hold across blocking calls.
    pub fn net(&self) -> MutexGuard<'_, Network> {
        self.shared.network.lock()
    }

    /// Crashes the process owning `target`: it is torn down at the
    /// current instant (its blocking call returns [`Stopped`]; a
    /// well-behaved process then exits) and all of its endpoints are
    /// unbound, so in-flight and future messages to it blackhole.
    /// Returns false if no live process owns the endpoint.
    ///
    /// Killing your own endpooint is allowed but pointless — prefer
    /// returning from the process body.
    pub fn kill(&self, target: Endpoint) -> bool {
        self.shared.request_kill(target)
    }

    /// Runs `f` with the simulation's deterministic RNG.
    pub fn with_rng<T>(&self, f: impl FnOnce(&mut StdRng) -> T) -> T {
        f(&mut self.shared.rng.lock())
    }

    /// Draws a uniformly random `u64` from the simulation RNG.
    pub fn rand_u64(&self) -> u64 {
        self.with_rng(|r| r.gen())
    }

    /// Whether this context belongs to a poll-driven process. Blocking
    /// operations are unavailable there; protocol layers can branch on
    /// this to pick a non-blocking strategy.
    pub fn is_poll_driven(&self) -> bool {
        self.yield_tx.is_none()
    }

    fn block_on(&mut self, y: YieldMsg) -> Resume {
        let (Some(tx), Some(rx)) = (&self.yield_tx, &self.resume_rx) else {
            panic!(
                "blocking Ctx operation ({y:?}) in poll-driven process '{}': \
                 a state machine parks by returning Poll::Pending (arm a timer \
                 with ProcCx::wake_at / wake_after instead of sleeping, and use \
                 try_recv instead of recv)",
                self.name
            );
        };
        tx.send(y).expect("scheduler disappeared");
        rx.recv().expect("scheduler disappeared")
    }
}

/// Summary of a completed (or paused) run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Virtual time when the run stopped.
    pub end_time: SimTime,
    /// Network/scheduler counters at the end of the run.
    pub metrics: MetricsSnapshot,
    /// Processes that ran to completion.
    pub finished: usize,
    /// Processes still alive (blocked or sleeping) when the run stopped.
    pub alive: usize,
    /// Trace records evicted from the bounded trace ring so far (0 when
    /// tracing is disabled). Nonzero means [`Simulation::take_trace`]
    /// will return an incomplete timeline.
    pub trace_evicted: u64,
}

/// A deterministic discrete-event simulation.
///
/// # Examples
///
/// Ping-pong between two nodes:
///
/// ```
/// use simnet::{Simulation, NetworkConfig, NodeId, PortId};
/// use bytes::Bytes;
///
/// let mut sim = Simulation::new(NetworkConfig::lan(), 1);
/// let server = sim.spawn_at("server", NodeId(0), PortId(10), |ctx| {
///     while let Ok(msg) = ctx.recv() {
///         ctx.send(msg.src, msg.payload); // echo
///     }
/// });
/// sim.spawn("client", NodeId(1), move |ctx| {
///     ctx.send(server, Bytes::from_static(b"ping"));
///     let reply = ctx.recv().expect("reply");
///     assert_eq!(&reply.payload[..], b"ping");
/// });
/// let report = sim.run();
/// assert_eq!(report.metrics.msgs_delivered, 2);
/// ```
pub struct Simulation {
    shared: Arc<Shared>,
    limit_reached: bool,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.shared.now())
            .finish_non_exhaustive()
    }
}

impl Simulation {
    /// Creates a simulation with the given network model and RNG seed.
    pub fn new(config: NetworkConfig, seed: u64) -> Simulation {
        Simulation {
            shared: Arc::new(Shared {
                sched: Mutex::new(SchedState {
                    now: SimTime::ZERO,
                    events: BinaryHeap::new(),
                    seq: 0,
                }),
                registry: Mutex::new(Registry {
                    procs: HashMap::new(),
                    endpoints: HashMap::new(),
                    next_proc: 0,
                    next_ephemeral: HashMap::new(),
                }),
                network: Mutex::new(Network::new(config)),
                metrics: Arc::new(Metrics::new()),
                obs: Arc::new(obs::MetricsRegistry::new()),
                rng: Mutex::new(StdRng::seed_from_u64(seed)),
                trace: Mutex::new(None),
                seed,
            }),
            limit_reached: false,
        }
    }

    /// Replaces the observability registry with one using an explicit
    /// shard layout (see [`obs::MetricsRegistry::with_layout`]). The
    /// layout affects lock contention only — for a fixed seed the
    /// resulting [`obs::RunReport`] is byte-identical for any layout,
    /// which the merge-determinism tests pin down.
    ///
    /// # Panics
    ///
    /// Panics if called after a process has been spawned (the registry
    /// is already shared at that point).
    #[must_use]
    pub fn with_obs_layout(mut self, span_shards: usize, stat_stripes: usize) -> Simulation {
        let shared =
            Arc::get_mut(&mut self.shared).expect("set the obs layout before spawning any process");
        shared.obs = Arc::new(obs::MetricsRegistry::with_layout(span_shards, stat_stripes));
        self
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.shared.now()
    }

    /// Current network/scheduler counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// The simulation-wide observability registry (same instance every
    /// process sees through [`Ctx::obs`]).
    pub fn obs(&self) -> &obs::MetricsRegistry {
        &self.shared.obs
    }

    /// Builds the unified observability report: network counters, RPC
    /// counters, per-proxy/per-server stats, per-op latency percentiles
    /// and the span summary, as of the current simulated time.
    pub fn obs_report(&self) -> obs::RunReport {
        let mut report = self
            .shared
            .obs
            .report(self.shared.metrics.snapshot(), self.shared.now().as_nanos());
        report.trace_evicted = self.trace_evicted();
        // The simulator always knows its seed; the harness can overwrite
        // the rest of the provenance via obs().set_run_meta.
        if report.meta.seed.is_none() {
            report.meta.seed = Some(self.shared.seed);
        }
        report
    }

    /// Starts recording a timeline of up to `capacity` events (older
    /// entries fall off). Call before spawning to capture everything.
    pub fn enable_trace(&self, capacity: usize) {
        *self.shared.trace.lock() = Some(Trace::new(capacity));
    }

    /// Drains and returns the recorded timeline (empty if tracing was
    /// never enabled). Recording continues afterwards. The returned
    /// [`TraceDump`] carries the count of records the bounded ring
    /// evicted, so a truncated timeline is never mistaken for a
    /// complete one; draining resets the counter.
    pub fn take_trace(&self) -> TraceDump {
        self.shared
            .trace
            .lock()
            .as_mut()
            .map(|t| t.drain())
            .unwrap_or_default()
    }

    /// Records evicted from the trace ring since tracing was enabled
    /// (without draining). Also surfaced by [`RunReport::trace_evicted`]
    /// and reset by [`Simulation::take_trace`].
    pub fn trace_evicted(&self) -> u64 {
        self.shared
            .trace
            .lock()
            .as_ref()
            .map(|t| t.truncated)
            .unwrap_or(0)
    }

    /// Drains the trace ring and merges it with the span records in the
    /// observability registry into one time-ordered causal trace
    /// (see [`obs::TraceSink`]). Equivalent to
    /// `causal_trace_with(obs::TraceSink::new())`.
    pub fn causal_trace(&self) -> obs::CausalTrace {
        self.causal_trace_with(obs::TraceSink::new())
    }

    /// Like [`Simulation::causal_trace`], but with a caller-configured
    /// sink (capacity, every-Nth-span sampling). Ring evictions that
    /// happened before the drain are carried into the sink's counter.
    pub fn causal_trace_with(&self, mut sink: obs::TraceSink) -> obs::CausalTrace {
        let dump = self.take_trace();
        sink.note_upstream_evicted(dump.evicted);
        for record in &dump {
            if let Some(e) = record.to_net_event() {
                sink.push_net(e);
            }
        }
        self.shared
            .obs
            .for_each_span(|span| sink.push_span(span.clone()));
        sink.build()
    }

    /// Exclusive access to the network model (between runs or before one).
    pub fn net(&self) -> MutexGuard<'_, Network> {
        self.shared.network.lock()
    }

    /// Spawns a process on `node` with an ephemeral port.
    pub fn spawn<F>(&self, name: impl Into<String>, node: NodeId, body: F) -> Endpoint
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        self.shared
            .spawn_proc(name.into(), node, None, Box::new(body))
    }

    /// Spawns a process listening on a well-known port.
    ///
    /// # Panics
    ///
    /// Panics if the port is already bound on that node or is in the
    /// ephemeral range.
    pub fn spawn_at<F>(
        &self,
        name: impl Into<String>,
        node: NodeId,
        port: PortId,
        body: F,
    ) -> Endpoint
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        self.shared
            .spawn_proc(name.into(), node, Some(port), Box::new(body))
    }

    /// Spawns a poll-driven process on `node` with an ephemeral port.
    /// The scheduler polls it whenever a message is delivered to it or a
    /// timer it armed with [`ProcCx::wake_at`] fires; it parks by
    /// returning [`Poll::Pending`] and costs no thread while parked.
    /// See the [`poll`](crate::poll) module for the full model.
    pub fn spawn_poll<P>(&self, name: impl Into<String>, node: NodeId, process: P) -> Endpoint
    where
        P: Process,
    {
        self.shared
            .spawn_polled(name.into(), node, None, Box::new(process))
    }

    /// Spawns a poll-driven process listening on a well-known port.
    ///
    /// # Panics
    ///
    /// Panics if the port is already bound on that node or is in the
    /// ephemeral range.
    pub fn spawn_poll_at<P>(
        &self,
        name: impl Into<String>,
        node: NodeId,
        port: PortId,
        process: P,
    ) -> Endpoint
    where
        P: Process,
    {
        self.shared
            .spawn_polled(name.into(), node, Some(port), Box::new(process))
    }

    /// Runs the simulation until no events remain, then shuts all
    /// processes down and joins their threads.
    ///
    /// # Panics
    ///
    /// Panics if any simulated process panicked, propagating its message.
    pub fn run(&mut self) -> RunReport {
        let report = self.run_until(SimTime::MAX);
        self.shutdown();
        self.check_panics();
        report
    }

    /// Runs until the event queue is empty or virtual time would exceed
    /// `limit`. Processes stay alive; call again to continue, or call
    /// [`Simulation::run`] to finish.
    ///
    /// # Panics
    ///
    /// Panics if any simulated process panicked.
    pub fn run_until(&mut self, limit: SimTime) -> RunReport {
        loop {
            // One lock acquisition pops the next runnable event AND
            // advances the clock to it, so no observer can see the old
            // time paired with the drained heap (or vice versa).
            let ev = {
                let mut sched = self.shared.sched.lock();
                match sched.events.peek() {
                    Some(ev) if ev.key.time <= limit => {
                        let ev = sched.events.pop().expect("peeked event vanished");
                        sched.now = ev.key.time;
                        // Clock and heap depth captured under the same
                        // lock as the pop, so the flight-recorder sample
                        // below describes exactly this dispatch.
                        Some((ev, sched.now, sched.events.len() as u64))
                    }
                    Some(_) => {
                        self.limit_reached = true;
                        None
                    }
                    None => None,
                }
            };
            let Some((ev, dispatched_at, depth)) = ev else {
                break;
            };
            self.shared.metrics.on_event();
            if self.shared.obs.timeseries_enabled() {
                let now_ns = dispatched_at.as_nanos();
                // Scheduler lag: dispatch time minus the event's
                // scheduled time. The single-lock pop advances the clock
                // to the event it pops, so this is structurally zero —
                // recorded anyway as an invariant monitor (a nonzero
                // window means the scheduler contract broke) and as the
                // anchor the genuinely varying heap-depth gauge hangs on.
                self.shared.obs.ts_observe(
                    now_ns,
                    "sched_lag",
                    now_ns.saturating_sub(ev.key.time.as_nanos()),
                );
                self.shared.obs.ts_gauge(now_ns, "sched_depth", depth);
            }
            self.dispatch(ev.kind);
        }
        if self.limit_reached {
            self.shared.sched.lock().now = limit;
            self.limit_reached = false;
        }
        self.check_panics();
        let (finished, alive) = {
            let reg = self.shared.registry.lock();
            let finished = reg
                .procs
                .values()
                .filter(|p| p.state == ProcState::Finished)
                .count();
            (finished, reg.procs.len() - finished)
        };
        RunReport {
            end_time: self.shared.now(),
            metrics: self.shared.metrics.snapshot(),
            finished,
            alive,
            trace_evicted: self.trace_evicted(),
        }
    }

    fn dispatch(&mut self, kind: EvKind) {
        match kind {
            EvKind::Wake(pid) => match self.proc_status(pid) {
                Some((ProcState::NotStarted, false)) => self.resume_and_wait(pid, Resume::Start),
                Some((ProcState::Sleeping, false)) => self.resume_and_wait(pid, Resume::Woken),
                Some((ProcState::NotStarted | ProcState::Parked, true)) => self.poll_process(pid),
                _ => {} // finished or stale
            },
            EvKind::Timeout { pid, gen } => {
                // A timer is live only if the process still blocks on the
                // park that armed it: the generation bumps on every park.
                let polled = {
                    let reg = self.shared.registry.lock();
                    reg.procs.get(&pid).and_then(|e| {
                        if e.gen != gen {
                            return None;
                        }
                        match (&e.kind, e.state) {
                            (ProcKind::Thread { .. }, ProcState::BlockedRecv) => Some(false),
                            (ProcKind::Polled { .. }, ProcState::Parked) => Some(true),
                            _ => None,
                        }
                    })
                };
                match polled {
                    Some(false) => self.resume_and_wait(pid, Resume::TimedOut),
                    Some(true) => self.poll_process(pid),
                    None => {}
                }
            }
            EvKind::Kill(pid) => match self.proc_status(pid) {
                Some((ProcState::Finished, _)) | None => {}
                Some((_, true)) => {
                    // A killed state machine just drops: a crash runs no
                    // farewell code (destructors still run, as they would
                    // for a thread unwinding out of Stopped).
                    self.finish_polled(pid, None);
                }
                Some((_, false)) => {
                    // Tear the victim down now: keep resuming it with
                    // Shutdown until its body returns.
                    loop {
                        match self.proc_status(pid) {
                            Some((ProcState::Finished, _)) | None => break,
                            _ => self.resume_and_wait(pid, Resume::Shutdown),
                        }
                    }
                }
            },
            EvKind::Deliver { msg } => {
                let (delivered_src, delivered_dst, delivered_bytes, delivered_span) =
                    (msg.src, msg.dst, msg.payload.len(), msg.span);
                // What the delivery should do to the receiving process:
                // resume a thread blocked in recv, poll a parked machine,
                // or nothing (it will find the message when it next runs).
                #[derive(PartialEq)]
                enum After {
                    Nothing,
                    ResumeThread,
                    PollMachine,
                }
                let target = {
                    let mut reg = self.shared.registry.lock();
                    let pid = reg.endpoints.get(&msg.dst).copied();
                    match pid {
                        Some(pid) => {
                            let entry = reg.procs.get_mut(&pid).expect("endpoint maps to proc");
                            if entry.state == ProcState::Finished {
                                None
                            } else {
                                entry.mailbox.push_back(msg);
                                let after = match (&entry.kind, entry.state) {
                                    (ProcKind::Thread { .. }, ProcState::BlockedRecv) => {
                                        After::ResumeThread
                                    }
                                    // Every delivery wakes a parked machine:
                                    // it parked after seeing an empty
                                    // mailbox, so this message is news. No
                                    // wakeup can be lost — racing
                                    // completions each schedule a poll.
                                    (ProcKind::Polled { .. }, ProcState::Parked) => {
                                        After::PollMachine
                                    }
                                    _ => After::Nothing,
                                };
                                Some((pid, after))
                            }
                        }
                        None => None,
                    }
                };
                match target {
                    Some((pid, after)) => {
                        self.shared.metrics.on_deliver();
                        self.shared.record(TraceEvent::Delivered {
                            src: delivered_src,
                            dst: delivered_dst,
                            bytes: delivered_bytes,
                            span: delivered_span,
                        });
                        match after {
                            After::ResumeThread => self.resume_and_wait(pid, Resume::Delivered),
                            After::PollMachine => self.poll_process(pid),
                            After::Nothing => {}
                        }
                    }
                    None => {
                        self.shared.metrics.on_blackhole();
                        self.shared.record(TraceEvent::Blackholed {
                            src: delivered_src,
                            dst: delivered_dst,
                            span: delivered_span,
                        });
                    }
                }
            }
        }
    }

    /// The process's state plus whether it is poll-driven.
    fn proc_status(&self, pid: ProcId) -> Option<(ProcState, bool)> {
        self.shared
            .registry
            .lock()
            .procs
            .get(&pid)
            .map(|e| (e.state, matches!(e.kind, ProcKind::Polled { .. })))
    }

    /// Polls a poll-driven process once. The machine is taken out of the
    /// registry for the duration, so no lock is held while user code
    /// runs (and the machine may freely spawn or kill other processes).
    fn poll_process(&mut self, pid: ProcId) {
        let machine = {
            let mut reg = self.shared.registry.lock();
            let Some(entry) = reg.procs.get_mut(&pid) else {
                return;
            };
            if entry.state == ProcState::Finished {
                return;
            }
            match &mut entry.kind {
                ProcKind::Polled { machine } => machine.take(),
                ProcKind::Thread { .. } => unreachable!("poll of thread-backed process"),
            }
        };
        let Some(mut m) = machine else {
            return;
        };
        let result = panic::catch_unwind(AssertUnwindSafe(|| m.process.poll(&mut m.cx)));
        let wake = m.cx.take_wake();
        match result {
            Ok(Poll::Pending) => {
                let gen = {
                    let mut reg = self.shared.registry.lock();
                    let entry = reg.procs.get_mut(&pid).expect("proc vanished");
                    entry.gen += 1;
                    entry.state = ProcState::Parked;
                    match &mut entry.kind {
                        ProcKind::Polled { machine } => *machine = Some(m),
                        ProcKind::Thread { .. } => unreachable!(),
                    }
                    entry.gen
                };
                if let Some(at) = wake {
                    let at = at.max(self.shared.now());
                    self.shared.push_event(at, EvKind::Timeout { pid, gen });
                }
            }
            Ok(Poll::Ready(())) => {
                drop(m);
                self.finish_polled(pid, None);
            }
            Err(p) => {
                drop(m);
                self.finish_polled(pid, Some(panic_message(p.as_ref())));
            }
        }
    }

    /// Marks a poll-driven process finished, dropping its machine (and
    /// with it the process's share of the table memory).
    fn finish_polled(&mut self, pid: ProcId, panic_msg: Option<String>) {
        let newly_finished = {
            let mut reg = self.shared.registry.lock();
            let Some(entry) = reg.procs.get_mut(&pid) else {
                return;
            };
            let newly = entry.state != ProcState::Finished;
            entry.state = ProcState::Finished;
            if panic_msg.is_some() {
                entry.panic_msg = panic_msg;
            }
            if let ProcKind::Polled { machine } = &mut entry.kind {
                *machine = None;
            }
            newly
        };
        if newly_finished {
            self.shared.metrics.on_proc_finish();
            self.shared.record(TraceEvent::Finished { pid });
        }
    }

    /// Resumes `pid` and blocks until it yields again, then records the
    /// yield. The registry lock is **not** held while the process runs.
    fn resume_and_wait(&mut self, pid: ProcId, resume: Resume) {
        let (tx, rx) = {
            let reg = self.shared.registry.lock();
            let entry = reg.procs.get(&pid).expect("resume of unknown proc");
            match &entry.kind {
                ProcKind::Thread {
                    resume_tx,
                    yield_rx,
                    ..
                } => (resume_tx.clone(), yield_rx.clone()),
                ProcKind::Polled { .. } => unreachable!("resume of poll-driven process"),
            }
        };
        tx.send(resume).expect("process thread gone before resume");
        let y = rx.recv().expect("process thread gone before yield");
        let mut reg = self.shared.registry.lock();
        let entry = reg.procs.get_mut(&pid).expect("proc vanished");
        match y {
            YieldMsg::Sleep(until) => {
                entry.state = ProcState::Sleeping;
                drop(reg);
                self.shared.push_event(until, EvKind::Wake(pid));
            }
            YieldMsg::Recv { deadline } => {
                entry.gen += 1;
                entry.state = ProcState::BlockedRecv;
                let gen = entry.gen;
                drop(reg);
                if let Some(dl) = deadline {
                    self.shared.push_event(dl, EvKind::Timeout { pid, gen });
                }
            }
            YieldMsg::Finished { panic_msg } => {
                entry.state = ProcState::Finished;
                entry.panic_msg = panic_msg;
                drop(reg);
                self.shared.metrics.on_proc_finish();
                self.shared.record(TraceEvent::Finished { pid });
            }
        }
    }

    /// Tells every live process to stop: threads are resumed with
    /// `Shutdown` until they return (then joined); poll-driven machines
    /// get one final poll with the stop flag set — the mirror of a
    /// thread seeing [`Stopped`] — and are then dropped regardless.
    fn shutdown(&mut self) {
        let pids: Vec<(ProcId, bool)> = {
            let reg = self.shared.registry.lock();
            reg.procs
                .iter()
                .filter(|(_, e)| e.state != ProcState::Finished)
                .map(|(pid, e)| (*pid, matches!(e.kind, ProcKind::Polled { .. })))
                .collect()
        };
        for (pid, polled) in pids {
            if polled {
                self.shutdown_polled(pid);
            } else {
                // A stopping process may legally block a few more times
                // before noticing; keep resuming it with Shutdown until
                // it finishes.
                loop {
                    match self.proc_status(pid) {
                        Some((ProcState::Finished, _)) | None => break,
                        _ => self.resume_and_wait(pid, Resume::Shutdown),
                    }
                }
            }
        }
        let handles: Vec<(String, JoinHandle<()>)> = {
            let mut reg = self.shared.registry.lock();
            reg.procs
                .values_mut()
                .filter_map(|e| match &mut e.kind {
                    ProcKind::Thread { handle, .. } => handle.take().map(|h| (e.name.clone(), h)),
                    ProcKind::Polled { .. } => None,
                })
                .collect()
        };
        for (name, h) in handles {
            if h.join().is_err() {
                // Panic message already captured via YieldMsg::Finished.
                eprintln!("simnet: process thread '{name}' terminated abnormally");
            }
        }
    }

    /// One final poll with the stop flag raised, then finish. Dropping
    /// the machine here also breaks the `Shared → registry → ProcCx →
    /// Shared` reference cycle a parked machine's context holds.
    fn shutdown_polled(&mut self, pid: ProcId) {
        let machine = {
            let mut reg = self.shared.registry.lock();
            let Some(entry) = reg.procs.get_mut(&pid) else {
                return;
            };
            if entry.state == ProcState::Finished {
                return;
            }
            match &mut entry.kind {
                ProcKind::Polled { machine } => machine.take(),
                ProcKind::Thread { .. } => unreachable!(),
            }
        };
        let panic_msg = machine.and_then(|mut m| {
            m.cx.ctx.stopped = true;
            panic::catch_unwind(AssertUnwindSafe(|| m.process.poll(&mut m.cx)))
                .err()
                .map(|p| panic_message(p.as_ref()))
        });
        self.finish_polled(pid, panic_msg);
    }

    fn check_panics(&self) {
        let panics: Vec<(String, String)> = {
            let reg = self.shared.registry.lock();
            reg.procs
                .values()
                .filter_map(|e| e.panic_msg.as_ref().map(|m| (e.name.clone(), m.clone())))
                .collect()
        };
        if !panics.is_empty() {
            let mut s = String::from("simulated process(es) panicked:");
            for (name, msg) in panics {
                s.push_str(&format!("\n  - {name}: {msg}"));
            }
            panic!("{s}");
        }
    }
}

impl Drop for Simulation {
    fn drop(&mut self) {
        // Don't leave process threads parked forever; ignore errors since
        // we may be unwinding already.
        if !std::thread::panicking() {
            self.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn single_process_runs_to_completion() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        let done = Arc::new(AtomicU64::new(0));
        let d2 = Arc::clone(&done);
        sim.spawn("worker", NodeId(0), move |ctx| {
            ctx.sleep(Duration::from_millis(5)).unwrap();
            d2.store(ctx.now().as_millis(), Ordering::SeqCst);
        });
        let report = sim.run();
        assert_eq!(done.load(Ordering::SeqCst), 5);
        assert_eq!(report.finished, 1);
        assert_eq!(report.end_time, SimTime::from_millis(5));
    }

    #[test]
    fn message_latency_matches_network_model() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        let lat = Arc::new(AtomicU64::new(0));
        let l2 = Arc::clone(&lat);
        let server = sim.spawn("server", NodeId(0), move |ctx| {
            let m = ctx.recv().unwrap();
            l2.store(m.latency().as_nanos() as u64, Ordering::SeqCst);
        });
        sim.spawn("client", NodeId(1), move |ctx| {
            ctx.send(server, Bytes::from_static(b"x"));
        });
        sim.run();
        // 500us remote + 1ns/byte * 1 byte
        assert_eq!(lat.load(Ordering::SeqCst), 500_001);
    }

    #[test]
    fn recv_timeout_fires_without_message() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        let got = Arc::new(AtomicU64::new(99));
        let g = Arc::clone(&got);
        sim.spawn("waiter", NodeId(0), move |ctx| {
            let r = ctx.recv_timeout(Duration::from_millis(3)).unwrap();
            assert!(r.is_none());
            g.store(ctx.now().as_millis(), Ordering::SeqCst);
        });
        sim.run();
        assert_eq!(got.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn recv_timeout_cancelled_by_delivery() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        let got = Arc::new(AtomicU64::new(0));
        let g = Arc::clone(&got);
        let waiter = sim.spawn("waiter", NodeId(0), move |ctx| {
            let r = ctx.recv_timeout(Duration::from_millis(100)).unwrap();
            assert!(r.is_some());
            g.store(1, Ordering::SeqCst);
            // The stale timeout event must not corrupt a later recv.
            let r2 = ctx.recv_timeout(Duration::from_millis(500)).unwrap();
            assert!(r2.is_none());
            g.store(2, Ordering::SeqCst);
        });
        sim.spawn("sender", NodeId(1), move |ctx| {
            ctx.send(waiter, Bytes::from_static(b"hi"));
        });
        sim.run();
        assert_eq!(got.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run_once(seed: u64) -> (u64, u64) {
            let mut sim =
                Simulation::new(NetworkConfig::lan().with_jitter(0.3).with_loss(0.1), seed);
            let server = sim.spawn_at("server", NodeId(0), PortId(1), |ctx| {
                while let Ok(m) = ctx.recv() {
                    ctx.send(m.src, m.payload);
                }
            });
            for i in 0..5u32 {
                sim.spawn(format!("client{i}"), NodeId(1 + i), move |ctx| {
                    for _ in 0..20 {
                        ctx.send(server, Bytes::from_static(b"req"));
                        if ctx.recv_timeout(Duration::from_millis(5)).is_err() {
                            return;
                        }
                    }
                });
            }
            let r = sim.run();
            (r.end_time.as_nanos(), r.metrics.msgs_delivered)
        }
        let a = run_once(7);
        let b = run_once(7);
        let c = run_once(8);
        assert_eq!(a, b, "same seed must reproduce exactly");
        // Different seed almost surely differs under 10% loss + jitter.
        assert_ne!(a, c, "different seed should perturb the run");
    }

    #[test]
    fn spawn_from_within_process() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        sim.spawn("parent", NodeId(0), move |ctx| {
            let c2 = Arc::clone(&c);
            let child = ctx.spawn("child", NodeId(1), move |cctx| {
                let m = cctx.recv().unwrap();
                assert_eq!(&m.payload[..], b"work");
                c2.fetch_add(1, Ordering::SeqCst);
            });
            ctx.send(child, Bytes::from_static(b"work"));
        });
        sim.run();
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn extra_port_demultiplexes_by_dst() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        let hits = Arc::new(Mutex::new(Vec::new()));
        let h = Arc::clone(&hits);
        let main = sim.spawn_at("multi", NodeId(0), PortId(5), move |ctx| {
            let cb = ctx.bind_port(PortId(6));
            for _ in 0..2 {
                let m = ctx.recv().unwrap();
                h.lock().push(m.dst == cb);
            }
        });
        sim.spawn("sender", NodeId(1), move |ctx| {
            ctx.send(main, Bytes::from_static(b"a"));
            ctx.send(
                Endpoint::new(NodeId(0), PortId(6)),
                Bytes::from_static(b"b"),
            );
        });
        sim.run();
        let v = hits.lock().clone();
        assert_eq!(v, vec![false, true]);
    }

    #[test]
    fn unbound_endpoint_blackholes() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        sim.spawn("sender", NodeId(0), |ctx| {
            ctx.send(
                Endpoint::new(NodeId(5), PortId(99)),
                Bytes::from_static(b"void"),
            );
        });
        let r = sim.run();
        assert_eq!(r.metrics.msgs_blackholed, 1);
        assert_eq!(r.metrics.msgs_delivered, 0);
    }

    #[test]
    fn run_until_pauses_and_resumes() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        let stage = Arc::new(AtomicU64::new(0));
        let s = Arc::clone(&stage);
        sim.spawn("slow", NodeId(0), move |ctx| {
            ctx.sleep(Duration::from_millis(10)).unwrap();
            s.store(1, Ordering::SeqCst);
            ctx.sleep(Duration::from_millis(10)).unwrap();
            s.store(2, Ordering::SeqCst);
        });
        sim.run_until(SimTime::from_millis(15));
        assert_eq!(stage.load(Ordering::SeqCst), 1);
        assert_eq!(sim.now(), SimTime::from_millis(15));
        sim.run();
        assert_eq!(stage.load(Ordering::SeqCst), 2);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn process_panic_propagates() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        sim.spawn("bad", NodeId(0), |_ctx| panic!("boom"));
        sim.run();
    }

    #[test]
    fn shutdown_unblocks_servers() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        // A server that would otherwise block forever.
        sim.spawn("server", NodeId(0), |ctx| while ctx.recv().is_ok() {});
        let report = sim.run();
        assert_eq!(report.end_time, SimTime::ZERO);
        // run() returned: the blocked server was shut down cleanly.
    }

    #[test]
    fn partition_then_heal_mid_run() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        let delivered = Arc::new(AtomicU64::new(0));
        let d = Arc::clone(&delivered);
        let server = sim.spawn_at("server", NodeId(0), PortId(1), move |ctx| {
            while ctx.recv().is_ok() {
                d.fetch_add(1, Ordering::SeqCst);
            }
        });
        sim.spawn("client", NodeId(1), move |ctx| {
            ctx.net().partition(NodeId(0), NodeId(1));
            ctx.send(server, Bytes::from_static(b"lost"));
            ctx.sleep(Duration::from_millis(1)).unwrap();
            ctx.net().heal(NodeId(0), NodeId(1));
            ctx.send(server, Bytes::from_static(b"ok"));
        });
        let r = sim.run();
        assert_eq!(delivered.load(Ordering::SeqCst), 1);
        assert_eq!(r.metrics.msgs_blackholed, 1);
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        let seen = Arc::new(AtomicU64::new(0));
        let s = Arc::clone(&seen);
        let rx = sim.spawn("rx", NodeId(0), move |ctx| {
            // Nothing queued yet: must return None at time zero.
            assert!(ctx.try_recv().unwrap().is_none());
            ctx.sleep(Duration::from_millis(5)).unwrap();
            // Message delivered during the sleep is now in the mailbox.
            let m = ctx.try_recv().unwrap().expect("queued message");
            assert_eq!(&m.payload[..], b"queued");
            assert!(ctx.try_recv().unwrap().is_none());
            s.store(ctx.now().as_millis(), Ordering::SeqCst);
        });
        sim.spawn("tx", NodeId(1), move |ctx| {
            ctx.send(rx, Bytes::from_static(b"queued"));
        });
        sim.run();
        // try_recv never advanced time: process finished at its sleep end.
        assert_eq!(seen.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn kill_tears_down_and_unbinds() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        let served = Arc::new(AtomicU64::new(0));
        let s2 = Arc::clone(&served);
        let victim = sim.spawn_at("victim", NodeId(0), PortId(9), move |ctx| {
            while ctx.recv().is_ok() {
                s2.fetch_add(1, Ordering::SeqCst);
            }
        });
        sim.spawn("assassin", NodeId(1), move |ctx| {
            ctx.send(victim, Bytes::from_static(b"one"));
            ctx.sleep(Duration::from_millis(2)).unwrap();
            assert!(ctx.kill(victim), "victim should be alive");
            assert!(!ctx.kill(victim), "second kill is a no-op");
            // Messages after the kill blackhole instead of delivering.
            ctx.send(victim, Bytes::from_static(b"two"));
        });
        let report = sim.run();
        assert_eq!(served.load(Ordering::SeqCst), 1);
        assert_eq!(report.metrics.msgs_blackholed, 1);
    }

    #[test]
    fn killed_endpoint_can_be_rebound() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        let got = Arc::new(AtomicU64::new(0));
        let g2 = Arc::clone(&got);
        let victim = sim.spawn_at(
            "old",
            NodeId(0),
            PortId(9),
            |ctx| {
                while ctx.recv().is_ok() {}
            },
        );
        sim.spawn("driver", NodeId(1), move |ctx| {
            ctx.kill(victim);
            // The well-known port is free again: a replacement can bind it.
            let replacement = ctx.spawn_at("new", NodeId(0), PortId(9), move |rctx| {
                if rctx.recv().is_ok() {
                    g2.fetch_add(1, Ordering::SeqCst);
                }
            });
            ctx.send(replacement, Bytes::from_static(b"hello"));
        });
        sim.run();
        assert_eq!(got.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn messages_at_same_instant_keep_send_order() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        let order = Arc::new(Mutex::new(Vec::new()));
        let o = Arc::clone(&order);
        let server = sim.spawn("server", NodeId(0), move |ctx| {
            for _ in 0..3 {
                let m = ctx.recv().unwrap();
                o.lock().push(m.payload[0]);
            }
        });
        sim.spawn("client", NodeId(1), move |ctx| {
            for b in [1u8, 2, 3] {
                ctx.send(server, Bytes::copy_from_slice(&[b]));
            }
        });
        sim.run();
        // Identical payload sizes & no jitter: all arrive at the same
        // instant; FIFO tie-break must preserve send order.
        assert_eq!(*order.lock(), vec![1, 2, 3]);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::trace::TraceEvent;

    #[test]
    fn trace_captures_ordered_timeline() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        sim.enable_trace(1024);
        let echo = sim.spawn_at("echo", NodeId(0), PortId(7), |ctx| {
            if let Ok(m) = ctx.recv() {
                ctx.send(m.src, m.payload);
            }
        });
        sim.spawn("client", NodeId(1), move |ctx| {
            ctx.send(echo, Bytes::from_static(b"ping"));
            let _ = ctx.recv();
        });
        sim.run();
        let trace = sim.take_trace();
        let kinds: Vec<&'static str> = trace
            .iter()
            .map(|r| match r.event {
                TraceEvent::Spawned { .. } => "spawn",
                TraceEvent::Sent { .. } => "send",
                TraceEvent::Delivered { .. } => "deliver",
                TraceEvent::Finished { .. } => "finish",
                TraceEvent::Dropped { .. } => "drop",
                TraceEvent::Blackholed { .. } => "blackhole",
                TraceEvent::Killed { .. } => "kill",
                _ => "protocol",
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                "spawn", "spawn", // echo + client
                "send", "deliver", // ping
                "send", "finish", // echo replies then finishes
                "deliver", "finish", // client gets pong, finishes
            ],
            "unexpected timeline: {:#?}",
            trace.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
        // Timestamps are non-decreasing.
        assert!(trace.windows(2).all(|w| w[0].at <= w[1].at));
        // Draining leaves the buffer empty but tracing still on.
        assert!(sim.take_trace().is_empty());
    }

    #[test]
    fn trace_records_drops_and_kills() {
        let mut sim = Simulation::new(NetworkConfig::lan().with_loss(1.0), 0);
        sim.enable_trace(64);
        let sink = sim.spawn_at(
            "sink",
            NodeId(0),
            PortId(3),
            |ctx| {
                while ctx.recv().is_ok() {}
            },
        );
        sim.spawn("driver", NodeId(1), move |ctx| {
            ctx.send(sink, Bytes::from_static(b"doomed"));
            ctx.kill(sink);
        });
        sim.run();
        let trace = sim.take_trace();
        assert!(trace
            .iter()
            .any(|r| matches!(r.event, TraceEvent::Dropped { .. })));
        assert!(trace
            .iter()
            .any(|r| matches!(r.event, TraceEvent::Killed { .. })));
    }

    #[test]
    fn disabled_trace_costs_nothing_and_returns_empty() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        sim.spawn("p", NodeId(0), |_ctx| {});
        sim.run();
        assert!(sim.take_trace().is_empty());
    }
}
