//! The deterministic scheduler and the process API.
//!
//! # Execution model
//!
//! The scheduler runs two kinds of simulated process behind one event
//! loop:
//!
//! * **Thread-backed** ([`Simulation::spawn`]) — an OS thread running
//!   ordinary blocking Rust code against a [`Ctx`] handle. The process
//!   runs until it blocks (in [`Ctx::recv`], [`Ctx::sleep`], …) and
//!   control then returns to the scheduler via a channel handoff.
//!   Natural to write, but each parked process pins a thread stack.
//! * **Poll-driven** ([`Simulation::spawn_poll`]) — a [`Process`] state
//!   machine the scheduler polls in event order; parking costs one heap
//!   entry in the process table, so simulations scale to hundreds of
//!   thousands of concurrent processes (see the [`poll`](crate::poll)
//!   module and experiment E16).
//!
//! # Domains and parallel execution
//!
//! The event queue is sharded into **domains**: nodes are partitioned
//! round-robin (`node % ndomains`, see [`Simulation::with_domains`]) and
//! each domain owns its own virtual clock, event heap, tie-breaking
//! sequence counter, RNG stream and trace ring. Domains advance in
//! *barrier rounds* under conservative lookahead: each round computes
//! the global minimum event time and lets every domain execute events up
//! to `min cross-domain link latency` past it; cross-domain effects
//! (message deliveries, spawns, kills) are buffered in per-source
//! outboxes and merged at the barrier in `(time, src domain, send
//! order)` order, with fresh target-local sequence numbers. Because the
//! merge order and every per-domain decision are functions of the seed
//! and the topology alone, a run is **bit-for-bit identical for any
//! worker-thread count** ([`Simulation::with_threads`]): threads only
//! decide which OS thread executes a domain's round, never what the
//! round does.
//!
//! With the default single domain the round structure degenerates to
//! exactly the classic sequential loop: one heap, one clock, one RNG
//! drawn in event order — same seed, same interleaving, same results.
//!
//! Within one domain at most one process runs at any instant, and all
//! of a domain's randomness comes from its own seeded RNG drawn in
//! event order. Caveats that come with multiple domains are documented
//! on the relevant methods: cross-domain [`Ctx::spawn`]/[`Ctx::kill`]
//! take effect one lookahead later, and mutating the network topology
//! from *inside* a multi-domain simulation mid-round is detectably
//! unsafe (see `sched_time_inversions`) rather than silently wrong.
//!
//! This is the repo's substitute for the paper's testbed of Unix processes
//! on a LAN (see `DESIGN.md` §6): processes get the natural blocking style
//! of real code, while the network in between is simulated and fault-
//! injectable.

use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock, RwLockWriteGuard};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::addr::{Endpoint, NodeId, PortId, ProcId};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::msg::Message;
use crate::net::{Fate, Network, NetworkConfig};
use crate::poll::{Poll, ProcCx, Process};
use crate::time::{duration_to_nanos, SimTime};
use crate::trace::{Trace, TraceDump, TraceEvent, TraceRecord};

/// Error returned by blocking [`Ctx`] operations once the simulation is
/// shutting down. A process receiving `Stopped` should return promptly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stopped;

impl std::fmt::Display for Stopped {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "simulation stopped")
    }
}

impl std::error::Error for Stopped {}

/// Extracts a displayable message from a caught panic payload.
fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    p.downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| p.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic>".to_string())
}

/// Scheduler → process control transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Resume {
    /// First transfer: begin executing the process body.
    Start,
    /// A sleep expired.
    Woken,
    /// A message is available in the mailbox.
    Delivered,
    /// A `recv` deadline expired with no message.
    TimedOut,
    /// The simulation is over; unwind out of blocking calls.
    Shutdown,
}

/// Process → scheduler control transfer.
#[derive(Debug)]
enum YieldMsg {
    /// Block until the given instant.
    Sleep(SimTime),
    /// Block until a message arrives or the deadline (if any) passes.
    Recv { deadline: Option<SimTime> },
    /// The process body returned (or panicked with the given message).
    Finished { panic_msg: Option<String> },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    NotStarted,
    Sleeping,
    BlockedRecv,
    /// Poll-driven process whose last poll returned `Pending`.
    Parked,
    Finished,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EvKey {
    time: SimTime,
    seq: u64,
}

enum EvKind {
    Wake(ProcId),
    Timeout {
        pid: ProcId,
        gen: u64,
    },
    Deliver {
        msg: Message,
    },
    Kill(ProcId),
    /// Deferred registration of a process spawned from *another* domain:
    /// the entry (and its endpoint binding) materializes at this instant
    /// in the target domain's own timeline, so concurrent deliveries and
    /// binds in the target can never race the registration.
    ApplySpawn {
        pid: ProcId,
        endpoint: Endpoint,
        entry: Box<ProcEntry>,
    },
    /// Deferred cross-domain kill: unbind + teardown runs at this
    /// instant in the victim's domain.
    RemoteKill {
        target: Endpoint,
    },
}

struct Ev {
    key: EvKey,
    kind: EvKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    // Reversed: BinaryHeap is a max-heap, we want earliest-first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.key.cmp(&self.key)
    }
}

/// A poll-driven process's state machine plus its per-process context.
/// Taken out of the registry while being polled so no lock is held
/// during user code, and put back if the poll returns `Pending`.
struct PolledMachine {
    process: Box<dyn Process>,
    cx: ProcCx,
}

/// How a process executes: a parked thread stack or a heap-allocated
/// state machine.
enum ProcKind {
    Thread {
        resume_tx: Sender<Resume>,
        yield_rx: Receiver<YieldMsg>,
        handle: Option<JoinHandle<()>>,
    },
    Polled {
        machine: Option<PolledMachine>,
    },
}

struct ProcEntry {
    name: String,
    mailbox: VecDeque<Message>,
    state: ProcState,
    /// Incremented every time the process blocks in recv (threaded) or
    /// parks (poll-driven); stale timeout events carry an older
    /// generation and are ignored.
    gen: u64,
    /// The domain the process's node maps to. Every event that touches
    /// this entry executes in this domain.
    domain: usize,
    kind: ProcKind,
    panic_msg: Option<String>,
}

struct Registry {
    procs: HashMap<ProcId, ProcEntry>,
    endpoints: HashMap<Endpoint, ProcId>,
    /// Identifier-allocation stripe count (== domain count). Ids are
    /// striped by the *allocating* domain — `id = count · stripes +
    /// stripe` — so domains running concurrently mint disjoint sequences
    /// that are each deterministic in the allocating domain's own
    /// execution order. With one stripe this is exactly the classic
    /// sequential counter.
    stripes: u32,
    /// Per-stripe count of pids handed out.
    next_proc: Vec<u32>,
    /// Per `(node, stripe)` count of ephemeral ports handed out.
    next_ephemeral: HashMap<(NodeId, u32), u32>,
}

impl Registry {
    fn alloc_pid(&mut self, stripe: u32) -> ProcId {
        let c = &mut self.next_proc[stripe as usize];
        let pid = ProcId(*c * self.stripes + stripe);
        *c += 1;
        pid
    }

    fn alloc_ephemeral_port(&mut self, node: NodeId, stripe: u32) -> PortId {
        let c = self.next_ephemeral.entry((node, stripe)).or_insert(0);
        let port = PortId(PortId::EPHEMERAL_BASE + *c * self.stripes + stripe);
        *c += 1;
        port
    }
}

/// One domain's share of the scheduler: its virtual clock, pending-event
/// heap, tie-breaking sequence counter, RNG stream, trace ring and
/// process-accounting ledger. Clock, heap and seq live under ONE mutex
/// (per domain) so the round loop pops the next event and advances time
/// in a single acquisition — no observer can see a clock out of step
/// with the heap it was derived from.
struct DomainState {
    now: SimTime,
    events: BinaryHeap<Ev>,
    seq: u64,
    /// This domain's deterministic RNG stream. Domain 0 is seeded with
    /// the simulation seed itself (so a single-domain run draws exactly
    /// the classic sequence); further domains derive their stream from
    /// the seed and the domain index.
    rng: StdRng,
    /// This domain's slice of the timeline; merged on
    /// [`Simulation::take_trace`] by `(time, domain, push order)`.
    trace: Option<Trace>,
    /// Processes spawned into this domain (lifetime total).
    spawned: u64,
    /// Processes of this domain currently alive.
    live: u64,
    /// Net spawn-minus-finish delta accumulated this round.
    round_delta: i64,
    /// Maximum prefix value of `round_delta` this round — the domain's
    /// contribution to the deterministic `processes_peak` upper bound.
    round_rise: i64,
    /// Events this domain executed in the current round (deterministic:
    /// a pure function of seed + topology).
    round_events_run: u64,
    /// Wall nanoseconds this domain spent popping + dispatching events
    /// this round (host-dependent; only accumulated while the profiler
    /// is on).
    round_busy_ns: u64,
}

impl DomainState {
    fn new(d: usize, seed: u64) -> DomainState {
        // Domain 0 draws the exact stream a 1-domain simulation draws;
        // the golden-ratio multiplier decorrelates the other streams.
        let rng_seed = if d == 0 {
            seed
        } else {
            seed.wrapping_add((d as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        };
        DomainState {
            now: SimTime::ZERO,
            events: BinaryHeap::new(),
            seq: 0,
            rng: StdRng::seed_from_u64(rng_seed),
            trace: None,
            spawned: 0,
            live: 0,
            round_delta: 0,
            round_rise: 0,
            round_events_run: 0,
            round_busy_ns: 0,
        }
    }
}

/// Pre-formatted flight-recorder series names for one domain, so the
/// per-event hot path never allocates. Single-domain simulations keep
/// the classic un-suffixed names; multi-domain ones get `@d<i>`.
struct DomainSeries {
    lag: String,
    depth: String,
    spawned: String,
    current: String,
    /// Profiler-gated lookahead-efficiency pair: events the domain ran
    /// this round vs events still pending past the horizon.
    run: String,
    pending: String,
    /// Profiler-gated utilization gauges (per-mille of the exec phase).
    busy_frac: String,
    stall_frac: String,
    /// Folded-stack frame paths for the domain's share of the exec
    /// phase (wall busy vs barrier stall).
    busy_frame: String,
    stall_frame: String,
}

impl DomainSeries {
    fn new(d: usize, ndomains: usize) -> DomainSeries {
        if ndomains == 1 {
            DomainSeries {
                lag: "sched_lag".to_string(),
                depth: "sched_depth".to_string(),
                spawned: "processes_spawned".to_string(),
                current: "processes_current".to_string(),
                run: "sched_round_run".to_string(),
                pending: "sched_round_pending".to_string(),
                busy_frac: "sched_busy_frac".to_string(),
                stall_frac: "sched_stall_frac".to_string(),
                busy_frame: "sched;round;exec;busy".to_string(),
                stall_frame: "sched;round;exec;stall".to_string(),
            }
        } else {
            DomainSeries {
                lag: format!("sched_lag@d{d}"),
                depth: format!("sched_depth@d{d}"),
                spawned: format!("processes_spawned@d{d}"),
                current: format!("processes_current@d{d}"),
                run: format!("sched_round_run@d{d}"),
                pending: format!("sched_round_pending@d{d}"),
                busy_frac: format!("sched_busy_frac@d{d}"),
                stall_frac: format!("sched_stall_frac@d{d}"),
                busy_frame: format!("sched;round;exec;busy@d{d}"),
                stall_frame: format!("sched;round;exec;stall@d{d}"),
            }
        }
    }
}

/// A cross-domain event parked in its source domain's outbox until the
/// round barrier merges it into the target heap.
struct OutboundEv {
    dst: usize,
    time: SimTime,
    kind: EvKind,
}

struct Shared {
    domains: Box<[Mutex<DomainState>]>,
    /// Per-*source*-domain buffers of cross-domain events. Only the
    /// owning domain's execution pushes, so there is no contention; the
    /// barrier drains them all and merges deterministically.
    outboxes: Box<[Mutex<Vec<OutboundEv>>]>,
    series: Box<[DomainSeries]>,
    /// The current round's conservative lookahead in nanoseconds
    /// (`u64::MAX` for a single domain). Deferred cross-domain effects
    /// (spawn/kill) are timestamped `now + lookahead` so they land at or
    /// beyond the round horizon in the target's timeline.
    round_lookahead_ns: AtomicU64,
    registry: Mutex<Registry>,
    network: RwLock<Network>,
    metrics: Arc<Metrics>,
    obs: Arc<obs::MetricsRegistry>,
    /// RNG seed the simulation was built with, stamped into report
    /// provenance so artifacts from different seeds are never compared.
    seed: u64,
}

impl Shared {
    fn ndomains(&self) -> usize {
        self.domains.len()
    }

    /// The domain a node's processes and events belong to.
    fn domain_of(&self, node: NodeId) -> usize {
        node.0 as usize % self.domains.len()
    }

    fn domain_now(&self, d: usize) -> SimTime {
        self.domains[d].lock().now
    }

    /// The most advanced domain clock — what an outside observer calls
    /// "now". With one domain this is the classic scheduler clock.
    fn max_now(&self) -> SimTime {
        self.domains
            .iter()
            .map(|d| d.lock().now)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Records `event` in domain `d`'s trace ring at that domain's
    /// current instant. One lock acquisition covers both reads so the
    /// timestamp can never drift from the ring it lands in.
    fn record(&self, d: usize, event: TraceEvent) {
        let mut st = self.domains[d].lock();
        let now = st.now;
        if let Some(trace) = st.trace.as_mut() {
            trace.push(now, event);
        }
    }

    /// Enqueues an event into domain `d`'s own heap with a fresh
    /// domain-local sequence number.
    fn push_event_domain(&self, d: usize, time: SimTime, kind: EvKind) {
        let mut st = self.domains[d].lock();
        st.seq += 1;
        let key = EvKey { time, seq: st.seq };
        st.events.push(Ev { key, kind });
    }

    /// Plans delivery for a payload and enqueues the resulting events.
    /// `span` is the causal span the send happens on behalf of; it
    /// rides along in the [`Message`] so the delivery (or loss) trace
    /// event stays attributed to the request.
    ///
    /// All random draws (loss, duplication, jitter) come from the
    /// *sending* domain's RNG stream, in that domain's execution order —
    /// the target domain's stream is untouched, which is what keeps the
    /// fate of every message independent of how rounds interleave.
    fn send(&self, src: Endpoint, dst: Endpoint, payload: Bytes, span: obs::SpanId) {
        let sd = self.domain_of(src.node);
        let dd = self.domain_of(dst.node);
        let now = self.domain_now(sd);
        self.metrics.on_send(payload.len());
        // Per-link wire bytes for the flight recorder. The enabled check
        // is one relaxed load; the series-name formatting only happens
        // when someone is recording.
        if self.obs.timeseries_enabled() {
            self.obs.ts_add(
                now.as_nanos(),
                &format!("link_bytes@n{}->n{}", src.node.0, dst.node.0),
                payload.len() as u64,
            );
        }
        self.record(
            sd,
            TraceEvent::Sent {
                src,
                dst,
                bytes: payload.len(),
                span,
            },
        );
        // Lock order: network before domain, never the reverse.
        let fate = {
            let net = self.network.read();
            let mut st = self.domains[sd].lock();
            net.plan(src.node, dst.node, payload.len(), now, &mut st.rng)
        };
        match fate {
            Fate::Deliver(times) => {
                if times.len() > 1 {
                    self.metrics.on_duplicate();
                }
                for t in times {
                    let kind = EvKind::Deliver {
                        msg: Message {
                            src,
                            dst,
                            payload: payload.clone(),
                            sent_at: now,
                            delivered_at: t,
                            span,
                        },
                    };
                    if dd == sd {
                        self.push_event_domain(sd, t, kind);
                    } else {
                        // Cross-domain: park in the source outbox; the
                        // round barrier merges outboxes in (time, src
                        // domain, send order) order.
                        self.outboxes[sd].lock().push(OutboundEv {
                            dst: dd,
                            time: t,
                            kind,
                        });
                    }
                }
            }
            Fate::Dropped => {
                self.metrics.on_drop();
                self.record(sd, TraceEvent::Dropped { src, dst, span });
            }
            Fate::Blackholed => {
                self.metrics.on_blackhole();
                self.record(sd, TraceEvent::Blackholed { src, dst, span });
            }
        }
    }

    fn pop_mailbox(&self, pid: ProcId) -> Option<Message> {
        self.registry
            .lock()
            .procs
            .get_mut(&pid)
            .and_then(|e| e.mailbox.pop_front())
    }

    /// Allocates a pid and the primary endpoint for a new process.
    /// Identifiers are striped by the allocating domain (`stripe`), so
    /// concurrent domains mint disjoint, individually-deterministic id
    /// sequences. The endpoint is *not* bound here — binding happens at
    /// registration time, in the target domain's timeline.
    fn alloc_proc(&self, stripe: u32, node: NodeId, port: Option<PortId>) -> (ProcId, Endpoint) {
        let mut reg = self.registry.lock();
        let pid = reg.alloc_pid(stripe);
        let port = match port {
            Some(p) => {
                assert!(
                    !p.is_ephemeral(),
                    "explicitly bound ports must be below PortId::EPHEMERAL_BASE, got {p}"
                );
                p
            }
            None => reg.alloc_ephemeral_port(node, stripe),
        };
        (pid, Endpoint::new(node, port))
    }

    /// Binds the endpoint, inserts the entry, records the spawn and
    /// schedules the first wake — all in domain `d`'s timeline.
    /// `in_round` distinguishes spawns made by running processes from
    /// out-of-round spawns made by the driving thread between rounds.
    fn register_proc(
        &self,
        d: usize,
        pid: ProcId,
        endpoint: Endpoint,
        entry: ProcEntry,
        in_round: bool,
    ) {
        let proc_name = entry.name.clone();
        {
            let mut reg = self.registry.lock();
            assert!(
                !reg.endpoints.contains_key(&endpoint),
                "endpoint {endpoint} already bound"
            );
            reg.endpoints.insert(endpoint, pid);
            reg.procs.insert(pid, entry);
        }
        self.note_proc_spawned(d, in_round);
        self.record(
            d,
            TraceEvent::Spawned {
                pid,
                name: proc_name,
                endpoint,
            },
        );
        // Start the process at the domain's current instant.
        let now = self.domain_now(d);
        self.push_event_domain(d, now, EvKind::Wake(pid));
    }

    /// Updates process-count metrics and gauges for a spawn landing in
    /// domain `d`.
    ///
    /// Single-domain simulations take the classic exact path (`peak`
    /// updated inline). Multi-domain simulations cannot order concurrent
    /// spawns across domains without serializing them, so in-round they
    /// only bump counters and a per-domain ledger; the round barrier
    /// folds the ledgers into a deterministic *upper bound* on the peak
    /// (see `finish_round`). Out-of-round spawns (from the driving
    /// thread, nothing else running) still take the exact path.
    fn note_proc_spawned(&self, d: usize, in_round: bool) {
        let nd = self.ndomains();
        let ts = self.obs.timeseries_enabled();
        if nd == 1 {
            let (spawned, peak) = self.metrics.on_proc_spawn();
            if ts {
                let now_ns = self.domain_now(0).as_nanos();
                self.obs.ts_gauge(now_ns, "processes_spawned", spawned);
                self.obs.ts_gauge(now_ns, "processes_peak", peak);
            }
            return;
        }
        if in_round {
            self.metrics.on_proc_spawn_counts();
        } else {
            // Out-of-round: no other domain is executing, the global
            // live count is exact — keep the classic peak fold.
            let _ = self.metrics.on_proc_spawn();
        }
        let (dom_spawned, dom_live, now) = {
            let mut st = self.domains[d].lock();
            st.spawned += 1;
            st.live += 1;
            st.round_delta += 1;
            st.round_rise = st.round_rise.max(st.round_delta);
            (st.spawned, st.live, st.now)
        };
        if ts {
            let now_ns = now.as_nanos();
            self.obs
                .ts_gauge(now_ns, &self.series[d].spawned, dom_spawned);
            self.obs.ts_gauge(now_ns, &self.series[d].current, dom_live);
        }
    }

    /// Process-count bookkeeping for a process that finished or was
    /// killed in domain `d`.
    fn note_proc_finished(&self, d: usize) {
        self.metrics.on_proc_finish();
        if self.ndomains() > 1 {
            let mut st = self.domains[d].lock();
            st.live = st.live.saturating_sub(1);
            st.round_delta -= 1;
        }
    }

    fn spawn_proc(
        self: &Arc<Self>,
        spawner: Option<usize>,
        name: String,
        node: NodeId,
        port: Option<PortId>,
        body: Box<dyn FnOnce(&mut Ctx) + Send + 'static>,
    ) -> Endpoint {
        let target = self.domain_of(node);
        let stripe = spawner.unwrap_or(target) as u32;
        let (pid, endpoint) = self.alloc_proc(stripe, node, port);

        let (resume_tx, resume_rx) = bounded::<Resume>(1);
        let (yield_tx, yield_rx) = bounded::<YieldMsg>(1);

        let mut ctx = Ctx {
            pid,
            name: name.clone(),
            endpoint,
            domain: target,
            shared: Arc::clone(self),
            resume_rx: Some(resume_rx),
            yield_tx: Some(yield_tx.clone()),
            stopped: false,
            seq_counter: std::cell::Cell::new(0),
            current_span: std::cell::Cell::new(obs::SpanId::NONE),
        };

        let handle = std::thread::Builder::new()
            .name(format!("sim-{name}"))
            .spawn(move || {
                // Everything this process records flows through its
                // domain's obs writer lane (and its simulation's
                // profiler).
                obs::set_ambient_lane(target);
                obs::set_ambient_profiler(Some(Arc::clone(&ctx.shared.obs)));
                // Wait for the scheduler to start us (or abort pre-start).
                match ctx.resume_rx.as_ref().expect("threaded ctx").recv() {
                    Ok(Resume::Start) => {}
                    _ => {
                        let _ = yield_tx.send(YieldMsg::Finished { panic_msg: None });
                        return;
                    }
                }
                let result = panic::catch_unwind(AssertUnwindSafe(|| body(&mut ctx)));
                let panic_msg = result.err().map(|p| panic_message(p.as_ref()));
                let _ = yield_tx.send(YieldMsg::Finished { panic_msg });
            })
            .expect("failed to spawn simulation process thread");

        let entry = ProcEntry {
            name,
            mailbox: VecDeque::new(),
            state: ProcState::NotStarted,
            gen: 0,
            domain: target,
            kind: ProcKind::Thread {
                resume_tx,
                yield_rx,
                handle: Some(handle),
            },
            panic_msg: None,
        };
        self.commit_spawn(spawner, target, pid, endpoint, entry);
        endpoint
    }

    /// Spawns a poll-driven process: no thread, just a state machine in
    /// the process table. See the [`poll`](crate::poll) module.
    fn spawn_polled(
        self: &Arc<Self>,
        spawner: Option<usize>,
        name: String,
        node: NodeId,
        port: Option<PortId>,
        process: Box<dyn Process>,
    ) -> Endpoint {
        let target = self.domain_of(node);
        let stripe = spawner.unwrap_or(target) as u32;
        let (pid, endpoint) = self.alloc_proc(stripe, node, port);

        let ctx = Ctx {
            pid,
            name: name.clone(),
            endpoint,
            domain: target,
            shared: Arc::clone(self),
            // No scheduler channels: a poll-driven process parks by
            // returning Pending, never by a thread handoff.
            resume_rx: None,
            yield_tx: None,
            stopped: false,
            seq_counter: std::cell::Cell::new(0),
            current_span: std::cell::Cell::new(obs::SpanId::NONE),
        };

        let entry = ProcEntry {
            name,
            mailbox: VecDeque::new(),
            state: ProcState::NotStarted,
            gen: 0,
            domain: target,
            kind: ProcKind::Polled {
                machine: Some(PolledMachine {
                    process,
                    cx: ProcCx::new(ctx),
                }),
            },
            panic_msg: None,
        };
        self.commit_spawn(spawner, target, pid, endpoint, entry);
        endpoint
    }

    /// Registers a freshly built process entry. Same-domain (and
    /// out-of-round) spawns register immediately, exactly like the
    /// sequential scheduler. A spawn *from another domain's execution*
    /// is instead shipped through the outbox as an `ApplySpawn` that
    /// lands one lookahead later in the target's timeline — the earliest
    /// instant the target can causally observe anything from the
    /// spawner's current round.
    fn commit_spawn(
        &self,
        spawner: Option<usize>,
        target: usize,
        pid: ProcId,
        endpoint: Endpoint,
        entry: ProcEntry,
    ) {
        match spawner {
            Some(s) if s != target => {
                let now = self.domain_now(s);
                let la = self.round_lookahead_ns.load(Ordering::Relaxed);
                let at = SimTime::from_nanos(now.as_nanos().saturating_add(la));
                self.outboxes[s].lock().push(OutboundEv {
                    dst: target,
                    time: at,
                    kind: EvKind::ApplySpawn {
                        pid,
                        endpoint,
                        entry: Box::new(entry),
                    },
                });
            }
            _ => self.register_proc(target, pid, endpoint, entry, spawner.is_some()),
        }
    }

    /// Schedules a crash of the process owning `target`. Same-domain
    /// kills unbind the endpoint and schedule the `Kill` at the current
    /// instant, exactly like the sequential scheduler. A kill *from
    /// another domain's execution* takes effect one lookahead later in
    /// the victim's timeline and optimistically returns `true` (the
    /// caller cannot observe the victim's state without crossing the
    /// same latency anyway).
    fn request_kill(&self, from: Option<usize>, target: Endpoint) -> bool {
        let td = self.domain_of(target.node);
        match from {
            Some(s) if s != td => {
                let now = self.domain_now(s);
                let la = self.round_lookahead_ns.load(Ordering::Relaxed);
                let at = SimTime::from_nanos(now.as_nanos().saturating_add(la));
                self.outboxes[s].lock().push(OutboundEv {
                    dst: td,
                    time: at,
                    kind: EvKind::RemoteKill { target },
                });
                true
            }
            _ => self.kill_local(td, target),
        }
    }

    /// Kill running in the victim's own domain: unbind endpoints, clear
    /// the mailbox, schedule teardown at the domain's current instant.
    fn kill_local(&self, d: usize, target: Endpoint) -> bool {
        let mut reg = self.registry.lock();
        let Some(pid) = reg.endpoints.get(&target).copied() else {
            return false;
        };
        let alive = reg
            .procs
            .get(&pid)
            .map(|e| e.state != ProcState::Finished)
            .unwrap_or(false);
        if !alive {
            return false;
        }
        reg.endpoints.retain(|_, p| *p != pid);
        // Drop anything already queued: a crashed process processes
        // nothing more.
        if let Some(entry) = reg.procs.get_mut(&pid) {
            entry.mailbox.clear();
        }
        drop(reg);
        self.record(d, TraceEvent::Killed { pid });
        self.push_event_domain(d, self.domain_now(d), EvKind::Kill(pid));
        true
    }

    /// The conservative lookahead for the coming round, in nanoseconds:
    /// how far past the global minimum clock a domain may safely run.
    /// Any cross-domain message sent at `t` arrives no earlier than
    /// `t + min cross-domain base latency × (1 − jitter)`; we subtract
    /// one more nanosecond to stay strictly below even after float
    /// truncation. A single domain has no cross-domain traffic at all —
    /// its horizon is unbounded.
    fn round_lookahead(&self) -> u64 {
        if self.ndomains() == 1 {
            return u64::MAX;
        }
        let net = self.network.read();
        let base = duration_to_nanos(net.min_cross_domain_base_latency(self.ndomains()));
        let jitter = net.config().jitter;
        (((base as f64) * (1.0 - jitter)) as u64).saturating_sub(1)
    }
}

/// The round-execution engine. Everything here runs with `&self` — a
/// worker thread executes `domain_round` for the domains it owns, and
/// all shared state sits behind the per-domain mutexes, the registry
/// mutex, the network rwlock and relaxed atomics.
impl Shared {
    /// Executes one barrier round for domain `d`: pop-and-run every
    /// event with time `t` satisfying `t <= limit && (t == gm || t <
    /// horizon)`. The `t == gm` clause guarantees progress even at zero
    /// lookahead (and lets `SimTime::MAX`-scheduled events eventually
    /// run); the strict `<` keeps the horizon conservative under float
    /// truncation.
    fn domain_round(&self, d: usize, gm: SimTime, horizon: SimTime, limit: SimTime) {
        // Profiler bookkeeping: count the events this round runs
        // (deterministic) and, while the profiler is armed, bracket the
        // whole drain with two clock reads — per round per domain, not
        // per event, so the measurement itself stays out of the hot
        // loop.
        let profiling = self.obs.profile_enabled();
        let t_round = profiling.then(Instant::now);
        let mut events_run: u64 = 0;
        loop {
            // One lock acquisition pops the next runnable event AND
            // advances the domain clock to it, so no observer can see
            // the old time paired with the drained heap (or vice versa).
            let popped = {
                let mut st = self.domains[d].lock();
                match st.events.peek() {
                    Some(ev)
                        if ev.key.time <= limit && (ev.key.time == gm || ev.key.time < horizon) =>
                    {
                        let ev = st.events.pop().expect("peeked event vanished");
                        // An event scheduled before the clock it runs at
                        // is a time inversion — the bug class lookahead
                        // can introduce (e.g. a topology mutation that
                        // lowered a cross-domain latency mid-round).
                        // Count it honestly instead of clamping it away;
                        // the clock itself stays monotone.
                        let inverted = ev.key.time < st.now;
                        if !inverted {
                            st.now = ev.key.time;
                        }
                        Some((ev, st.now, st.events.len() as u64, inverted))
                    }
                    _ => None,
                }
            };
            let Some((ev, dispatched_at, depth, inverted)) = popped else {
                break;
            };
            if inverted {
                debug_assert!(
                    false,
                    "simnet: time inversion in domain {d}: event at {:?} dispatched at {:?}",
                    ev.key.time, dispatched_at
                );
                self.metrics.on_time_inversion();
            }
            self.metrics.on_event();
            if self.obs.timeseries_enabled() {
                let now_ns = dispatched_at.as_nanos();
                // Scheduler lag: dispatch time minus the event's
                // scheduled time. The single-lock pop advances the clock
                // to the event it pops, so this is structurally zero —
                // recorded anyway as an invariant monitor (a nonzero
                // window means the scheduler contract broke, e.g. a
                // counted time inversion) and as the anchor the
                // genuinely varying heap-depth gauge hangs on.
                self.obs.ts_observe(
                    now_ns,
                    &self.series[d].lag,
                    now_ns.saturating_sub(ev.key.time.as_nanos()),
                );
                self.obs.ts_gauge(now_ns, &self.series[d].depth, depth);
            }
            self.dispatch(d, ev.kind);
            events_run += 1;
        }
        if let Some(t_round) = t_round {
            let busy_ns = t_round.elapsed().as_nanos() as u64;
            // Stamp the round ledger for the driver's phase accounting
            // and record the lookahead-efficiency pair at the domain
            // clock: how much runnable work this round found vs how much
            // the horizon deferred. Both values are deterministic, so
            // the series stay byte-identical across thread counts.
            let (now_ns, deferred) = {
                let mut st = self.domains[d].lock();
                st.round_events_run = events_run;
                st.round_busy_ns = busy_ns;
                (st.now.as_nanos(), st.events.len() as u64)
            };
            if self.obs.timeseries_enabled() {
                self.obs.ts_add(now_ns, &self.series[d].run, events_run);
                self.obs.ts_gauge(now_ns, &self.series[d].pending, deferred);
            }
        }
    }

    /// Barrier step: drain every outbox and merge the parked
    /// cross-domain events into their target heaps in `(time, source
    /// domain, send order)` order, assigning fresh target-local sequence
    /// numbers. The merge order is a pure function of what each domain
    /// did in its own timeline, so it is identical for every worker
    /// count.
    fn flush_outboxes(&self) {
        let mut all: Vec<(SimTime, usize, usize, OutboundEv)> = Vec::new();
        for (src, outbox) in self.outboxes.iter().enumerate() {
            let drained = std::mem::take(&mut *outbox.lock());
            for (idx, ev) in drained.into_iter().enumerate() {
                all.push((ev.time, src, idx, ev));
            }
        }
        if all.is_empty() {
            return;
        }
        all.sort_by_key(|a| (a.0, a.1, a.2));
        for (_, _, _, ev) in all {
            self.push_event_domain(ev.dst, ev.time, ev.kind);
        }
    }

    /// Folds the per-domain spawn ledgers accumulated this round into a
    /// deterministic upper bound on the concurrent-process peak:
    /// `live-at-round-start + Σ max(0, per-domain max prefix rise)`.
    /// Each domain's rise is exact in its own timeline; summing them
    /// bounds every possible interleaving from above and depends only on
    /// per-domain facts — so the reported peak is identical for every
    /// worker count (and exact whenever one domain drives the growth).
    fn finish_round(&self, live_start: u64, gm: SimTime) {
        let mut rise_sum: u64 = 0;
        for dom in self.domains.iter() {
            let st = dom.lock();
            if st.round_rise > 0 {
                rise_sum += st.round_rise as u64;
            }
        }
        if rise_sum == 0 {
            return;
        }
        let new_peak = self.metrics.note_peak_bound(live_start + rise_sum);
        if self.obs.timeseries_enabled() {
            self.obs.ts_gauge(gm.as_nanos(), "processes_peak", new_peak);
        }
    }

    fn dispatch(&self, d: usize, kind: EvKind) {
        match kind {
            EvKind::Wake(pid) => match self.proc_status(pid) {
                Some((ProcState::NotStarted, false)) => self.resume_and_wait(d, pid, Resume::Start),
                Some((ProcState::Sleeping, false)) => self.resume_and_wait(d, pid, Resume::Woken),
                Some((ProcState::NotStarted | ProcState::Parked, true)) => {
                    self.poll_process(d, pid)
                }
                _ => {} // finished or stale
            },
            EvKind::Timeout { pid, gen } => {
                // A timer is live only if the process still blocks on the
                // park that armed it: the generation bumps on every park.
                let polled = {
                    let reg = self.registry.lock();
                    reg.procs.get(&pid).and_then(|e| {
                        if e.gen != gen {
                            return None;
                        }
                        match (&e.kind, e.state) {
                            (ProcKind::Thread { .. }, ProcState::BlockedRecv) => Some(false),
                            (ProcKind::Polled { .. }, ProcState::Parked) => Some(true),
                            _ => None,
                        }
                    })
                };
                match polled {
                    Some(false) => self.resume_and_wait(d, pid, Resume::TimedOut),
                    Some(true) => self.poll_process(d, pid),
                    None => {}
                }
            }
            EvKind::Kill(pid) => match self.proc_status(pid) {
                Some((ProcState::Finished, _)) | None => {}
                Some((_, true)) => {
                    // A killed state machine just drops: a crash runs no
                    // farewell code (destructors still run, as they would
                    // for a thread unwinding out of Stopped).
                    self.finish_polled(d, pid, None);
                }
                Some((_, false)) => {
                    // Tear the victim down now: keep resuming it with
                    // Shutdown until its body returns.
                    loop {
                        match self.proc_status(pid) {
                            Some((ProcState::Finished, _)) | None => break,
                            _ => self.resume_and_wait(d, pid, Resume::Shutdown),
                        }
                    }
                }
            },
            EvKind::ApplySpawn {
                pid,
                endpoint,
                entry,
            } => {
                // A cross-domain spawn materializing in its target
                // domain's timeline.
                self.register_proc(d, pid, endpoint, *entry, true);
            }
            EvKind::RemoteKill { target } => {
                // A cross-domain kill arriving in the victim's timeline.
                // The endpoint may already be gone (victim finished or
                // was killed locally first) — that's a no-op, and the
                // optimistic `true` the remote caller saw is the same
                // answer a racing local kill would have produced.
                let _ = self.kill_local(d, target);
            }
            EvKind::Deliver { msg } => {
                let (delivered_src, delivered_dst, delivered_bytes, delivered_span) =
                    (msg.src, msg.dst, msg.payload.len(), msg.span);
                // What the delivery should do to the receiving process:
                // resume a thread blocked in recv, poll a parked machine,
                // or nothing (it will find the message when it next runs).
                #[derive(PartialEq)]
                enum After {
                    Nothing,
                    ResumeThread,
                    PollMachine,
                }
                let target = {
                    let mut reg = self.registry.lock();
                    let pid = reg.endpoints.get(&msg.dst).copied();
                    match pid {
                        Some(pid) => {
                            let entry = reg.procs.get_mut(&pid).expect("endpoint maps to proc");
                            if entry.state == ProcState::Finished {
                                None
                            } else {
                                entry.mailbox.push_back(msg);
                                let after = match (&entry.kind, entry.state) {
                                    (ProcKind::Thread { .. }, ProcState::BlockedRecv) => {
                                        After::ResumeThread
                                    }
                                    // Every delivery wakes a parked machine:
                                    // it parked after seeing an empty
                                    // mailbox, so this message is news. No
                                    // wakeup can be lost — racing
                                    // completions each schedule a poll.
                                    (ProcKind::Polled { .. }, ProcState::Parked) => {
                                        After::PollMachine
                                    }
                                    _ => After::Nothing,
                                };
                                Some((pid, after))
                            }
                        }
                        None => None,
                    }
                };
                match target {
                    Some((pid, after)) => {
                        self.metrics.on_deliver();
                        self.record(
                            d,
                            TraceEvent::Delivered {
                                src: delivered_src,
                                dst: delivered_dst,
                                bytes: delivered_bytes,
                                span: delivered_span,
                            },
                        );
                        match after {
                            After::ResumeThread => self.resume_and_wait(d, pid, Resume::Delivered),
                            After::PollMachine => self.poll_process(d, pid),
                            After::Nothing => {}
                        }
                    }
                    None => {
                        self.metrics.on_blackhole();
                        self.record(
                            d,
                            TraceEvent::Blackholed {
                                src: delivered_src,
                                dst: delivered_dst,
                                span: delivered_span,
                            },
                        );
                    }
                }
            }
        }
    }

    /// The process's state plus whether it is poll-driven.
    fn proc_status(&self, pid: ProcId) -> Option<(ProcState, bool)> {
        self.registry
            .lock()
            .procs
            .get(&pid)
            .map(|e| (e.state, matches!(e.kind, ProcKind::Polled { .. })))
    }

    /// Polls a poll-driven process once. The machine is taken out of the
    /// registry for the duration, so no lock is held while user code
    /// runs (and the machine may freely spawn or kill other processes).
    fn poll_process(&self, d: usize, pid: ProcId) {
        let machine = {
            let mut reg = self.registry.lock();
            let Some(entry) = reg.procs.get_mut(&pid) else {
                return;
            };
            if entry.state == ProcState::Finished {
                return;
            }
            match &mut entry.kind {
                ProcKind::Polled { machine } => machine.take(),
                ProcKind::Thread { .. } => unreachable!("poll of thread-backed process"),
            }
        };
        let Some(mut m) = machine else {
            return;
        };
        let result = panic::catch_unwind(AssertUnwindSafe(|| m.process.poll(&mut m.cx)));
        let wake = m.cx.take_wake();
        match result {
            Ok(Poll::Pending) => {
                let gen = {
                    let mut reg = self.registry.lock();
                    let entry = reg.procs.get_mut(&pid).expect("proc vanished");
                    entry.gen += 1;
                    entry.state = ProcState::Parked;
                    match &mut entry.kind {
                        ProcKind::Polled { machine } => *machine = Some(m),
                        ProcKind::Thread { .. } => unreachable!(),
                    }
                    entry.gen
                };
                if let Some(at) = wake {
                    let at = at.max(self.domain_now(d));
                    self.push_event_domain(d, at, EvKind::Timeout { pid, gen });
                }
            }
            Ok(Poll::Ready(())) => {
                drop(m);
                self.finish_polled(d, pid, None);
            }
            Err(p) => {
                drop(m);
                self.finish_polled(d, pid, Some(panic_message(p.as_ref())));
            }
        }
    }

    /// Marks a poll-driven process finished, dropping its machine (and
    /// with it the process's share of the table memory).
    fn finish_polled(&self, d: usize, pid: ProcId, panic_msg: Option<String>) {
        let newly_finished = {
            let mut reg = self.registry.lock();
            let Some(entry) = reg.procs.get_mut(&pid) else {
                return;
            };
            let newly = entry.state != ProcState::Finished;
            entry.state = ProcState::Finished;
            if panic_msg.is_some() {
                entry.panic_msg = panic_msg;
            }
            if let ProcKind::Polled { machine } = &mut entry.kind {
                *machine = None;
            }
            newly
        };
        if newly_finished {
            self.note_proc_finished(d);
            self.record(d, TraceEvent::Finished { pid });
        }
    }

    /// Resumes `pid` and blocks until it yields again, then records the
    /// yield. The registry lock is **not** held while the process runs.
    fn resume_and_wait(&self, d: usize, pid: ProcId, resume: Resume) {
        let (tx, rx) = {
            let reg = self.registry.lock();
            let entry = reg.procs.get(&pid).expect("resume of unknown proc");
            match &entry.kind {
                ProcKind::Thread {
                    resume_tx,
                    yield_rx,
                    ..
                } => (resume_tx.clone(), yield_rx.clone()),
                ProcKind::Polled { .. } => unreachable!("resume of poll-driven process"),
            }
        };
        tx.send(resume).expect("process thread gone before resume");
        let y = rx.recv().expect("process thread gone before yield");
        let mut reg = self.registry.lock();
        let entry = reg.procs.get_mut(&pid).expect("proc vanished");
        match y {
            YieldMsg::Sleep(until) => {
                entry.state = ProcState::Sleeping;
                drop(reg);
                self.push_event_domain(d, until, EvKind::Wake(pid));
            }
            YieldMsg::Recv { deadline } => {
                entry.gen += 1;
                entry.state = ProcState::BlockedRecv;
                let gen = entry.gen;
                drop(reg);
                if let Some(dl) = deadline {
                    self.push_event_domain(d, dl, EvKind::Timeout { pid, gen });
                }
            }
            YieldMsg::Finished { panic_msg } => {
                entry.state = ProcState::Finished;
                entry.panic_msg = panic_msg;
                drop(reg);
                self.note_proc_finished(d);
                self.record(d, TraceEvent::Finished { pid });
            }
        }
    }

    /// Tells every live process to stop: threads are resumed with
    /// `Shutdown` until they return (then joined); poll-driven machines
    /// get one final poll with the stop flag set — the mirror of a
    /// thread seeing [`Stopped`] — and are then dropped regardless.
    /// Runs on the driving thread only; teardown is ordered by pid so
    /// the `Finished` trace tail is deterministic.
    fn shutdown(&self) {
        let mut pids: Vec<(ProcId, bool, usize)> = {
            let reg = self.registry.lock();
            reg.procs
                .iter()
                .filter(|(_, e)| e.state != ProcState::Finished)
                .map(|(pid, e)| (*pid, matches!(e.kind, ProcKind::Polled { .. }), e.domain))
                .collect()
        };
        pids.sort_by_key(|(pid, _, _)| pid.0);
        for (pid, polled, d) in pids {
            if polled {
                self.shutdown_polled(d, pid);
            } else {
                // A stopping process may legally block a few more times
                // before noticing; keep resuming it with Shutdown until
                // it finishes.
                loop {
                    match self.proc_status(pid) {
                        Some((ProcState::Finished, _)) | None => break,
                        _ => self.resume_and_wait(d, pid, Resume::Shutdown),
                    }
                }
            }
        }
        let mut handles: Vec<(ProcId, String, JoinHandle<()>)> = {
            let mut reg = self.registry.lock();
            reg.procs
                .iter_mut()
                .filter_map(|(pid, e)| match &mut e.kind {
                    ProcKind::Thread { handle, .. } => {
                        handle.take().map(|h| (*pid, e.name.clone(), h))
                    }
                    ProcKind::Polled { .. } => None,
                })
                .collect()
        };
        handles.sort_by_key(|(pid, _, _)| pid.0);
        for (_, name, h) in handles {
            if h.join().is_err() {
                // Panic message already captured via YieldMsg::Finished.
                eprintln!("simnet: process thread '{name}' terminated abnormally");
            }
        }
        // Drop any undispatched events: an `ApplySpawn` parked in a heap
        // or outbox owns a ProcEntry whose context points back at this
        // Shared — clearing here breaks the cycle so the Arc can free.
        for dom in self.domains.iter() {
            dom.lock().events.clear();
        }
        for outbox in self.outboxes.iter() {
            outbox.lock().clear();
        }
    }

    /// One final poll with the stop flag raised, then finish. Dropping
    /// the machine here also breaks the `Shared → registry → ProcCx →
    /// Shared` reference cycle a parked machine's context holds.
    fn shutdown_polled(&self, d: usize, pid: ProcId) {
        let machine = {
            let mut reg = self.registry.lock();
            let Some(entry) = reg.procs.get_mut(&pid) else {
                return;
            };
            if entry.state == ProcState::Finished {
                return;
            }
            match &mut entry.kind {
                ProcKind::Polled { machine } => machine.take(),
                ProcKind::Thread { .. } => unreachable!(),
            }
        };
        let panic_msg = machine.and_then(|mut m| {
            m.cx.ctx.stopped = true;
            panic::catch_unwind(AssertUnwindSafe(|| m.process.poll(&mut m.cx)))
                .err()
                .map(|p| panic_message(p.as_ref()))
        });
        self.finish_polled(d, pid, panic_msg);
    }

    /// Panics (deterministically, sorted by pid) if any simulated
    /// process panicked.
    fn check_panics(&self) {
        let mut panics: Vec<(u32, String, String)> = {
            let reg = self.registry.lock();
            reg.procs
                .iter()
                .filter_map(|(pid, e)| {
                    e.panic_msg
                        .as_ref()
                        .map(|m| (pid.0, e.name.clone(), m.clone()))
                })
                .collect()
        };
        if !panics.is_empty() {
            panics.sort();
            let mut s = String::from("simulated process(es) panicked:");
            for (_, name, msg) in panics {
                s.push_str(&format!("\n  - {name}: {msg}"));
            }
            panic!("{s}");
        }
    }
}

/// The handle a simulated process uses to interact with the world.
///
/// A `Ctx` is passed by the scheduler to the process body closure. All of
/// its blocking operations return [`Stopped`] once the simulation is
/// shutting down; a well-behaved process returns promptly on `Stopped`.
///
/// Do not hold the guard returned by [`Ctx::net`] across a blocking call.
pub struct Ctx {
    pid: ProcId,
    name: String,
    endpoint: Endpoint,
    /// The domain this process executes in (its node's domain).
    domain: usize,
    shared: Arc<Shared>,
    /// `None` for poll-driven processes, which never block on the
    /// scheduler and so carry no handoff channels at all.
    resume_rx: Option<Receiver<Resume>>,
    yield_tx: Option<Sender<YieldMsg>>,
    stopped: bool,
    seq_counter: std::cell::Cell<u64>,
    current_span: std::cell::Cell<obs::SpanId>,
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("pid", &self.pid)
            .field("name", &self.name)
            .field("endpoint", &self.endpoint)
            .field("domain", &self.domain)
            .field("stopped", &self.stopped)
            .finish()
    }
}

impl Ctx {
    /// This process's identifier (for diagnostics).
    pub fn pid(&self) -> ProcId {
        self.pid
    }

    /// The name given at spawn time.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node this process runs on.
    pub fn node(&self) -> NodeId {
        self.endpoint.node
    }

    /// This process's primary endpoint (where replies should be sent).
    pub fn endpoint(&self) -> Endpoint {
        self.endpoint
    }

    /// Current simulated time — this process's *domain* clock, which is
    /// the only clock the process can causally observe. With one domain
    /// (the default) it is the global clock.
    pub fn now(&self) -> SimTime {
        self.shared.domain_now(self.domain)
    }

    /// Whether the simulation has asked this process to stop.
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    /// Returns the next value of a per-process monotonic counter,
    /// starting at 1. Protocol layers use it to mint identifiers that
    /// are unique *per process endpoint* (e.g. RPC call ids shared by
    /// every client object in the process, so server-side duplicate
    /// suppression is sound).
    pub fn next_seq(&self) -> u64 {
        let v = self.seq_counter.get() + 1;
        self.seq_counter.set(v);
        v
    }

    /// The simulation-wide observability registry: spans, latency
    /// histograms and aggregated protocol counters all land here.
    pub fn obs(&self) -> &obs::MetricsRegistry {
        &self.shared.obs
    }

    /// The span currently active in this process, or [`obs::SpanId::NONE`].
    ///
    /// Protocol layers stamp this onto outgoing packets so that work done
    /// on behalf of an invocation (dispatches, retransmissions, one-way
    /// notifications) stays attributable to it.
    pub fn current_span(&self) -> obs::SpanId {
        self.current_span.get()
    }

    /// Makes `span` the process's active span and returns the previous
    /// one, which the caller must restore when its scope ends.
    pub fn set_current_span(&self, span: obs::SpanId) -> obs::SpanId {
        self.current_span.replace(span)
    }

    /// Sends `payload` to `dst`. Non-blocking; delivery (or loss) is
    /// decided by the network model at this instant. The send is
    /// attributed to the process's current span.
    pub fn send(&self, dst: Endpoint, payload: Bytes) {
        self.shared
            .send(self.endpoint, dst, payload, self.current_span.get());
    }

    /// Sends `payload` to `dst` with an explicit source endpoint, which
    /// must be one of this process's bound endpoints (e.g. an extra port
    /// bound with [`Ctx::bind_port`]).
    pub fn send_from(&self, src: Endpoint, dst: Endpoint, payload: Bytes) {
        debug_assert_eq!(src.node, self.endpoint.node, "send_from across nodes");
        self.shared.send(src, dst, payload, self.current_span.get());
    }

    /// Like [`Ctx::send`], but attributes the send to an explicit span
    /// instead of the process's current one. Protocol layers use this
    /// when the packet belongs to a different causal context than the
    /// code sending it — e.g. a server re-sending a cached reply for a
    /// suppressed duplicate attributes the bytes to the *request's*
    /// span, not to whatever the server is doing now.
    pub fn send_traced(&self, dst: Endpoint, payload: Bytes, span: obs::SpanId) {
        self.shared.send(self.endpoint, dst, payload, span);
    }

    /// [`Ctx::send_from`] with an explicit span, see [`Ctx::send_traced`].
    pub fn send_from_traced(
        &self,
        src: Endpoint,
        dst: Endpoint,
        payload: Bytes,
        span: obs::SpanId,
    ) {
        debug_assert_eq!(src.node, self.endpoint.node, "send_from across nodes");
        self.shared.send(src, dst, payload, span);
    }

    /// Appends a protocol-level event to the simulation timeline (no-op
    /// unless tracing is enabled). Upper layers use this to record the
    /// events the network itself cannot see: retransmission decisions,
    /// server executions, proxy cache hits, forwarding and migration.
    pub fn trace(&self, event: TraceEvent) {
        self.shared.record(self.domain, event);
    }

    /// Binds an additional well-known port routed to this process's
    /// mailbox. Incoming [`Message::dst`] distinguishes the ports.
    ///
    /// # Panics
    ///
    /// Panics if the port is ephemeral-range or already bound on this node.
    pub fn bind_port(&self, port: PortId) -> Endpoint {
        let ep = Endpoint::new(self.endpoint.node, port);
        let mut reg = self.shared.registry.lock();
        assert!(
            !port.is_ephemeral(),
            "bind_port requires a well-known port, got {port}"
        );
        assert!(
            !reg.endpoints.contains_key(&ep),
            "endpoint {ep} already bound"
        );
        reg.endpoints.insert(ep, self.pid);
        ep
    }

    /// Blocks until a message arrives.
    ///
    /// # Errors
    ///
    /// Returns [`Stopped`] when the simulation is shutting down.
    pub fn recv(&mut self) -> Result<Message, Stopped> {
        match self.recv_inner(None)? {
            Some(m) => Ok(m),
            None => unreachable!("recv without deadline returned empty"),
        }
    }

    /// Blocks until a message arrives or `timeout` elapses; `Ok(None)`
    /// means the timeout fired first.
    ///
    /// # Errors
    ///
    /// Returns [`Stopped`] when the simulation is shutting down.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Message>, Stopped> {
        let deadline = self.now() + timeout;
        self.recv_inner(Some(deadline))
    }

    /// Blocks until a message arrives or the absolute `deadline` passes.
    ///
    /// # Errors
    ///
    /// Returns [`Stopped`] when the simulation is shutting down.
    pub fn recv_deadline(&mut self, deadline: SimTime) -> Result<Option<Message>, Stopped> {
        self.recv_inner(Some(deadline))
    }

    /// Non-blocking receive: returns a message already in the mailbox, or
    /// `None` without advancing virtual time. Messages still in flight
    /// (scheduled for this same instant but not yet dispatched) are not
    /// visible.
    ///
    /// # Errors
    ///
    /// Returns [`Stopped`] when the simulation is shutting down.
    pub fn try_recv(&mut self) -> Result<Option<Message>, Stopped> {
        if self.stopped {
            return Err(Stopped);
        }
        Ok(self.shared.pop_mailbox(self.pid))
    }

    fn recv_inner(&mut self, deadline: Option<SimTime>) -> Result<Option<Message>, Stopped> {
        if self.stopped {
            return Err(Stopped);
        }
        loop {
            if let Some(m) = self.shared.pop_mailbox(self.pid) {
                return Ok(Some(m));
            }
            if let Some(dl) = deadline {
                if dl <= self.now() {
                    return Ok(None);
                }
            }
            match self.block_on(YieldMsg::Recv { deadline }) {
                Resume::Delivered => continue,
                Resume::TimedOut => return Ok(None),
                Resume::Shutdown => {
                    self.stopped = true;
                    return Err(Stopped);
                }
                other => unreachable!("unexpected resume in recv: {other:?}"),
            }
        }
    }

    /// Advances this process's virtual time by `d`.
    ///
    /// # Errors
    ///
    /// Returns [`Stopped`] when the simulation is shutting down.
    pub fn sleep(&mut self, d: Duration) -> Result<(), Stopped> {
        if self.stopped {
            return Err(Stopped);
        }
        if d.is_zero() {
            return Ok(());
        }
        let until = self.now() + d;
        match self.block_on(YieldMsg::Sleep(until)) {
            Resume::Woken => Ok(()),
            Resume::Shutdown => {
                self.stopped = true;
                Err(Stopped)
            }
            other => unreachable!("unexpected resume in sleep: {other:?}"),
        }
    }

    /// Spawns another process on `node` with an ephemeral port, returning
    /// its endpoint. A same-domain spawn starts at the current instant;
    /// a spawn landing in *another* domain starts one cross-domain
    /// lookahead later (the earliest instant that domain could causally
    /// learn of it).
    pub fn spawn<F>(&self, name: impl Into<String>, node: NodeId, body: F) -> Endpoint
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        self.shared
            .spawn_proc(Some(self.domain), name.into(), node, None, Box::new(body))
    }

    /// Spawns a process listening on a well-known port.
    ///
    /// # Panics
    ///
    /// Panics if the port is already bound on that node.
    pub fn spawn_at<F>(
        &self,
        name: impl Into<String>,
        node: NodeId,
        port: PortId,
        body: F,
    ) -> Endpoint
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        self.shared.spawn_proc(
            Some(self.domain),
            name.into(),
            node,
            Some(port),
            Box::new(body),
        )
    }

    /// Spawns a poll-driven process on `node` with an ephemeral port
    /// (see [`Simulation::spawn_poll`]).
    pub fn spawn_poll<P>(&self, name: impl Into<String>, node: NodeId, process: P) -> Endpoint
    where
        P: Process,
    {
        self.shared.spawn_polled(
            Some(self.domain),
            name.into(),
            node,
            None,
            Box::new(process),
        )
    }

    /// Spawns a poll-driven process listening on a well-known port.
    ///
    /// # Panics
    ///
    /// Panics if the port is already bound on that node or is in the
    /// ephemeral range.
    pub fn spawn_poll_at<P>(
        &self,
        name: impl Into<String>,
        node: NodeId,
        port: PortId,
        process: P,
    ) -> Endpoint
    where
        P: Process,
    {
        self.shared.spawn_polled(
            Some(self.domain),
            name.into(),
            node,
            Some(port),
            Box::new(process),
        )
    }

    /// Exclusive access to the network model for runtime fault injection
    /// (partitions, loss, link latency). Do not hold across blocking calls.
    ///
    /// In a multi-domain simulation, *lowering* a cross-domain latency
    /// from inside a running process can invalidate the round's
    /// already-computed lookahead; the scheduler detects the resulting
    /// time inversions and counts them in `sched_time_inversions`
    /// rather than failing silently. Mutate topology from the driving
    /// thread between runs (or raise latencies only) to stay exact.
    pub fn net(&self) -> RwLockWriteGuard<'_, Network> {
        self.shared.network.write()
    }

    /// Crashes the process owning `target`: it is torn down (its
    /// blocking call returns [`Stopped`]; a well-behaved process then
    /// exits) and all of its endpoints are unbound, so in-flight and
    /// future messages to it blackhole. Returns false if no live
    /// process owns the endpoint.
    ///
    /// A same-domain kill lands at the current instant. A kill of a
    /// process in *another* domain lands one cross-domain lookahead
    /// later and optimistically returns `true` — the caller cannot
    /// observe the victim's liveness faster than a message could travel
    /// anyway.
    ///
    /// Killing your own endpoint is allowed but pointless — prefer
    /// returning from the process body.
    pub fn kill(&self, target: Endpoint) -> bool {
        self.shared.request_kill(Some(self.domain), target)
    }

    /// Runs `f` with this process's domain RNG — deterministic in the
    /// domain's execution order. With one domain this is the classic
    /// simulation-wide RNG stream.
    pub fn with_rng<T>(&self, f: impl FnOnce(&mut StdRng) -> T) -> T {
        f(&mut self.shared.domains[self.domain].lock().rng)
    }

    /// Draws a uniformly random `u64` from the domain RNG.
    pub fn rand_u64(&self) -> u64 {
        self.with_rng(|r| r.gen())
    }

    /// Whether this context belongs to a poll-driven process. Blocking
    /// operations are unavailable there; protocol layers can branch on
    /// this to pick a non-blocking strategy.
    pub fn is_poll_driven(&self) -> bool {
        self.yield_tx.is_none()
    }

    fn block_on(&mut self, y: YieldMsg) -> Resume {
        let (Some(tx), Some(rx)) = (&self.yield_tx, &self.resume_rx) else {
            panic!(
                "blocking Ctx operation ({y:?}) in poll-driven process '{}': \
                 a state machine parks by returning Poll::Pending (arm a timer \
                 with ProcCx::wake_at / wake_after instead of sleeping, and use \
                 try_recv instead of recv)",
                self.name
            );
        };
        tx.send(y).expect("scheduler disappeared");
        rx.recv().expect("scheduler disappeared")
    }
}

/// Summary of a completed (or paused) run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Virtual time when the run stopped.
    pub end_time: SimTime,
    /// Network/scheduler counters at the end of the run.
    pub metrics: MetricsSnapshot,
    /// Processes that ran to completion.
    pub finished: usize,
    /// Processes still alive (blocked or sleeping) when the run stopped.
    pub alive: usize,
    /// Trace records evicted from the bounded trace ring so far (0 when
    /// tracing is disabled). Nonzero means [`Simulation::take_trace`]
    /// will return an incomplete timeline.
    pub trace_evicted: u64,
}

/// One barrier round's parameters, broadcast to every worker.
#[derive(Debug, Clone, Copy)]
struct Job {
    gm: SimTime,
    horizon: SimTime,
    limit: SimTime,
}

/// A small pool of OS threads that execute domain rounds. Domains are
/// assigned statically (worker `w` owns domains `w, w+size, w+2·size,
/// …`), so which *thread* runs a domain is fixed — but since domain
/// rounds are mutually independent up to the barrier, the assignment
/// (and the pool size) has no effect on results at all.
struct WorkerPool {
    job_txs: Vec<Sender<Job>>,
    done_rx: Receiver<Result<(), String>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    fn new(shared: &Arc<Shared>, size: usize) -> WorkerPool {
        let nd = shared.ndomains();
        let (done_tx, done_rx) = unbounded::<Result<(), String>>();
        let mut job_txs = Vec::with_capacity(size);
        let mut handles = Vec::with_capacity(size);
        for w in 0..size {
            let (tx, rx) = unbounded::<Job>();
            job_txs.push(tx);
            let shared = Arc::clone(shared);
            let done = done_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("simnet-worker-{w}"))
                .spawn(move || {
                    // Worker-side folds (scopes opened inside event
                    // dispatch) land in this simulation's registry.
                    obs::set_ambient_profiler(Some(Arc::clone(&shared.obs)));
                    while let Ok(job) = rx.recv() {
                        let r = panic::catch_unwind(AssertUnwindSafe(|| {
                            for d in (w..nd).step_by(size) {
                                obs::set_ambient_lane(d);
                                shared.domain_round(d, job.gm, job.horizon, job.limit);
                            }
                        }));
                        let ack = r.map_err(|p| panic_message(p.as_ref()));
                        if done.send(ack).is_err() {
                            return;
                        }
                    }
                })
                .expect("failed to spawn simnet worker thread");
            handles.push(handle);
        }
        WorkerPool {
            job_txs,
            done_rx,
            handles,
        }
    }

    fn size(&self) -> usize {
        self.job_txs.len()
    }

    /// Broadcasts one round and blocks until every worker acks. All
    /// acks are collected before any panic propagates, so a worker
    /// failure can never leave a peer running into the next round.
    fn run_round(&self, job: Job) {
        for tx in &self.job_txs {
            tx.send(job).expect("simnet worker gone");
        }
        let mut first_err: Option<String> = None;
        for _ in 0..self.job_txs.len() {
            match self.done_rx.recv().expect("simnet worker gone") {
                Ok(()) => {}
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        if let Some(e) = first_err {
            panic!("simnet worker panicked: {e}");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.job_txs.clear(); // closes the channels; workers exit
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// A deterministic discrete-event simulation.
///
/// # Examples
///
/// Ping-pong between two nodes:
///
/// ```
/// use simnet::{Simulation, NetworkConfig, NodeId, PortId};
/// use bytes::Bytes;
///
/// let mut sim = Simulation::new(NetworkConfig::lan(), 1);
/// let server = sim.spawn_at("server", NodeId(0), PortId(10), |ctx| {
///     while let Ok(msg) = ctx.recv() {
///         ctx.send(msg.src, msg.payload); // echo
///     }
/// });
/// sim.spawn("client", NodeId(1), move |ctx| {
///     ctx.send(server, Bytes::from_static(b"ping"));
///     let reply = ctx.recv().expect("reply");
///     assert_eq!(&reply.payload[..], b"ping");
/// });
/// let report = sim.run();
/// assert_eq!(report.metrics.msgs_delivered, 2);
/// ```
pub struct Simulation {
    shared: Arc<Shared>,
    /// Requested worker-thread count; the pool actually built is capped
    /// at the domain count. Never affects results, only wall-clock.
    threads: usize,
    workers: Option<WorkerPool>,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.shared.max_now())
            .field("domains", &self.shared.ndomains())
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

fn build_domains(n: usize, seed: u64) -> Box<[Mutex<DomainState>]> {
    (0..n)
        .map(|d| Mutex::new(DomainState::new(d, seed)))
        .collect()
}

fn build_outboxes(n: usize) -> Box<[Mutex<Vec<OutboundEv>>]> {
    (0..n).map(|_| Mutex::new(Vec::new())).collect()
}

fn build_series(n: usize) -> Box<[DomainSeries]> {
    (0..n).map(|d| DomainSeries::new(d, n)).collect()
}

impl Simulation {
    /// Creates a simulation with the given network model and RNG seed.
    /// One domain, one thread: the classic sequential scheduler.
    pub fn new(config: NetworkConfig, seed: u64) -> Simulation {
        Simulation {
            shared: Arc::new(Shared {
                domains: build_domains(1, seed),
                outboxes: build_outboxes(1),
                series: build_series(1),
                round_lookahead_ns: AtomicU64::new(u64::MAX),
                registry: Mutex::new(Registry {
                    procs: HashMap::new(),
                    endpoints: HashMap::new(),
                    stripes: 1,
                    next_proc: vec![0],
                    next_ephemeral: HashMap::new(),
                }),
                network: RwLock::new(Network::new(config)),
                metrics: Arc::new(Metrics::new()),
                obs: Arc::new(obs::MetricsRegistry::new()),
                seed,
            }),
            threads: 1,
            workers: None,
        }
    }

    /// Partitions the simulation into `n` scheduling domains: node `i`'s
    /// processes and events belong to domain `i % n`. For a fixed seed
    /// and topology the results are **identical for every domain count
    /// observable by the simulation** — except the documented
    /// multi-domain approximations (cross-domain spawn/kill land one
    /// lookahead later; `processes_peak` becomes a deterministic upper
    /// bound) — and identical across *thread* counts always.
    ///
    /// Call before enabling tracing or spawning any process.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or a process has already been spawned.
    #[must_use]
    pub fn with_domains(mut self, n: usize) -> Simulation {
        assert!(n > 0, "domain count must be at least 1");
        let seed = self.shared.seed;
        let shared = Arc::get_mut(&mut self.shared)
            .expect("set the domain count before spawning any process");
        shared.domains = build_domains(n, seed);
        shared.outboxes = build_outboxes(n);
        shared.series = build_series(n);
        shared
            .round_lookahead_ns
            .store(if n == 1 { u64::MAX } else { 0 }, Ordering::Relaxed);
        {
            let mut reg = shared.registry.lock();
            assert!(reg.procs.is_empty(), "set the domain count before spawning");
            reg.stripes = n as u32;
            reg.next_proc = vec![0; n];
            reg.next_ephemeral.clear();
        }
        Arc::get_mut(&mut shared.obs)
            .expect("set the domain count before sharing the obs registry")
            .set_writer_lanes(n);
        self
    }

    /// Sets the worker-thread count used to execute domain rounds.
    /// Purely a wall-clock knob: any value produces bit-identical
    /// results (the determinism tests run the same seed at 1, 2 and 4
    /// threads and compare bytes). Capped at the domain count.
    #[must_use]
    pub fn with_threads(mut self, n: usize) -> Simulation {
        self.threads = n.max(1);
        self
    }

    /// The number of scheduling domains.
    pub fn domains(&self) -> usize {
        self.shared.ndomains()
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Replaces the observability registry with one using an explicit
    /// shard layout (see [`obs::MetricsRegistry::with_layout`]). The
    /// layout affects lock contention only — for a fixed seed the
    /// resulting [`obs::RunReport`] is byte-identical for any layout,
    /// which the merge-determinism tests pin down.
    ///
    /// # Panics
    ///
    /// Panics if called after a process has been spawned (the registry
    /// is already shared at that point).
    #[must_use]
    pub fn with_obs_layout(mut self, span_shards: usize, stat_stripes: usize) -> Simulation {
        let lanes = self.shared.ndomains();
        let shared =
            Arc::get_mut(&mut self.shared).expect("set the obs layout before spawning any process");
        let mut reg = obs::MetricsRegistry::with_layout(span_shards, stat_stripes);
        reg.set_writer_lanes(lanes);
        shared.obs = Arc::new(reg);
        self
    }

    /// Current simulated time (the most advanced domain clock).
    pub fn now(&self) -> SimTime {
        self.shared.max_now()
    }

    /// Current network/scheduler counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// The simulation-wide observability registry (same instance every
    /// process sees through [`Ctx::obs`]).
    pub fn obs(&self) -> &obs::MetricsRegistry {
        &self.shared.obs
    }

    /// Builds the unified observability report: network counters, RPC
    /// counters, per-proxy/per-server stats, per-op latency percentiles
    /// and the span summary, as of the current simulated time.
    pub fn obs_report(&self) -> obs::RunReport {
        let mut report = self.shared.obs.report(
            self.shared.metrics.snapshot(),
            self.shared.max_now().as_nanos(),
        );
        report.trace_evicted = self.trace_evicted();
        // The simulator always knows its seed; the harness can overwrite
        // the rest of the provenance via obs().set_run_meta.
        if report.meta.seed.is_none() {
            report.meta.seed = Some(self.shared.seed);
        }
        report
    }

    /// Starts recording a timeline of up to `capacity` events *per
    /// domain* (older entries fall off). Call before spawning to
    /// capture everything.
    pub fn enable_trace(&self, capacity: usize) {
        for dom in self.shared.domains.iter() {
            dom.lock().trace = Some(Trace::new(capacity));
        }
    }

    /// Drains and returns the recorded timeline (empty if tracing was
    /// never enabled). Recording continues afterwards. Domain slices
    /// are merged by `(time, domain, record order)` — a pure function
    /// of per-domain facts, so the merged timeline is identical for
    /// every thread count. The returned [`TraceDump`] carries the count
    /// of records the bounded rings evicted, so a truncated timeline is
    /// never mistaken for a complete one; draining resets the counters.
    pub fn take_trace(&self) -> TraceDump {
        let nd = self.shared.ndomains();
        if nd == 1 {
            return self.shared.domains[0]
                .lock()
                .trace
                .as_mut()
                .map(|t| t.drain())
                .unwrap_or_default();
        }
        let mut tagged: Vec<(SimTime, usize, usize, TraceRecord)> = Vec::new();
        let mut evicted = 0;
        for (d, dom) in self.shared.domains.iter().enumerate() {
            let dump = match dom.lock().trace.as_mut() {
                Some(t) => t.drain(),
                None => continue,
            };
            evicted += dump.evicted;
            for (idx, rec) in dump.records.into_iter().enumerate() {
                tagged.push((rec.at, d, idx, rec));
            }
        }
        tagged.sort_by_key(|a| (a.0, a.1, a.2));
        TraceDump {
            records: tagged.into_iter().map(|(_, _, _, r)| r).collect(),
            evicted,
        }
    }

    /// Records evicted from the trace rings since tracing was enabled
    /// (without draining). Also surfaced by [`RunReport::trace_evicted`]
    /// and reset by [`Simulation::take_trace`].
    pub fn trace_evicted(&self) -> u64 {
        self.shared
            .domains
            .iter()
            .map(|d| d.lock().trace.as_ref().map(|t| t.truncated).unwrap_or(0))
            .sum()
    }

    /// Drains the trace ring and merges it with the span records in the
    /// observability registry into one time-ordered causal trace
    /// (see [`obs::TraceSink`]). Equivalent to
    /// `causal_trace_with(obs::TraceSink::new())`.
    pub fn causal_trace(&self) -> obs::CausalTrace {
        self.causal_trace_with(obs::TraceSink::new())
    }

    /// Like [`Simulation::causal_trace`], but with a caller-configured
    /// sink (capacity, every-Nth-span sampling). Ring evictions that
    /// happened before the drain are carried into the sink's counter.
    pub fn causal_trace_with(&self, mut sink: obs::TraceSink) -> obs::CausalTrace {
        let dump = self.take_trace();
        sink.note_upstream_evicted(dump.evicted);
        for record in &dump {
            if let Some(e) = record.to_net_event() {
                sink.push_net(e);
            }
        }
        self.shared
            .obs
            .for_each_span(|span| sink.push_span(span.clone()));
        sink.build()
    }

    /// Exclusive access to the network model (between runs or before one).
    pub fn net(&self) -> RwLockWriteGuard<'_, Network> {
        self.shared.network.write()
    }

    /// Spawns a process on `node` with an ephemeral port.
    pub fn spawn<F>(&self, name: impl Into<String>, node: NodeId, body: F) -> Endpoint
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        self.shared
            .spawn_proc(None, name.into(), node, None, Box::new(body))
    }

    /// Spawns a process listening on a well-known port.
    ///
    /// # Panics
    ///
    /// Panics if the port is already bound on that node or is in the
    /// ephemeral range.
    pub fn spawn_at<F>(
        &self,
        name: impl Into<String>,
        node: NodeId,
        port: PortId,
        body: F,
    ) -> Endpoint
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        self.shared
            .spawn_proc(None, name.into(), node, Some(port), Box::new(body))
    }

    /// Spawns a poll-driven process on `node` with an ephemeral port.
    /// The scheduler polls it whenever a message is delivered to it or a
    /// timer it armed with [`ProcCx::wake_at`] fires; it parks by
    /// returning [`Poll::Pending`] and costs no thread while parked.
    /// See the [`poll`](crate::poll) module for the full model.
    pub fn spawn_poll<P>(&self, name: impl Into<String>, node: NodeId, process: P) -> Endpoint
    where
        P: Process,
    {
        self.shared
            .spawn_polled(None, name.into(), node, None, Box::new(process))
    }

    /// Spawns a poll-driven process listening on a well-known port.
    ///
    /// # Panics
    ///
    /// Panics if the port is already bound on that node or is in the
    /// ephemeral range.
    pub fn spawn_poll_at<P>(
        &self,
        name: impl Into<String>,
        node: NodeId,
        port: PortId,
        process: P,
    ) -> Endpoint
    where
        P: Process,
    {
        self.shared
            .spawn_polled(None, name.into(), node, Some(port), Box::new(process))
    }

    /// Runs the simulation until no events remain, then shuts all
    /// processes down and joins their threads.
    ///
    /// # Panics
    ///
    /// Panics if any simulated process panicked, propagating its message.
    pub fn run(&mut self) -> RunReport {
        let report = self.run_until(SimTime::MAX);
        self.shared.shutdown();
        self.shared.check_panics();
        report
    }

    /// Runs until the event queues are empty or virtual time would
    /// exceed `limit`. Processes stay alive; call again to continue, or
    /// call [`Simulation::run`] to finish.
    ///
    /// Folds one barrier round's wall time into the profiler: the
    /// `sched;round` pick/exec/merge phase frames (consecutive clock
    /// reads on the driving thread, so the phases tile the round wall
    /// time *exactly*), each domain's busy/stall split of the exec
    /// phase, and — when the flight recorder is also on — the
    /// per-domain utilization gauges plus the cross-domain imbalance
    /// figure. Frame call counts (1 per round per frame) and the
    /// imbalance series are deterministic; every `wall_ns` is
    /// host-dependent and reported-not-judged.
    fn profile_round(&self, gm: SimTime, t0: Instant, t1: Instant, t2: Instant) {
        let t3 = Instant::now();
        let obs = &self.shared.obs;
        obs.profile_add("sched;round", 1, (t3 - t0).as_nanos() as u64);
        obs.profile_add("sched;round;pick", 1, (t1 - t0).as_nanos() as u64);
        let exec_ns = (t2 - t1).as_nanos() as u64;
        obs.profile_add("sched;round;exec", 1, exec_ns);
        obs.profile_add("sched;round;merge", 1, (t3 - t2).as_nanos() as u64);
        let ts = obs.timeseries_enabled();
        let gm_ns = gm.as_nanos();
        let nd = self.shared.ndomains();
        let mut max_run = 0u64;
        let mut sum_run = 0u64;
        for (d, dom) in self.shared.domains.iter().enumerate() {
            let (busy, run) = {
                let st = dom.lock();
                (st.round_busy_ns, st.round_events_run)
            };
            // The domain's own clock reads bracket a subset of the exec
            // phase, so clamp before splitting: busy is what the domain
            // measured running events, stall is the rest of the phase
            // (barrier wait + not being scheduled).
            let busy = busy.min(exec_ns);
            let series = &self.shared.series[d];
            obs.profile_add(&series.busy_frame, 1, busy);
            obs.profile_add(&series.stall_frame, 1, exec_ns - busy);
            if ts && exec_ns > 0 {
                obs.ts_gauge(gm_ns, &series.busy_frac, busy * 1000 / exec_ns);
                obs.ts_gauge(gm_ns, &series.stall_frac, (exec_ns - busy) * 1000 / exec_ns);
            }
            max_run = max_run.max(run);
            sum_run += run;
        }
        if ts && nd > 1 && sum_run > 0 {
            // Cross-domain imbalance: the busiest domain's share of the
            // round's events relative to a perfectly level split, in
            // per-mille (1000 = balanced). Event counts only, so the
            // series is byte-identical across thread counts.
            let imb = max_run.saturating_mul(1000).saturating_mul(nd as u64) / sum_run;
            obs.ts_gauge(gm_ns, "sched_imbalance_permille", imb);
        }
    }

    /// Execution proceeds in barrier rounds: compute the global minimum
    /// event time, let every domain run up to the conservative lookahead
    /// horizon, then merge cross-domain outboxes. With one domain a
    /// single round drains everything — the classic sequential loop.
    ///
    /// # Panics
    ///
    /// Panics if any simulated process panicked.
    pub fn run_until(&mut self, limit: SimTime) -> RunReport {
        let nd = self.shared.ndomains();
        let nw = self.threads.min(nd);
        if nw > 1 && self.workers.as_ref().map(|p| p.size()) != Some(nw) {
            self.workers = Some(WorkerPool::new(&self.shared, nw));
        }
        // The driving thread folds the scheduler's round-phase frames
        // into this simulation's registry (writer lane 0).
        obs::set_ambient_profiler(Some(Arc::clone(&self.shared.obs)));
        let profiling = self.shared.obs.profile_enabled();
        let mut beyond_limit = false;
        loop {
            // Phase brackets: consecutive Instants, so pick + exec +
            // merge telescope to the round wall time *exactly* — the
            // conservation E20 asserts holds by construction.
            let t_round = profiling.then(Instant::now);
            // Round setup runs alone on the driving thread: reset the
            // per-round spawn ledgers and find the global minimum.
            let mut gm: Option<SimTime> = None;
            for dom in self.shared.domains.iter() {
                let mut st = dom.lock();
                st.round_delta = 0;
                st.round_rise = 0;
                if let Some(ev) = st.events.peek() {
                    gm = Some(match gm {
                        Some(g) => g.min(ev.key.time),
                        None => ev.key.time,
                    });
                }
            }
            let Some(gm) = gm else { break };
            if gm > limit {
                beyond_limit = true;
                break;
            }
            let la = self.shared.round_lookahead();
            self.shared.round_lookahead_ns.store(la, Ordering::Relaxed);
            let horizon = SimTime::from_nanos(gm.as_nanos().saturating_add(la));
            let live_start = self.shared.metrics.live();
            let job = Job { gm, horizon, limit };
            let t_pick = profiling.then(Instant::now);
            if nw > 1 {
                self.workers
                    .as_ref()
                    .expect("pool built above")
                    .run_round(job);
            } else {
                for d in 0..nd {
                    if nd > 1 {
                        obs::set_ambient_lane(d);
                    }
                    self.shared.domain_round(d, gm, horizon, limit);
                }
                if nd > 1 {
                    obs::set_ambient_lane(0);
                }
            }
            let t_exec = profiling.then(Instant::now);
            self.shared.flush_outboxes();
            if nd > 1 {
                self.shared.finish_round(live_start, gm);
            }
            if let (Some(t0), Some(t1), Some(t2)) = (t_round, t_pick, t_exec) {
                self.profile_round(gm, t0, t1, t2);
            }
        }
        if beyond_limit {
            for dom in self.shared.domains.iter() {
                dom.lock().now = limit;
            }
        }
        self.shared.check_panics();
        let (finished, alive) = {
            let reg = self.shared.registry.lock();
            let finished = reg
                .procs
                .values()
                .filter(|p| p.state == ProcState::Finished)
                .count();
            (finished, reg.procs.len() - finished)
        };
        RunReport {
            end_time: self.shared.max_now(),
            metrics: self.shared.metrics.snapshot(),
            finished,
            alive,
            trace_evicted: self.trace_evicted(),
        }
    }
}

impl Drop for Simulation {
    fn drop(&mut self) {
        // Don't leave process threads parked forever; ignore errors since
        // we may be unwinding already.
        if !std::thread::panicking() {
            self.shared.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn single_process_runs_to_completion() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        let done = Arc::new(AtomicU64::new(0));
        let d2 = Arc::clone(&done);
        sim.spawn("worker", NodeId(0), move |ctx| {
            ctx.sleep(Duration::from_millis(5)).unwrap();
            d2.store(ctx.now().as_millis(), Ordering::SeqCst);
        });
        let report = sim.run();
        assert_eq!(done.load(Ordering::SeqCst), 5);
        assert_eq!(report.finished, 1);
        assert_eq!(report.end_time, SimTime::from_millis(5));
    }

    #[test]
    fn message_latency_matches_network_model() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        let lat = Arc::new(AtomicU64::new(0));
        let l2 = Arc::clone(&lat);
        let server = sim.spawn("server", NodeId(0), move |ctx| {
            let m = ctx.recv().unwrap();
            l2.store(m.latency().as_nanos() as u64, Ordering::SeqCst);
        });
        sim.spawn("client", NodeId(1), move |ctx| {
            ctx.send(server, Bytes::from_static(b"x"));
        });
        sim.run();
        // 500us remote + 1ns/byte * 1 byte
        assert_eq!(lat.load(Ordering::SeqCst), 500_001);
    }

    #[test]
    fn recv_timeout_fires_without_message() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        let got = Arc::new(AtomicU64::new(99));
        let g = Arc::clone(&got);
        sim.spawn("waiter", NodeId(0), move |ctx| {
            let r = ctx.recv_timeout(Duration::from_millis(3)).unwrap();
            assert!(r.is_none());
            g.store(ctx.now().as_millis(), Ordering::SeqCst);
        });
        sim.run();
        assert_eq!(got.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn recv_timeout_cancelled_by_delivery() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        let got = Arc::new(AtomicU64::new(0));
        let g = Arc::clone(&got);
        let waiter = sim.spawn("waiter", NodeId(0), move |ctx| {
            let r = ctx.recv_timeout(Duration::from_millis(100)).unwrap();
            assert!(r.is_some());
            g.store(1, Ordering::SeqCst);
            // The stale timeout event must not corrupt a later recv.
            let r2 = ctx.recv_timeout(Duration::from_millis(500)).unwrap();
            assert!(r2.is_none());
            g.store(2, Ordering::SeqCst);
        });
        sim.spawn("sender", NodeId(1), move |ctx| {
            ctx.send(waiter, Bytes::from_static(b"hi"));
        });
        sim.run();
        assert_eq!(got.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run_once(seed: u64) -> (u64, u64) {
            let mut sim =
                Simulation::new(NetworkConfig::lan().with_jitter(0.3).with_loss(0.1), seed);
            let server = sim.spawn_at("server", NodeId(0), PortId(1), |ctx| {
                while let Ok(m) = ctx.recv() {
                    ctx.send(m.src, m.payload);
                }
            });
            for i in 0..5u32 {
                sim.spawn(format!("client{i}"), NodeId(1 + i), move |ctx| {
                    for _ in 0..20 {
                        ctx.send(server, Bytes::from_static(b"req"));
                        if ctx.recv_timeout(Duration::from_millis(5)).is_err() {
                            return;
                        }
                    }
                });
            }
            let r = sim.run();
            (r.end_time.as_nanos(), r.metrics.msgs_delivered)
        }
        let a = run_once(7);
        let b = run_once(7);
        let c = run_once(8);
        assert_eq!(a, b, "same seed must reproduce exactly");
        // Different seed almost surely differs under 10% loss + jitter.
        assert_ne!(a, c, "different seed should perturb the run");
    }

    #[test]
    fn spawn_from_within_process() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        sim.spawn("parent", NodeId(0), move |ctx| {
            let c2 = Arc::clone(&c);
            let child = ctx.spawn("child", NodeId(1), move |cctx| {
                let m = cctx.recv().unwrap();
                assert_eq!(&m.payload[..], b"work");
                c2.fetch_add(1, Ordering::SeqCst);
            });
            ctx.send(child, Bytes::from_static(b"work"));
        });
        sim.run();
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn extra_port_demultiplexes_by_dst() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        let hits = Arc::new(Mutex::new(Vec::new()));
        let h = Arc::clone(&hits);
        let main = sim.spawn_at("multi", NodeId(0), PortId(5), move |ctx| {
            let cb = ctx.bind_port(PortId(6));
            for _ in 0..2 {
                let m = ctx.recv().unwrap();
                h.lock().push(m.dst == cb);
            }
        });
        sim.spawn("sender", NodeId(1), move |ctx| {
            ctx.send(main, Bytes::from_static(b"a"));
            ctx.send(
                Endpoint::new(NodeId(0), PortId(6)),
                Bytes::from_static(b"b"),
            );
        });
        sim.run();
        let v = hits.lock().clone();
        assert_eq!(v, vec![false, true]);
    }

    #[test]
    fn unbound_endpoint_blackholes() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        sim.spawn("sender", NodeId(0), |ctx| {
            ctx.send(
                Endpoint::new(NodeId(5), PortId(99)),
                Bytes::from_static(b"void"),
            );
        });
        let r = sim.run();
        assert_eq!(r.metrics.msgs_blackholed, 1);
        assert_eq!(r.metrics.msgs_delivered, 0);
    }

    #[test]
    fn run_until_pauses_and_resumes() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        let stage = Arc::new(AtomicU64::new(0));
        let s = Arc::clone(&stage);
        sim.spawn("slow", NodeId(0), move |ctx| {
            ctx.sleep(Duration::from_millis(10)).unwrap();
            s.store(1, Ordering::SeqCst);
            ctx.sleep(Duration::from_millis(10)).unwrap();
            s.store(2, Ordering::SeqCst);
        });
        sim.run_until(SimTime::from_millis(15));
        assert_eq!(stage.load(Ordering::SeqCst), 1);
        assert_eq!(sim.now(), SimTime::from_millis(15));
        sim.run();
        assert_eq!(stage.load(Ordering::SeqCst), 2);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn process_panic_propagates() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        sim.spawn("bad", NodeId(0), |_ctx| panic!("boom"));
        sim.run();
    }

    #[test]
    fn shutdown_unblocks_servers() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        // A server that would otherwise block forever.
        sim.spawn("server", NodeId(0), |ctx| while ctx.recv().is_ok() {});
        let report = sim.run();
        assert_eq!(report.end_time, SimTime::ZERO);
        // run() returned: the blocked server was shut down cleanly.
    }

    #[test]
    fn partition_then_heal_mid_run() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        let delivered = Arc::new(AtomicU64::new(0));
        let d = Arc::clone(&delivered);
        let server = sim.spawn_at("server", NodeId(0), PortId(1), move |ctx| {
            while ctx.recv().is_ok() {
                d.fetch_add(1, Ordering::SeqCst);
            }
        });
        sim.spawn("client", NodeId(1), move |ctx| {
            ctx.net().partition(NodeId(0), NodeId(1));
            ctx.send(server, Bytes::from_static(b"lost"));
            ctx.sleep(Duration::from_millis(1)).unwrap();
            ctx.net().heal(NodeId(0), NodeId(1));
            ctx.send(server, Bytes::from_static(b"ok"));
        });
        let r = sim.run();
        assert_eq!(delivered.load(Ordering::SeqCst), 1);
        assert_eq!(r.metrics.msgs_blackholed, 1);
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        let seen = Arc::new(AtomicU64::new(0));
        let s = Arc::clone(&seen);
        let rx = sim.spawn("rx", NodeId(0), move |ctx| {
            // Nothing queued yet: must return None at time zero.
            assert!(ctx.try_recv().unwrap().is_none());
            ctx.sleep(Duration::from_millis(5)).unwrap();
            // Message delivered during the sleep is now in the mailbox.
            let m = ctx.try_recv().unwrap().expect("queued message");
            assert_eq!(&m.payload[..], b"queued");
            assert!(ctx.try_recv().unwrap().is_none());
            s.store(ctx.now().as_millis(), Ordering::SeqCst);
        });
        sim.spawn("tx", NodeId(1), move |ctx| {
            ctx.send(rx, Bytes::from_static(b"queued"));
        });
        sim.run();
        // try_recv never advanced time: process finished at its sleep end.
        assert_eq!(seen.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn kill_tears_down_and_unbinds() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        let served = Arc::new(AtomicU64::new(0));
        let s2 = Arc::clone(&served);
        let victim = sim.spawn_at("victim", NodeId(0), PortId(9), move |ctx| {
            while ctx.recv().is_ok() {
                s2.fetch_add(1, Ordering::SeqCst);
            }
        });
        sim.spawn("assassin", NodeId(1), move |ctx| {
            ctx.send(victim, Bytes::from_static(b"one"));
            ctx.sleep(Duration::from_millis(2)).unwrap();
            assert!(ctx.kill(victim), "victim should be alive");
            assert!(!ctx.kill(victim), "second kill is a no-op");
            // Messages after the kill blackhole instead of delivering.
            ctx.send(victim, Bytes::from_static(b"two"));
        });
        let report = sim.run();
        assert_eq!(served.load(Ordering::SeqCst), 1);
        assert_eq!(report.metrics.msgs_blackholed, 1);
    }

    #[test]
    fn killed_endpoint_can_be_rebound() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        let got = Arc::new(AtomicU64::new(0));
        let g2 = Arc::clone(&got);
        let victim = sim.spawn_at(
            "old",
            NodeId(0),
            PortId(9),
            |ctx| {
                while ctx.recv().is_ok() {}
            },
        );
        sim.spawn("driver", NodeId(1), move |ctx| {
            ctx.kill(victim);
            // The well-known port is free again: a replacement can bind it.
            let replacement = ctx.spawn_at("new", NodeId(0), PortId(9), move |rctx| {
                if rctx.recv().is_ok() {
                    g2.fetch_add(1, Ordering::SeqCst);
                }
            });
            ctx.send(replacement, Bytes::from_static(b"hello"));
        });
        sim.run();
        assert_eq!(got.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn messages_at_same_instant_keep_send_order() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        let order = Arc::new(Mutex::new(Vec::new()));
        let o = Arc::clone(&order);
        let server = sim.spawn("server", NodeId(0), move |ctx| {
            for _ in 0..3 {
                let m = ctx.recv().unwrap();
                o.lock().push(m.payload[0]);
            }
        });
        sim.spawn("client", NodeId(1), move |ctx| {
            for b in [1u8, 2, 3] {
                ctx.send(server, Bytes::copy_from_slice(&[b]));
            }
        });
        sim.run();
        // Identical payload sizes & no jitter: all arrive at the same
        // instant; FIFO tie-break must preserve send order.
        assert_eq!(*order.lock(), vec![1, 2, 3]);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::trace::TraceEvent;

    #[test]
    fn trace_captures_ordered_timeline() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        sim.enable_trace(1024);
        let echo = sim.spawn_at("echo", NodeId(0), PortId(7), |ctx| {
            if let Ok(m) = ctx.recv() {
                ctx.send(m.src, m.payload);
            }
        });
        sim.spawn("client", NodeId(1), move |ctx| {
            ctx.send(echo, Bytes::from_static(b"ping"));
            let _ = ctx.recv();
        });
        sim.run();
        let trace = sim.take_trace();
        let kinds: Vec<&'static str> = trace
            .iter()
            .map(|r| match r.event {
                TraceEvent::Spawned { .. } => "spawn",
                TraceEvent::Sent { .. } => "send",
                TraceEvent::Delivered { .. } => "deliver",
                TraceEvent::Finished { .. } => "finish",
                TraceEvent::Dropped { .. } => "drop",
                TraceEvent::Blackholed { .. } => "blackhole",
                TraceEvent::Killed { .. } => "kill",
                _ => "protocol",
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                "spawn", "spawn", // echo + client
                "send", "deliver", // ping
                "send", "finish", // echo replies then finishes
                "deliver", "finish", // client gets pong, finishes
            ],
            "unexpected timeline: {:#?}",
            trace.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
        // Timestamps are non-decreasing.
        assert!(trace.windows(2).all(|w| w[0].at <= w[1].at));
        // Draining leaves the buffer empty but tracing still on.
        assert!(sim.take_trace().is_empty());
    }

    #[test]
    fn trace_records_drops_and_kills() {
        let mut sim = Simulation::new(NetworkConfig::lan().with_loss(1.0), 0);
        sim.enable_trace(64);
        let sink = sim.spawn_at(
            "sink",
            NodeId(0),
            PortId(3),
            |ctx| {
                while ctx.recv().is_ok() {}
            },
        );
        sim.spawn("driver", NodeId(1), move |ctx| {
            ctx.send(sink, Bytes::from_static(b"doomed"));
            ctx.kill(sink);
        });
        sim.run();
        let trace = sim.take_trace();
        assert!(trace
            .iter()
            .any(|r| matches!(r.event, TraceEvent::Dropped { .. })));
        assert!(trace
            .iter()
            .any(|r| matches!(r.event, TraceEvent::Killed { .. })));
    }

    #[test]
    fn disabled_trace_costs_nothing_and_returns_empty() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        sim.spawn("p", NodeId(0), |_ctx| {});
        sim.run();
        assert!(sim.take_trace().is_empty());
    }
}

#[cfg(test)]
mod domain_tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

    /// A closed-loop echo workload spread over 8 nodes, run to
    /// completion. Returns everything an outside observer can see.
    fn run_workload(domains: usize, threads: usize, seed: u64) -> (String, String, u64, u64) {
        let mut sim = Simulation::new(NetworkConfig::lan().with_jitter(0.2).with_loss(0.05), seed)
            .with_domains(domains)
            .with_threads(threads);
        sim.enable_trace(65536);
        let mut servers = Vec::new();
        for n in 0..4u32 {
            servers.push(
                sim.spawn_at(format!("server{n}"), NodeId(n), PortId(1), |ctx| {
                    while let Ok(m) = ctx.recv() {
                        ctx.send(m.src, m.payload);
                    }
                }),
            );
        }
        for c in 0..8u32 {
            let server = servers[(c % 4) as usize];
            sim.spawn(format!("client{c}"), NodeId(4 + c), move |ctx| {
                for _ in 0..10 {
                    ctx.send(server, Bytes::from_static(b"req"));
                    if ctx.recv_timeout(Duration::from_millis(5)).is_err() {
                        return;
                    }
                }
            });
        }
        let report = sim.run_until(SimTime::from_millis(40));
        let trace: String = sim.take_trace().iter().map(|r| format!("{r}\n")).collect();
        let summary = format!(
            "end={} sent={} delivered={} dropped={} events={} finished={} alive={}",
            report.end_time.as_nanos(),
            report.metrics.msgs_sent,
            report.metrics.msgs_delivered,
            report.metrics.msgs_dropped,
            report.metrics.events_dispatched,
            report.finished,
            report.alive
        );
        (
            summary,
            trace,
            report.metrics.processes_peak,
            report.metrics.sched_time_inversions,
        )
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let base = run_workload(4, 1, 42);
        for threads in [2, 4] {
            let other = run_workload(4, threads, 42);
            assert_eq!(base.0, other.0, "summary differs at {threads} threads");
            assert_eq!(base.1, other.1, "trace differs at {threads} threads");
            assert_eq!(base.2, other.2, "peak differs at {threads} threads");
        }
        assert_eq!(base.3, 0, "no time inversions in an undisturbed run");
    }

    #[test]
    fn single_domain_ignores_thread_count() {
        let a = run_workload(1, 1, 7);
        let b = run_workload(1, 4, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn cross_domain_spawn_and_kill_are_deterministic() {
        fn run_once(threads: usize) -> (String, u64) {
            let mut sim = Simulation::new(NetworkConfig::lan(), 9)
                .with_domains(3)
                .with_threads(threads);
            sim.enable_trace(4096);
            let spawned = Arc::new(AtomicU64::new(0));
            let s = Arc::clone(&spawned);
            // driver on node 0 (domain 0) spawns a child on node 1
            // (domain 1), then kills a victim on node 2 (domain 2).
            let victim = sim.spawn_at(
                "victim",
                NodeId(2),
                PortId(9),
                |ctx| {
                    while ctx.recv().is_ok() {}
                },
            );
            sim.spawn("driver", NodeId(0), move |ctx| {
                let child = ctx.spawn("child", NodeId(1), move |cctx| {
                    if cctx.recv().is_ok() {
                        s.fetch_add(1, AtomicOrdering::SeqCst);
                    }
                });
                ctx.send(child, Bytes::from_static(b"hi"));
                ctx.sleep(Duration::from_millis(1)).unwrap();
                assert!(ctx.kill(victim), "cross-domain kill is optimistic");
            });
            sim.run();
            let trace: String = sim.take_trace().iter().map(|r| format!("{r}\n")).collect();
            (trace, spawned.load(AtomicOrdering::SeqCst))
        }
        let a = run_once(1);
        let b = run_once(3);
        assert_eq!(a, b, "cross-domain spawn/kill must not depend on threads");
        assert_eq!(a.1, 1, "child must receive the driver's message");
    }

    #[test]
    fn striped_ids_are_unique_across_domains() {
        let sim = Simulation::new(NetworkConfig::lan(), 0).with_domains(4);
        let mut eps = std::collections::HashSet::new();
        for n in 0..12u32 {
            // Spawned from the driving thread: stripe = target domain.
            let ep = sim.spawn(format!("p{n}"), NodeId(n), |ctx| {
                // Spawn a sibling on a *different* node from in here, so
                // in-round cross-domain allocation paths get exercised.
                if ctx.node().0 < 4 {
                    let peer = NodeId(ctx.node().0 + 20);
                    ctx.spawn("peer", peer, |_| {});
                }
            });
            assert!(eps.insert(ep), "duplicate endpoint {ep}");
        }
        let mut sim = sim;
        let report = sim.run();
        assert_eq!(report.alive, 0);
        assert_eq!(report.finished, 16, "12 parents + 4 in-round children");
    }

    #[test]
    fn run_until_resumes_identically_across_threads() {
        fn staged(threads: usize) -> (u64, u64, String) {
            let mut sim = Simulation::new(NetworkConfig::lan(), 5)
                .with_domains(2)
                .with_threads(threads);
            sim.enable_trace(4096);
            let server = sim.spawn_at("server", NodeId(0), PortId(1), |ctx| {
                while let Ok(m) = ctx.recv() {
                    ctx.send(m.src, m.payload);
                }
            });
            sim.spawn("client", NodeId(1), move |ctx| {
                for _ in 0..5 {
                    ctx.send(server, Bytes::from_static(b"x"));
                    if ctx.recv_timeout(Duration::from_millis(4)).is_err() {
                        return;
                    }
                }
            });
            let mid = sim.run_until(SimTime::from_millis(2));
            let fin = sim.run_until(SimTime::MAX);
            let trace: String = sim.take_trace().iter().map(|r| format!("{r}\n")).collect();
            (
                mid.metrics.events_dispatched,
                fin.metrics.msgs_delivered,
                trace,
            )
        }
        assert_eq!(staged(1), staged(2));
    }
}
