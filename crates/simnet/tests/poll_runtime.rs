//! Integration tests for the poll-driven process runtime: wake-after-
//! block, lost-wakeup freedom, determinism, timer staleness, teardown
//! and the process-table gauges.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;
use simnet::{NetworkConfig, NodeId, Poll, PortId, ProcCx, SimTime, Simulation};

#[test]
fn timer_wake_after_park() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 0);
    let times = Arc::new(Mutex::new(Vec::new()));
    let t = Arc::clone(&times);
    sim.spawn_poll("ticker", NodeId(0), move |cx: &mut ProcCx| {
        t.lock().push(cx.now().as_millis());
        if t.lock().len() == 3 {
            return Poll::Ready(());
        }
        cx.wake_after(Duration::from_millis(10));
        Poll::Pending
    });
    let report = sim.run();
    assert_eq!(*times.lock(), vec![0, 10, 20]);
    assert_eq!(report.finished, 1);
    assert_eq!(report.end_time, SimTime::from_millis(20));
}

#[test]
fn delivery_wakes_parked_process() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 0);
    let got = Arc::new(AtomicU64::new(0));
    let g = Arc::clone(&got);
    let rx = sim.spawn_poll("rx", NodeId(0), move |cx: &mut ProcCx| {
        match cx.try_recv().unwrap() {
            Some(m) => {
                g.store(m.payload.len() as u64, Ordering::SeqCst);
                Poll::Ready(())
            }
            // Park with no timer: only a delivery can wake us.
            None => Poll::Pending,
        }
    });
    sim.spawn("tx", NodeId(1), move |ctx| {
        ctx.sleep(Duration::from_millis(5)).unwrap();
        ctx.send(rx, Bytes::from_static(b"wake"));
    });
    let report = sim.run();
    assert_eq!(got.load(Ordering::SeqCst), 4);
    assert_eq!(report.finished, 2);
}

#[test]
fn no_lost_wakeups_on_racing_completions() {
    // Two messages delivered at the same instant: the first poll may
    // drain both or only one, but every delivery schedules a poll, so
    // none can be missed even though the process parks in between.
    let mut sim = Simulation::new(NetworkConfig::lan(), 0);
    let seen = Arc::new(AtomicU64::new(0));
    let polls = Arc::new(AtomicU64::new(0));
    let (s, p) = (Arc::clone(&seen), Arc::clone(&polls));
    let rx = sim.spawn_poll("rx", NodeId(0), move |cx: &mut ProcCx| {
        p.fetch_add(1, Ordering::SeqCst);
        // Deliberately consume at most ONE message per poll, parking
        // with the second still queued — the pending delivery event
        // must poll us again rather than leaving us parked forever.
        if cx.try_recv().unwrap().is_some() && s.fetch_add(1, Ordering::SeqCst) + 1 == 2 {
            return Poll::Ready(());
        }
        Poll::Pending
    });
    // Same node, same payload size, no jitter: both messages land at
    // the same virtual instant.
    sim.spawn("tx", NodeId(1), move |ctx| {
        ctx.send(rx, Bytes::from_static(b"a"));
        ctx.send(rx, Bytes::from_static(b"b"));
    });
    let report = sim.run();
    assert_eq!(seen.load(Ordering::SeqCst), 2);
    assert_eq!(report.finished, 2);
    assert!(polls.load(Ordering::SeqCst) >= 2);
}

#[test]
fn deterministic_ready_order_under_fixed_seed() {
    // N polled clients hammer one polled echo server through a lossy,
    // jittery network; the full interleaving must reproduce bit-for-bit
    // for the same seed and differ for another.
    fn run_once(seed: u64) -> (u64, u64, Vec<u32>) {
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Simulation::new(NetworkConfig::lan().with_jitter(0.3).with_loss(0.05), seed);
        let server = sim.spawn_poll_at("server", NodeId(0), PortId(1), |cx: &mut ProcCx| {
            while let Some(m) = cx.try_recv().unwrap() {
                cx.send(m.src, m.payload);
            }
            Poll::Pending
        });
        for i in 0..8u32 {
            let o = Arc::clone(&order);
            let mut sent = 0u32;
            let mut got = 0u32;
            sim.spawn_poll(
                format!("client{i}"),
                NodeId(1 + i),
                move |cx: &mut ProcCx| {
                    o.lock().push(i);
                    while cx.try_recv().unwrap().is_some() {
                        got += 1;
                        if got == 5 {
                            return Poll::Ready(());
                        }
                    }
                    if sent < 20 {
                        sent += 1;
                        cx.send(server, Bytes::from_static(b"req"));
                        cx.wake_after(Duration::from_millis(2));
                    }
                    Poll::Pending
                },
            );
        }
        let r = sim.run_until(SimTime::from_millis(500));
        let polled_order = order.lock().clone();
        (
            r.metrics.msgs_delivered,
            r.metrics.msgs_dropped,
            polled_order,
        )
    }
    let a = run_once(42);
    let b = run_once(42);
    let c = run_once(43);
    assert_eq!(a, b, "same seed must reproduce the exact poll order");
    assert_ne!(a.2, c.2, "different seed should perturb the poll order");
}

#[test]
fn stale_timer_does_not_fire_after_repark() {
    // Park with a long timer, get woken by a message and re-park with no
    // timer: the original timer is stale (older generation) and must not
    // poll the process again.
    let mut sim = Simulation::new(NetworkConfig::lan(), 0);
    let polls_after_msg = Arc::new(AtomicU64::new(0));
    let p = Arc::clone(&polls_after_msg);
    let mut got_msg = false;
    let rx = sim.spawn_poll("rx", NodeId(0), move |cx: &mut ProcCx| {
        if got_msg {
            // Only shutdown's final poll may land here.
            p.fetch_add(1, Ordering::SeqCst);
            assert!(cx.is_stopped(), "stale timer polled a re-parked process");
            return Poll::Ready(());
        }
        if cx.try_recv().unwrap().is_some() {
            got_msg = true;
            return Poll::Pending; // re-park, no timer
        }
        cx.wake_at(cx.now() + Duration::from_millis(50));
        Poll::Pending
    });
    sim.spawn("tx", NodeId(1), move |ctx| {
        ctx.send(rx, Bytes::from_static(b"hi"));
    });
    let report = sim.run();
    // The stale 50ms timer fired as an event but was discarded; the
    // process saw exactly one poll after its message (the shutdown one).
    assert_eq!(polls_after_msg.load(Ordering::SeqCst), 1);
    // The report snapshots before shutdown: rx was still parked then.
    assert_eq!(report.finished, 1);
    assert_eq!(report.alive, 1);
}

#[test]
fn yield_now_reschedules_after_current_instant() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 0);
    let hops = Arc::new(AtomicU64::new(0));
    let h = Arc::clone(&hops);
    sim.spawn_poll("yielder", NodeId(0), move |cx: &mut ProcCx| {
        if h.fetch_add(1, Ordering::SeqCst) + 1 == 5 {
            return Poll::Ready(());
        }
        assert_eq!(cx.now(), SimTime::ZERO, "yield must not advance time");
        cx.yield_now();
        Poll::Pending
    });
    let report = sim.run();
    assert_eq!(hops.load(Ordering::SeqCst), 5);
    assert_eq!(report.end_time, SimTime::ZERO);
}

#[test]
#[should_panic(expected = "blocking Ctx operation")]
fn blocking_recv_panics_in_poll_mode() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 0);
    sim.spawn_poll("bad", NodeId(0), |cx: &mut ProcCx| {
        let _ = cx.ctx().recv();
        Poll::Ready(())
    });
    sim.run();
}

#[test]
#[should_panic(expected = "machine exploded")]
fn polled_panic_propagates() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 0);
    sim.spawn_poll("bad", NodeId(0), |_cx: &mut ProcCx| -> Poll<()> {
        panic!("machine exploded")
    });
    sim.run();
}

#[test]
fn kill_drops_parked_machine_and_unbinds() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 0);
    let served = Arc::new(AtomicU64::new(0));
    let s = Arc::clone(&served);
    let victim = sim.spawn_poll_at("victim", NodeId(0), PortId(9), move |cx: &mut ProcCx| {
        while cx.try_recv().unwrap().is_some() {
            s.fetch_add(1, Ordering::SeqCst);
        }
        Poll::Pending
    });
    sim.spawn("assassin", NodeId(1), move |ctx| {
        ctx.send(victim, Bytes::from_static(b"one"));
        ctx.sleep(Duration::from_millis(2)).unwrap();
        assert!(ctx.kill(victim), "victim should be alive");
        assert!(!ctx.kill(victim), "second kill is a no-op");
        ctx.send(victim, Bytes::from_static(b"two"));
    });
    let report = sim.run();
    assert_eq!(served.load(Ordering::SeqCst), 1);
    assert_eq!(report.metrics.msgs_blackholed, 1);
}

#[test]
fn polled_process_can_spawn_children() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 0);
    let done = Arc::new(AtomicU64::new(0));
    let d = Arc::clone(&done);
    let mut spawned = false;
    sim.spawn_poll("parent", NodeId(0), move |cx: &mut ProcCx| {
        if !spawned {
            spawned = true;
            let d2 = Arc::clone(&d);
            // A polled parent can spawn both kinds of child mid-poll.
            let child = cx.spawn_poll("pchild", NodeId(1), move |ccx: &mut ProcCx| {
                match ccx.try_recv().unwrap() {
                    Some(_) => {
                        d2.fetch_add(1, Ordering::SeqCst);
                        Poll::Ready(())
                    }
                    None => Poll::Pending,
                }
            });
            cx.send(child, Bytes::from_static(b"work"));
            return Poll::Pending;
        }
        Poll::Ready(())
    });
    sim.run();
    assert_eq!(done.load(Ordering::SeqCst), 1);
}

#[test]
fn process_gauges_track_spawn_and_peak() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 0);
    for i in 0..10u32 {
        sim.spawn_poll(format!("p{i}"), NodeId(0), |_cx: &mut ProcCx| {
            Poll::Ready(())
        });
    }
    sim.spawn("t", NodeId(1), |ctx| {
        ctx.sleep(Duration::from_millis(1)).unwrap();
    });
    let report = sim.run();
    assert_eq!(report.metrics.processes_spawned, 11);
    // All 11 were spawned before any ran, so the peak saw all of them.
    assert_eq!(report.metrics.processes_peak, 11);
    assert_eq!(report.finished, 11);
}

#[test]
fn shutdown_gives_parked_machine_a_final_stopped_poll() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 0);
    let farewell = Arc::new(AtomicU64::new(0));
    let f = Arc::clone(&farewell);
    sim.spawn_poll("server", NodeId(0), move |cx: &mut ProcCx| {
        if cx.is_stopped() {
            f.fetch_add(1, Ordering::SeqCst);
            return Poll::Ready(());
        }
        Poll::Pending
    });
    let report = sim.run();
    assert_eq!(farewell.load(Ordering::SeqCst), 1);
    assert_eq!(report.end_time, SimTime::ZERO);
}

#[test]
fn threaded_and_polled_interoperate() {
    // A classic threaded echo server serving a poll-driven client: the
    // two runtimes share one network, one clock and one event order.
    let mut sim = Simulation::new(NetworkConfig::lan(), 7);
    let echo = sim.spawn_at("echo", NodeId(0), PortId(7), |ctx| {
        while let Ok(m) = ctx.recv() {
            ctx.send(m.src, m.payload);
        }
    });
    let replies = Arc::new(AtomicU64::new(0));
    let r = Arc::clone(&replies);
    let mut sent = false;
    sim.spawn_poll("client", NodeId(1), move |cx: &mut ProcCx| {
        if !sent {
            sent = true;
            cx.send(echo, Bytes::from_static(b"ping"));
            return Poll::Pending;
        }
        match cx.try_recv().unwrap() {
            Some(m) => {
                assert_eq!(&m.payload[..], b"ping");
                r.fetch_add(1, Ordering::SeqCst);
                Poll::Ready(())
            }
            None => Poll::Pending,
        }
    });
    let report = sim.run();
    assert_eq!(replies.load(Ordering::SeqCst), 1);
    assert_eq!(report.metrics.msgs_delivered, 2);
}
