//! Thread-count invariance of the sharded scheduler, proved at the
//! property level: for a fixed seed and a fixed domain count, the
//! `RunReport` JSON, the event trace, and every observable byte of the
//! run are identical whether the domains execute on 1, 2, 3 or 4
//! worker threads. Threads are a pure wall-clock knob — the
//! deterministic `(time, src_domain, seq)` merge decides every
//! ordering question before any thread gets to race.
//!
//! The workloads deliberately cover the paths where parallelism could
//! leak: lossy/jittery links (per-domain RNG draws), cross-domain
//! request/reply traffic (outbox merge), in-flight `ctx.spawn` onto
//! foreign nodes (striped pid/port allocation + `ApplySpawn`),
//! mid-run `ctx.kill` of a foreign-domain victim (`RemoteKill`), a
//! `run_until` pause and resume (round state survives re-entry), and
//! shutdown with processes still parked (deterministic teardown).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use proptest::prelude::*;
use simnet::{NetworkConfig, NodeId, PortId, SimTime, Simulation};

/// A random topology + traffic description. Everything observable must
/// be a function of this struct alone, never of the thread count.
#[derive(Debug, Clone)]
struct Workload {
    seed: u64,
    domains: usize,
    /// Echo servers (one per node, nodes 0..servers).
    servers: u8,
    /// Clients (nodes 100..100+clients), each doing `calls` echo RTTs.
    clients: u8,
    calls: u8,
    loss: f64,
    jitter: f64,
    /// Per-link latency overrides `(a, b, micros)` — these feed the
    /// conservative-lookahead bound, so shrinking one below the config
    /// default exercises the tightest horizon the scheduler allows.
    overrides: Vec<(u32, u32, u64)>,
    /// Whether a driver kills one server mid-run (cross-domain
    /// `RemoteKill`) and spawns a late child on a foreign node
    /// (cross-domain `ApplySpawn`).
    disruptor: bool,
    /// Pause point for a `run_until` + resume split, in microseconds;
    /// 0 means run to completion in one call.
    pause_us: u64,
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    (
        (any::<u64>(), 1usize..5, 1u8..4, 1u8..6, 1u8..5),
        (
            0.0f64..0.3,
            0.0f64..0.5,
            proptest::collection::vec((0u32..6, 0u32..6, 20u64..500), 0..4),
            any::<bool>(),
            prop_oneof![Just(0u64), 200u64..3000],
        ),
    )
        .prop_map(
            |(
                (seed, domains, servers, clients, calls),
                (loss, jitter, overrides, disruptor, pause_us),
            )| {
                Workload {
                    seed,
                    domains,
                    servers,
                    clients,
                    calls,
                    loss,
                    jitter,
                    overrides,
                    disruptor,
                    pause_us,
                }
            },
        )
}

/// FNV-1a over a string, for compact trace fingerprints.
fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One full run at `threads` workers. Returns every byte an outside
/// observer can see: the `RunReport` JSON, the full event trace, the
/// summary counters, and the number of echoes completed.
fn run(w: &Workload, threads: usize) -> (String, u64, String, u64) {
    let cfg = NetworkConfig::lan().with_loss(w.loss).with_jitter(w.jitter);
    let mut sim = Simulation::new(cfg, w.seed)
        .with_domains(w.domains)
        .with_threads(threads);
    sim.enable_trace(1 << 16);
    {
        let mut net = sim.net();
        for &(a, b, us) in &w.overrides {
            net.set_link_latency(NodeId(a), NodeId(b), Duration::from_micros(us));
        }
    }

    let mut servers = Vec::new();
    for n in 0..w.servers {
        servers.push(
            sim.spawn_at(format!("server{n}"), NodeId(n as u32), PortId(1), |ctx| {
                while let Ok(m) = ctx.recv() {
                    ctx.send(m.src, m.payload);
                }
            }),
        );
    }

    let echoes = Arc::new(AtomicU64::new(0));
    for c in 0..w.clients {
        let server = servers[(c as usize) % servers.len()];
        let calls = w.calls;
        let done = Arc::clone(&echoes);
        sim.spawn(format!("client{c}"), NodeId(100 + c as u32), move |ctx| {
            for i in 0..calls {
                ctx.send(server, Bytes::copy_from_slice(&[c, i]));
                match ctx.recv_timeout(Duration::from_millis(2)) {
                    Ok(Some(_)) => {
                        done.fetch_add(1, Ordering::Relaxed);
                    }
                    // Lost to the lossy link — move on.
                    Ok(None) => {}
                    Err(_) => return,
                }
            }
        });
    }

    if w.disruptor {
        // Node 50 lands in a different domain than server 0 whenever
        // `domains > 1`, so the kill rides the cross-domain outbox; the
        // late child lands on node 51 and exercises `ApplySpawn`.
        let victim = servers[0];
        sim.spawn("disruptor", NodeId(50), move |ctx| {
            ctx.sleep(Duration::from_micros(700)).unwrap();
            ctx.kill(victim);
            let child = ctx.spawn("late-child", NodeId(51), |cctx| {
                let _ = cctx.recv_timeout(Duration::from_millis(1));
            });
            ctx.send(child, Bytes::from_static(b"wake"));
        });
    }

    let report = if w.pause_us > 0 {
        // Pause mid-flight, observe, resume: round state (clocks,
        // outboxes, lookahead) must survive re-entry identically.
        let _mid = sim.run_until(SimTime::from_micros(w.pause_us));
        sim.run()
    } else {
        sim.run()
    };

    let trace: String = sim.take_trace().iter().map(|r| format!("{r}\n")).collect();
    let json = sim.obs_report().to_json();
    let summary = format!(
        "end={} sent={} delivered={} dropped={} blackholed={} events={} \
         spawned={} peak={} inversions={} finished={} alive={}",
        report.end_time.as_nanos(),
        report.metrics.msgs_sent,
        report.metrics.msgs_delivered,
        report.metrics.msgs_dropped,
        report.metrics.msgs_blackholed,
        report.metrics.events_dispatched,
        report.metrics.processes_spawned,
        report.metrics.processes_peak,
        report.metrics.sched_time_inversions,
        report.finished,
        report.alive
    );
    (summary, fnv(&trace), json, echoes.load(Ordering::Relaxed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline invariant: same workload, threads 1..4 → identical
    /// summary counters, identical trace bytes, identical report JSON,
    /// identical application-level outcome. And no run may ever count a
    /// time inversion — the conservative horizon forbids them.
    #[test]
    fn report_and_trace_invariant_across_thread_counts(w in arb_workload()) {
        let base = run(&w, 1);
        prop_assert!(
            base.0.contains("inversions=0"),
            "single-thread run counted a time inversion: {}", base.0
        );
        for threads in 2..=4usize {
            let other = run(&w, threads);
            prop_assert_eq!(&other.0, &base.0, "summary differs at {} threads", threads);
            prop_assert_eq!(other.1, base.1, "trace differs at {} threads", threads);
            prop_assert_eq!(&other.2, &base.2, "report JSON differs at {} threads", threads);
            prop_assert_eq!(other.3, base.3, "echo count differs at {} threads", threads);
        }
    }

    /// Re-running the same workload at the same thread count is also a
    /// fixed point — parallel execution did not smuggle in any hidden
    /// global state between runs.
    #[test]
    fn parallel_runs_are_repeatable(w in arb_workload()) {
        let a = run(&w, 4);
        let b = run(&w, 4);
        prop_assert_eq!(a, b);
    }
}

/// Kill/shutdown mid-run, pinned (non-random) so the cross-domain
/// `RemoteKill` + `ApplySpawn` + paused-resume combination is exercised
/// on every test run, not only when proptest happens to draw it.
#[test]
fn disrupted_paused_run_is_thread_invariant() {
    let w = Workload {
        seed: 0xD15_7077,
        domains: 3,
        servers: 3,
        clients: 4,
        calls: 4,
        loss: 0.1,
        jitter: 0.3,
        overrides: vec![(0, 50, 40), (1, 2, 60)],
        disruptor: true,
        pause_us: 900,
    };
    let base = run(&w, 1);
    for threads in [2, 3, 4] {
        assert_eq!(
            run(&w, threads),
            base,
            "disrupted run diverged at {threads} threads"
        );
    }
}
