//! Property-based tests of simulator invariants:
//!
//! * determinism: identical seeds yield identical runs, event for event;
//! * message conservation: every sent message is delivered, dropped or
//!   blackholed — never silently lost or duplicated beyond the model;
//! * virtual time only moves forward for every process.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use bytes::Bytes;
use proptest::prelude::*;
use simnet::{NetworkConfig, NodeId, PortId, Simulation};

/// A small random workload description.
#[derive(Debug, Clone)]
struct Workload {
    seed: u64,
    loss: f64,
    duplicate: f64,
    jitter: f64,
    senders: u8,
    msgs_per_sender: u8,
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    (
        any::<u64>(),
        0.0f64..0.4,
        0.0f64..0.4,
        0.0f64..0.5,
        1u8..5,
        1u8..20,
    )
        .prop_map(
            |(seed, loss, duplicate, jitter, senders, msgs_per_sender)| Workload {
                seed,
                loss,
                duplicate,
                jitter,
                senders,
                msgs_per_sender,
            },
        )
}

fn run_workload(w: &Workload) -> (u64, simnet::MetricsSnapshot, Vec<u64>) {
    let cfg = NetworkConfig::lan()
        .with_loss(w.loss)
        .with_duplicate(w.duplicate)
        .with_jitter(w.jitter);
    let mut sim = Simulation::new(cfg, w.seed);
    let received: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let r2 = Arc::clone(&received);
    let sink = sim.spawn_at("sink", NodeId(0), PortId(1), move |ctx| {
        while let Ok(m) = ctx.recv() {
            let mut id = [0u8; 8];
            id.copy_from_slice(&m.payload[..8]);
            r2.lock().unwrap().push(u64::from_le_bytes(id));
        }
    });
    for s in 0..w.senders {
        let n = w.msgs_per_sender;
        sim.spawn(format!("tx{s}"), NodeId(1 + s as u32), move |ctx| {
            for i in 0..n {
                let id = (s as u64) << 32 | i as u64;
                ctx.send(sink, Bytes::copy_from_slice(&id.to_le_bytes()));
                let _ = ctx.sleep(Duration::from_micros(100));
            }
        });
    }
    let report = sim.run();
    let order = received.lock().unwrap().clone();
    (report.end_time.as_nanos(), report.metrics, order)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn same_seed_same_everything(w in arb_workload()) {
        let a = run_workload(&w);
        let b = run_workload(&w);
        prop_assert_eq!(a.0, b.0, "end time");
        prop_assert_eq!(a.1, b.1, "metrics");
        prop_assert_eq!(a.2, b.2, "delivery order");
    }

    #[test]
    fn messages_are_conserved(w in arb_workload()) {
        let (_, m, order) = run_workload(&w);
        let offered = m.msgs_sent + m.msgs_duplicated;
        prop_assert_eq!(
            m.msgs_delivered + m.msgs_dropped + m.msgs_blackholed,
            offered,
            "delivered {} + dropped {} + blackholed {} != sent {} + duplicated {}",
            m.msgs_delivered, m.msgs_dropped, m.msgs_blackholed, m.msgs_sent, m.msgs_duplicated
        );
        prop_assert_eq!(order.len() as u64, m.msgs_delivered);
    }

    #[test]
    fn clean_network_delivers_everything_in_order_per_sender(
        seed in any::<u64>(), senders in 1u8..4, n in 1u8..20
    ) {
        let w = Workload { seed, loss: 0.0, duplicate: 0.0, jitter: 0.0, senders, msgs_per_sender: n };
        let (_, m, order) = run_workload(&w);
        prop_assert_eq!(m.msgs_delivered, senders as u64 * n as u64);
        prop_assert_eq!(m.msgs_dropped, 0);
        // FIFO per sender (no jitter): each sender's ids appear ascending.
        for s in 0..senders {
            let ids: Vec<u64> = order
                .iter()
                .copied()
                .filter(|id| (id >> 32) == s as u64)
                .collect();
            prop_assert!(ids.windows(2).all(|w| w[0] < w[1]), "sender {s} reordered: {ids:?}");
        }
    }

    #[test]
    fn time_is_monotone_for_every_process(seed in any::<u64>(), hops in 1u8..10) {
        let mut sim = Simulation::new(NetworkConfig::lan().with_jitter(0.3), seed);
        let violations = Arc::new(AtomicU64::new(0));
        let v2 = Arc::clone(&violations);
        sim.spawn("walker", NodeId(0), move |ctx| {
            let mut last = ctx.now();
            for _ in 0..hops {
                let _ = ctx.sleep(Duration::from_micros(50));
                let now = ctx.now();
                if now < last {
                    v2.fetch_add(1, Ordering::SeqCst);
                }
                last = now;
                // try_recv must not advance time
                let before = ctx.now();
                let _ = ctx.try_recv();
                if ctx.now() != before {
                    v2.fetch_add(1, Ordering::SeqCst);
                }
            }
        });
        sim.run();
        prop_assert_eq!(violations.load(Ordering::SeqCst), 0);
    }
}
