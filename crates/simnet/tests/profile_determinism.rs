//! Thread-count invariance of the continuous profiler, and its
//! zero-perturbation contract, proved at the property level.
//!
//! The profiler's *shape* — which frame paths exist and how many times
//! each folded — is a pure function of the simulated execution: the
//! driver folds each round's phase frames exactly once, the workers
//! fold per-domain busy/stall frames once per round, and instrumented
//! library scopes fire once per simulated operation. None of that
//! depends on which OS thread ran a domain, so `canonical_frames()`
//! (paths + calls, `wall_ns` excluded) must be byte-identical across
//! worker-thread counts. Wall time is host noise and is deliberately
//! outside the canonical form — these tests never look at it.
//!
//! The second contract is purity: turning the profiler on must not
//! move a single simulated event. A profiled run's summary counters
//! and trace bytes must equal the unprofiled run's, byte for byte —
//! the same surfaces the E18 determinism gate compares.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use proptest::prelude::*;
use simnet::{NetworkConfig, NodeId, PortId, Simulation};

/// A random topology + traffic description. The profile's canonical
/// frames must be a function of this struct alone, never of the
/// thread count.
#[derive(Debug, Clone)]
struct Workload {
    seed: u64,
    domains: usize,
    /// Echo servers (one per node, nodes 0..servers).
    servers: u8,
    /// Clients (nodes 100..100+clients), each doing `calls` echo RTTs.
    clients: u8,
    calls: u8,
    loss: f64,
    jitter: f64,
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    (
        any::<u64>(),
        1usize..5,
        1u8..4,
        1u8..6,
        1u8..5,
        0.0f64..0.3,
        0.0f64..0.5,
    )
        .prop_map(
            |(seed, domains, servers, clients, calls, loss, jitter)| Workload {
                seed,
                domains,
                servers,
                clients,
                calls,
                loss,
                jitter,
            },
        )
}

/// FNV-1a over a string, for compact trace fingerprints.
fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One full run. Returns the profile's canonical frames (empty string
/// when the profiler is off), the summary counters, a trace
/// fingerprint, and the echo count.
fn run(w: &Workload, threads: usize, profiled: bool) -> (String, String, u64, u64) {
    let cfg = NetworkConfig::lan().with_loss(w.loss).with_jitter(w.jitter);
    let mut sim = Simulation::new(cfg, w.seed)
        .with_domains(w.domains)
        .with_threads(threads);
    sim.enable_trace(1 << 16);
    if profiled {
        sim.obs().enable_profile(1 << 12);
    }

    let mut servers = Vec::new();
    for n in 0..w.servers {
        servers.push(
            sim.spawn_at(format!("server{n}"), NodeId(n as u32), PortId(1), |ctx| {
                while let Ok(m) = ctx.recv() {
                    ctx.send(m.src, m.payload);
                }
            }),
        );
    }

    let echoes = Arc::new(AtomicU64::new(0));
    for c in 0..w.clients {
        let server = servers[(c as usize) % servers.len()];
        let calls = w.calls;
        let done = Arc::clone(&echoes);
        sim.spawn(format!("client{c}"), NodeId(100 + c as u32), move |ctx| {
            for i in 0..calls {
                ctx.send(server, Bytes::copy_from_slice(&[c, i]));
                match ctx.recv_timeout(Duration::from_millis(2)) {
                    Ok(Some(_)) => {
                        done.fetch_add(1, Ordering::Relaxed);
                    }
                    // Lost to the lossy link — move on.
                    Ok(None) => {}
                    Err(_) => return,
                }
            }
        });
    }

    let report = sim.run();
    let canon = sim
        .obs()
        .profile_report()
        .map(|p| p.canonical_frames())
        .unwrap_or_default();
    let trace: String = sim.take_trace().iter().map(|r| format!("{r}\n")).collect();
    let summary = format!(
        "end={} sent={} delivered={} dropped={} events={} spawned={} finished={} alive={}",
        report.end_time.as_nanos(),
        report.metrics.msgs_sent,
        report.metrics.msgs_delivered,
        report.metrics.msgs_dropped,
        report.metrics.events_dispatched,
        report.metrics.processes_spawned,
        report.finished,
        report.alive
    );
    (canon, summary, fnv(&trace), echoes.load(Ordering::Relaxed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The headline invariant: same workload, threads 1..4 → identical
    /// canonical frames (paths + call counts), alongside the identical
    /// summary/trace the scheduler already guarantees.
    #[test]
    fn canonical_frames_invariant_across_thread_counts(w in arb_workload()) {
        let base = run(&w, 1, true);
        prop_assert!(!base.0.is_empty(), "profiled run produced no frames");
        for threads in 2..=4usize {
            let other = run(&w, threads, true);
            prop_assert_eq!(
                &other.0, &base.0,
                "canonical frames differ at {} threads", threads
            );
            prop_assert_eq!(&other.1, &base.1, "summary differs at {} threads", threads);
            prop_assert_eq!(other.2, base.2, "trace differs at {} threads", threads);
            prop_assert_eq!(other.3, base.3, "echo count differs at {} threads", threads);
        }
    }

    /// Purity: the profiler observes the simulation without moving it.
    /// Summary counters, trace bytes and application outcome must be
    /// byte-identical with the profiler on and off — the same surfaces
    /// the E18 determinism gate compares.
    #[test]
    fn profiling_does_not_perturb_the_run(w in arb_workload()) {
        let off = run(&w, 2, false);
        let on = run(&w, 2, true);
        prop_assert!(off.0.is_empty(), "unprofiled run leaked a profile");
        prop_assert!(!on.0.is_empty(), "profiled run produced no frames");
        prop_assert_eq!(&on.1, &off.1, "summary perturbed by profiling");
        prop_assert_eq!(on.2, off.2, "trace perturbed by profiling");
        prop_assert_eq!(on.3, off.3, "echo count perturbed by profiling");
    }
}

/// Pinned (non-random) spot check: the scheduler phase frames fold
/// exactly once per round with their wall times telescoping to the
/// round total, on every test run — not only when proptest draws a
/// friendly workload.
#[test]
fn phase_frames_fold_once_per_round_and_conserve() {
    let w = Workload {
        seed: 0x90F1_1E20,
        domains: 3,
        servers: 2,
        clients: 4,
        calls: 3,
        loss: 0.0,
        jitter: 0.2,
    };
    let cfg = NetworkConfig::lan().with_jitter(w.jitter);
    let mut sim = Simulation::new(cfg, w.seed).with_domains(w.domains);
    sim.obs().enable_profile(1 << 12);
    let mut servers = Vec::new();
    for n in 0..w.servers {
        servers.push(
            sim.spawn_at(format!("server{n}"), NodeId(n as u32), PortId(1), |ctx| {
                while let Ok(m) = ctx.recv() {
                    ctx.send(m.src, m.payload);
                }
            }),
        );
    }
    for c in 0..w.clients {
        let server = servers[(c as usize) % servers.len()];
        let calls = w.calls;
        sim.spawn(format!("client{c}"), NodeId(100 + c as u32), move |ctx| {
            for i in 0..calls {
                ctx.send(server, Bytes::copy_from_slice(&[c, i]));
                let _ = ctx.recv_timeout(Duration::from_millis(2));
            }
        });
    }
    sim.run();
    let prof = sim.obs().profile_report().expect("profiler was enabled");
    let round = prof.frames.get("sched;round").expect("round frame");
    assert!(round.calls > 0, "no rounds profiled");
    let mut phase_wall = 0u64;
    for phase in ["sched;round;pick", "sched;round;exec", "sched;round;merge"] {
        let st = prof
            .frames
            .get(phase)
            .unwrap_or_else(|| panic!("missing {phase}"));
        assert_eq!(st.calls, round.calls, "{phase} did not fold once per round");
        phase_wall += st.wall_ns;
    }
    assert_eq!(
        phase_wall, round.wall_ns,
        "phase walls do not tile the round wall"
    );
    assert_eq!(prof.frames_evicted, 0, "tiny workload evicted frames");
}
