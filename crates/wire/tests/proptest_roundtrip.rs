//! Property-based tests: encode/decode and frame/unframe are inverses for
//! arbitrary values, and the decoder never panics on arbitrary bytes.

use proptest::prelude::*;
use wire::{decode, encode, frame, unframe, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<u64>().prop_map(Value::U64),
        any::<i64>().prop_map(Value::I64),
        // NaN breaks PartialEq-based roundtrip assertions; use finite floats.
        (-1e300f64..1e300).prop_map(Value::F64),
        ".{0,24}".prop_map(Value::str),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Value::blob),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Value::List),
            proptest::collection::vec(("[a-z]{0,6}", inner), 0..6)
                .prop_map(|fields: Vec<(String, Value)>| Value::record(fields)),
        ]
    })
}

proptest! {
    #[test]
    fn codec_roundtrip(v in arb_value()) {
        let enc = encode(&v);
        prop_assert_eq!(decode(&enc).unwrap(), v);
    }

    #[test]
    fn frame_roundtrip(v in arb_value()) {
        prop_assert_eq!(unframe(&frame(&v)).unwrap(), v);
    }

    #[test]
    fn encoding_is_deterministic(v in arb_value()) {
        prop_assert_eq!(encode(&v), encode(&v.clone()));
    }

    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode(&bytes);   // must return, not panic
        let _ = unframe(&bytes);
    }

    #[test]
    fn truncation_never_decodes_to_wrong_value(v in arb_value()) {
        let enc = encode(&v);
        // Any strict prefix must fail (canonical TLV has no valid prefixes
        // that also consume the whole input).
        if enc.len() > 1 {
            let cut = enc.len() / 2;
            prop_assert!(decode(&enc[..cut]).is_err());
        }
    }

    #[test]
    fn single_byte_corruption_never_yields_original(v in arb_value(), idx in any::<usize>(), flip in 1u8..=255) {
        let framed = frame(&v);
        let mut corrupted = framed.to_vec();
        let i = idx % corrupted.len();
        corrupted[i] ^= flip;
        match unframe(&corrupted) {
            // The checksum (or structure) must catch it...
            Err(_) => {}
            // ...or in theory CRC collision; the value must then still differ
            // in encoding position (never silently equal original bytes).
            Ok(decoded) => prop_assert!(decoded != v || corrupted == framed.to_vec()),
        }
    }
}
