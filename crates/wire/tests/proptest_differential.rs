//! Differential property tests for the hot-path rewrites.
//!
//! Each optimised implementation is checked against its simple oracle on
//! arbitrary inputs: the zero-copy decoder against the tree decoder, the
//! slice-by-16 CRC kernel against the byte-at-a-time version (one-shot
//! and under arbitrary streaming split points), and the pooled encoder
//! against the one-shot allocation path.

use bytes::Bytes;
use proptest::prelude::*;
use wire::{
    crc32, crc32_bytewise, decode, decode_bytes, encode, frame, unframe, unframe_bytes, Crc32,
    Encoder, Value, MAX_BULK_LEN,
};

fn arb_blob_ref() -> impl Strategy<Value = Value> {
    ("[a-z-]{1,12}", ".{0,16}", 0..=MAX_BULK_LEN, any::<u32>())
        .prop_map(|(store, key, len, crc)| Value::blob_ref(store, key, len, crc))
}

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<u64>().prop_map(Value::U64),
        any::<i64>().prop_map(Value::I64),
        // NaN breaks PartialEq-based equality assertions; use finite floats.
        (-1e300f64..1e300).prop_map(Value::F64),
        ".{0,24}".prop_map(Value::str),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Value::blob),
        arb_blob_ref(),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Value::List),
            proptest::collection::vec(("[a-z]{0,6}", inner), 0..6)
                .prop_map(|fields: Vec<(String, Value)>| Value::record(fields)),
        ]
    })
}

proptest! {
    /// The zero-copy decoder agrees with the tree decoder on every
    /// valid encoding.
    #[test]
    fn zero_copy_decode_matches_tree_decode(v in arb_value()) {
        let enc = encode(&v);
        let shared = Bytes::copy_from_slice(&enc);
        prop_assert_eq!(decode_bytes(&shared).unwrap(), decode(&enc).unwrap());
    }

    /// ...and on arbitrary (mostly invalid) bytes the two decoders
    /// agree on accept/reject, and on the value when both accept.
    #[test]
    fn decoders_agree_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let shared = Bytes::copy_from_slice(&bytes);
        match (decode(&bytes), decode_bytes(&shared)) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "decoders disagree: tree={a:?} zero-copy={b:?}"),
        }
    }

    /// Frame verification behaves identically through the borrowed and
    /// the zero-copy entry points.
    #[test]
    fn unframe_bytes_matches_unframe(v in arb_value()) {
        let framed = frame(&v);
        prop_assert_eq!(unframe_bytes(&framed).unwrap(), unframe(&framed).unwrap());
    }

    /// Slice-by-16 equals the byte-at-a-time oracle on any input.
    #[test]
    fn crc_slice16_matches_bytewise(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert_eq!(crc32(&data), crc32_bytewise(&data));
    }

    /// Streaming `Crc32::update` over arbitrary split points equals the
    /// one-shot value of both kernels — chunk boundaries must not be
    /// observable.
    #[test]
    fn crc_streaming_split_points_match(
        data in proptest::collection::vec(any::<u8>(), 0..256),
        cuts in proptest::collection::vec(any::<usize>(), 0..6),
    ) {
        let mut cuts: Vec<usize> = cuts.iter().map(|c| c % (data.len() + 1)).collect();
        cuts.sort_unstable();
        let mut streaming = Crc32::new();
        let mut prev = 0usize;
        for &cut in &cuts {
            streaming.update(&data[prev..cut]);
            prev = cut;
        }
        streaming.update(&data[prev..]);
        prop_assert_eq!(streaming.finish(), crc32(&data));
        prop_assert_eq!(streaming.finish(), crc32_bytewise(&data));
    }

    /// The pooled encoder emits byte-identical output to the one-shot
    /// path, across reuse (stale scratch contents must never leak).
    #[test]
    fn pooled_encoder_matches_oneshot(vs in proptest::collection::vec(arb_value(), 1..4)) {
        let mut enc = Encoder::new();
        for v in &vs {
            prop_assert_eq!(enc.encode(v), encode(v));
            prop_assert_eq!(enc.frame(v), frame(v));
        }
    }

    /// A blob reference survives encode/decode exactly (both decoders),
    /// for any store/key/declared-length/CRC combination in range.
    #[test]
    fn blob_ref_roundtrips(v in arb_blob_ref()) {
        let enc = encode(&v);
        prop_assert_eq!(decode(&enc).unwrap(), v.clone());
        let shared = Bytes::copy_from_slice(&enc);
        prop_assert_eq!(decode_bytes(&shared).unwrap(), v);
    }
}
