//! CRC-32 (IEEE 802.3 polynomial), implemented here to keep the workspace
//! dependency-minimal. Used by the framing layer to detect corruption.

/// Reflected polynomial for CRC-32/ISO-HDLC (the "zlib" CRC).
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes the CRC-32 checksum of `data`.
///
/// ```
/// // Standard check value for the CRC-32/ISO-HDLC algorithm.
/// assert_eq!(wire::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Incremental CRC-32 state for hashing data in pieces.
///
/// ```
/// use wire::Crc32;
/// let mut h = Crc32::new();
/// h.update(b"1234");
/// h.update(b"56789");
/// assert_eq!(h.finish(), wire::crc32(b"123456789"));
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds more bytes into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.state = (self.state >> 8) ^ TABLE[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// Finishes and returns the checksum. The state may keep being
    /// updated afterwards (finish is non-destructive).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"hello crc world, split me into pieces";
        for split in 0..data.len() {
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), crc32(data));
        }
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let data = vec![0xA5u8; 64];
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
