//! CRC-32 (IEEE 802.3 polynomial), implemented here to keep the workspace
//! dependency-minimal. Used by the framing layer to detect corruption.
//!
//! The hot-path implementation is *slice-by-16*: sixteen 256-entry
//! lookup tables (built at compile time) let the loop fold sixteen input
//! bytes per iteration with no inter-byte data dependency, instead of
//! the classic one-table byte-at-a-time recurrence. The classic form is
//! kept as [`crc32_bytewise`], serving as a differential oracle for
//! tests and as the baseline in benchmarks.

/// Reflected polynomial for CRC-32/ISO-HDLC (the "zlib" CRC).
const POLY: u32 = 0xEDB8_8320;

/// Sixteen 256-entry lookup tables, built at compile time.
///
/// `TABLES[0]` is the classic byte-at-a-time table; `TABLES[k][i]` is
/// the CRC contribution of byte value `i` when it sits `k` positions
/// before the end of a 16-byte block: `TABLES[k][i] =
/// (TABLES[k-1][i] >> 8) ^ TABLES[0][TABLES[k-1][i] & 0xFF]`.
const TABLES: [[u32; 256]; 16] = build_tables();

const fn build_tables() -> [[u32; 256]; 16] {
    let mut t = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 16 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

/// Advances a raw (pre-inversion) CRC state over `data`, sixteen bytes
/// per step. Shared by [`crc32`] and the incremental [`Crc32`]; the
/// byte-granular tail means the result is split-point independent.
fn update_state(mut crc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(16);
    for chunk in &mut chunks {
        let a = u32::from_le_bytes(chunk[0..4].try_into().unwrap()) ^ crc;
        let b = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
        let c = u32::from_le_bytes(chunk[8..12].try_into().unwrap());
        let d = u32::from_le_bytes(chunk[12..16].try_into().unwrap());
        crc = TABLES[15][(a & 0xFF) as usize]
            ^ TABLES[14][((a >> 8) & 0xFF) as usize]
            ^ TABLES[13][((a >> 16) & 0xFF) as usize]
            ^ TABLES[12][(a >> 24) as usize]
            ^ TABLES[11][(b & 0xFF) as usize]
            ^ TABLES[10][((b >> 8) & 0xFF) as usize]
            ^ TABLES[9][((b >> 16) & 0xFF) as usize]
            ^ TABLES[8][(b >> 24) as usize]
            ^ TABLES[7][(c & 0xFF) as usize]
            ^ TABLES[6][((c >> 8) & 0xFF) as usize]
            ^ TABLES[5][((c >> 16) & 0xFF) as usize]
            ^ TABLES[4][(c >> 24) as usize]
            ^ TABLES[3][(d & 0xFF) as usize]
            ^ TABLES[2][((d >> 8) & 0xFF) as usize]
            ^ TABLES[1][((d >> 16) & 0xFF) as usize]
            ^ TABLES[0][(d >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// Computes the CRC-32 checksum of `data` (slice-by-16 fast path).
///
/// ```
/// // Standard check value for the CRC-32/ISO-HDLC algorithm.
/// assert_eq!(wire::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    !update_state(0xFFFF_FFFF, data)
}

/// Computes the CRC-32 checksum one byte at a time.
///
/// The classic single-table recurrence, kept as a differential oracle
/// for [`crc32`]: trivially auditable against the polynomial definition,
/// and the baseline the benchmarks compare the slice-by-16 path to.
/// Always returns the same value as [`crc32`].
pub fn crc32_bytewise(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Incremental CRC-32 state for hashing data in pieces.
///
/// ```
/// use wire::Crc32;
/// let mut h = Crc32::new();
/// h.update(b"1234");
/// h.update(b"56789");
/// assert_eq!(h.finish(), wire::crc32(b"123456789"));
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds more bytes into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        self.state = update_state(self.state, data);
    }

    /// Finishes and returns the checksum. The state may keep being
    /// updated afterwards (finish is non-destructive).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"hello crc world, split me into pieces - long enough for slice16";
        for split in 0..data.len() {
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), crc32(data), "split at {split}");
        }
    }

    #[test]
    fn slice16_matches_bytewise_oracle() {
        // Differential check over every length 0..=96 (covers empty,
        // sub-block tails, exact blocks, and multi-block inputs) with a
        // pseudo-random fill.
        let mut data = Vec::new();
        let mut x = 0x1234_5678u32;
        for len in 0..=96usize {
            data.clear();
            for _ in 0..len {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                data.push((x >> 24) as u8);
            }
            assert_eq!(crc32(&data), crc32_bytewise(&data), "len={len}");
        }
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let data = vec![0xA5u8; 64];
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
