//! [`WStr`] — an immutable UTF-8 string backed by a refcounted byte
//! buffer.
//!
//! The codec stores every decoded string as a [`WStr`] so that the
//! zero-copy decoder ([`crate::decode_bytes`]) can hand out strings that
//! are cheap slices of the incoming frame instead of fresh heap copies.
//! Cloning a `WStr` bumps a refcount; comparisons, ordering and hashing
//! all delegate to the underlying `str`, so it behaves like a `String`
//! for map keys and equality checks.

use bytes::Bytes;

use crate::error::WireError;

/// An immutable, cheaply clonable UTF-8 string.
///
/// Invariant: `bytes` is always valid UTF-8 (enforced at every
/// construction site).
///
/// ```
/// use wire::WStr;
/// let s = WStr::from("hello");
/// assert_eq!(&*s, "hello");
/// assert_eq!(s, "hello");
/// ```
#[derive(Clone, Default)]
pub struct WStr {
    bytes: Bytes,
}

impl WStr {
    /// An empty string.
    pub fn new() -> WStr {
        WStr::default()
    }

    /// Validates `bytes` as UTF-8 and wraps them without copying.
    ///
    /// # Errors
    ///
    /// [`WireError::BadUtf8`] if the bytes are not valid UTF-8.
    pub fn from_utf8(bytes: Bytes) -> Result<WStr, WireError> {
        std::str::from_utf8(&bytes).map_err(|_| WireError::BadUtf8)?;
        Ok(WStr { bytes })
    }

    /// Wraps bytes already known to be valid UTF-8.
    ///
    /// # Safety
    ///
    /// `bytes` must be valid UTF-8; constructing a `WStr` from invalid
    /// bytes makes [`WStr::as_str`] undefined behaviour.
    pub(crate) unsafe fn from_utf8_unchecked(bytes: Bytes) -> WStr {
        debug_assert!(std::str::from_utf8(&bytes).is_ok());
        WStr { bytes }
    }

    /// Borrows the string.
    pub fn as_str(&self) -> &str {
        // SAFETY: the UTF-8 invariant is upheld by every constructor.
        unsafe { std::str::from_utf8_unchecked(&self.bytes) }
    }

    /// Borrows the raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the string is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Consumes the string, returning the underlying buffer.
    pub fn into_bytes(self) -> Bytes {
        self.bytes
    }

    /// Copies into an owned `String`.
    pub fn to_string_owned(&self) -> String {
        self.as_str().to_owned()
    }
}

impl std::ops::Deref for WStr {
    type Target = str;

    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for WStr {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl std::borrow::Borrow<str> for WStr {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl std::fmt::Debug for WStr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(self.as_str(), f)
    }
}

impl std::fmt::Display for WStr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(self.as_str(), f)
    }
}

impl PartialEq for WStr {
    fn eq(&self, other: &WStr) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Eq for WStr {}

impl PartialOrd for WStr {
    fn partial_cmp(&self, other: &WStr) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WStr {
    fn cmp(&self, other: &WStr) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl std::hash::Hash for WStr {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_str().hash(state);
    }
}

impl PartialEq<str> for WStr {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for WStr {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for WStr {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<WStr> for str {
    fn eq(&self, other: &WStr) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<WStr> for &str {
    fn eq(&self, other: &WStr) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<WStr> for String {
    fn eq(&self, other: &WStr) -> bool {
        self.as_str() == other.as_str()
    }
}

impl From<&str> for WStr {
    fn from(s: &str) -> WStr {
        WStr {
            bytes: Bytes::copy_from_slice(s.as_bytes()),
        }
    }
}

impl From<String> for WStr {
    fn from(s: String) -> WStr {
        WStr {
            bytes: Bytes::from(s),
        }
    }
}

impl From<&String> for WStr {
    fn from(s: &String) -> WStr {
        WStr::from(s.as_str())
    }
}

impl From<WStr> for String {
    fn from(s: WStr) -> String {
        s.as_str().to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let s = WStr::from("héllo".to_owned());
        assert_eq!(s.as_str(), "héllo");
        assert_eq!(s.len(), "héllo".len());
        assert!(!s.is_empty());
        assert!(WStr::new().is_empty());
        assert_eq!(String::from(s.clone()), "héllo");
        assert_eq!(s.to_string_owned(), "héllo");
    }

    #[test]
    fn from_utf8_validates() {
        assert!(WStr::from_utf8(Bytes::copy_from_slice(b"ok")).is_ok());
        assert_eq!(
            WStr::from_utf8(Bytes::copy_from_slice(&[0xFF, 0xFE])),
            Err(WireError::BadUtf8)
        );
    }

    #[test]
    fn equality_ignores_backing_identity() {
        let frame = Bytes::copy_from_slice(b"xxhelloxx");
        let sliced = WStr::from_utf8(frame.slice(2..7)).unwrap();
        let owned = WStr::from("hello");
        assert_eq!(sliced, owned);
        assert_eq!(sliced, "hello");
        assert_eq!("hello", sliced);
        assert_eq!(sliced, "hello".to_owned());
    }

    #[test]
    fn ordering_and_hash_follow_str() {
        use std::collections::HashSet;
        let a = WStr::from("a");
        let b = WStr::from("b");
        assert!(a < b);
        let mut set = HashSet::new();
        set.insert(a.clone());
        // Borrow<str> allows &str lookups.
        assert!(set.contains("a"));
        assert!(!set.contains("b"));
    }

    #[test]
    fn display_and_debug_follow_str() {
        let s = WStr::from("hi\"there");
        assert_eq!(format!("{s}"), "hi\"there");
        assert_eq!(format!("{s:?}"), "\"hi\\\"there\"");
    }
}
