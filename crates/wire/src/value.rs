//! The self-describing value model.
//!
//! [`Value`] is the dynamic data model every protocol layer in this
//! workspace marshals through — the analogue of the Courier/XDR
//! presentation layer in classic RPC systems. Service interfaces exchange
//! `Value`s; typed client wrappers convert to and from domain types at the
//! edges.

use bytes::Bytes;

use crate::error::WireError;
use crate::wstr::WStr;

/// A service-scoped reference to a payload stored out-of-band.
///
/// The bulk data plane substitutes one of these for any blob above the
/// spill threshold: the RPC path carries this fixed-size handle while the
/// bytes themselves live in the named blob-store service, fetched lazily
/// (and chunked) by whoever actually touches the value. `len` and `crc`
/// pin the content so a resolver can verify the reassembled bytes match
/// what the producer spilled.
#[derive(Debug, Clone, PartialEq)]
pub struct BlobRef {
    /// Service name of the blob store holding the bytes.
    pub store: WStr,
    /// Key of the payload within that store.
    pub key: WStr,
    /// Byte length of the referenced payload.
    pub len: u64,
    /// CRC-32 of the payload content.
    pub crc: u32,
}

/// A dynamically-typed, self-describing wire value.
///
/// ```
/// use wire::Value;
///
/// let v = Value::record([
///     ("op", Value::str("put")),
///     ("key", Value::str("color")),
///     ("size", Value::U64(3)),
/// ]);
/// assert_eq!(v.get("op").and_then(|v| v.as_str()), Some("put"));
/// assert_eq!(v.get_u64("size").unwrap(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absence of a value.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned 64-bit integer.
    U64(u64),
    /// A signed 64-bit integer.
    I64(i64),
    /// A 64-bit float.
    F64(f64),
    /// A UTF-8 string. Backed by a refcounted buffer ([`WStr`]), so the
    /// zero-copy decoder can alias the incoming frame and clones are
    /// cheap.
    Str(WStr),
    /// Raw bytes.
    Blob(Bytes),
    /// An ordered list of values.
    List(Vec<Value>),
    /// An ordered list of named fields (a record). Field order is
    /// preserved and significant for encoding, but lookup by name via
    /// [`Value::get`] ignores order. Keys are [`WStr`] so the zero-copy
    /// decoder can alias them into the incoming frame as well.
    Record(Vec<(WStr, Value)>),
    /// A reference to a payload stored out-of-band in a blob-store
    /// service (the bulk data plane's pass-by-reference handle).
    Ref(BlobRef),
}

impl Value {
    /// Convenience constructor for [`Value::Str`].
    pub fn str(s: impl Into<WStr>) -> Value {
        Value::Str(s.into())
    }

    /// Convenience constructor for [`Value::Blob`].
    pub fn blob(b: impl Into<Bytes>) -> Value {
        Value::Blob(b.into())
    }

    /// Convenience constructor for [`Value::List`].
    pub fn list(items: impl IntoIterator<Item = Value>) -> Value {
        Value::List(items.into_iter().collect())
    }

    /// Convenience constructor for [`Value::Record`].
    pub fn record<K: Into<WStr>>(fields: impl IntoIterator<Item = (K, Value)>) -> Value {
        Value::Record(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Convenience constructor for [`Value::Ref`].
    pub fn blob_ref(store: impl Into<WStr>, key: impl Into<WStr>, len: u64, crc: u32) -> Value {
        Value::Ref(BlobRef {
            store: store.into(),
            key: key.into(),
            len,
            crc,
        })
    }

    /// Human-readable name of this value's kind (used in errors).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) => "u64",
            Value::I64(_) => "i64",
            Value::F64(_) => "f64",
            Value::Str(_) => "str",
            Value::Blob(_) => "blob",
            Value::List(_) => "list",
            Value::Record(_) => "record",
            Value::Ref(_) => "ref",
        }
    }

    /// Borrows the string if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Borrows the refcounted string if this is a [`Value::Str`]. Use
    /// this instead of [`Value::as_str`] when the caller wants to keep
    /// the string without copying it.
    pub fn as_wstr(&self) -> Option<&WStr> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer if this is a [`Value::U64`].
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the integer if this is a [`Value::I64`].
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the float if this is a [`Value::F64`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// Returns the bool if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrows the bytes if this is a [`Value::Blob`].
    pub fn as_blob(&self) -> Option<&Bytes> {
        match self {
            Value::Blob(b) => Some(b),
            _ => None,
        }
    }

    /// Borrows the items if this is a [`Value::List`].
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// Borrows the fields if this is a [`Value::Record`].
    pub fn as_record(&self) -> Option<&[(WStr, Value)]> {
        match self {
            Value::Record(fields) => Some(fields),
            _ => None,
        }
    }

    /// Borrows the reference if this is a [`Value::Ref`].
    pub fn as_blob_ref(&self) -> Option<&BlobRef> {
        match self {
            Value::Ref(r) => Some(r),
            _ => None,
        }
    }

    /// Looks up a field by name in a [`Value::Record`]. Returns `None`
    /// for other kinds or missing fields. First match wins.
    pub fn get(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Record(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required string field of a record.
    ///
    /// # Errors
    ///
    /// [`WireError::MissingField`] if absent, [`WireError::WrongKind`] if
    /// present with another kind.
    pub fn get_str(&self, name: &'static str) -> Result<&str, WireError> {
        let v = self.get(name).ok_or(WireError::MissingField(name))?;
        v.as_str().ok_or(WireError::WrongKind {
            expected: "str",
            actual: v.kind(),
        })
    }

    /// Required `u64` field of a record.
    ///
    /// # Errors
    ///
    /// [`WireError::MissingField`] if absent, [`WireError::WrongKind`] if
    /// present with another kind.
    pub fn get_u64(&self, name: &'static str) -> Result<u64, WireError> {
        let v = self.get(name).ok_or(WireError::MissingField(name))?;
        v.as_u64().ok_or(WireError::WrongKind {
            expected: "u64",
            actual: v.kind(),
        })
    }

    /// Required `i64` field of a record.
    ///
    /// # Errors
    ///
    /// [`WireError::MissingField`] if absent, [`WireError::WrongKind`] if
    /// present with another kind.
    pub fn get_i64(&self, name: &'static str) -> Result<i64, WireError> {
        let v = self.get(name).ok_or(WireError::MissingField(name))?;
        v.as_i64().ok_or(WireError::WrongKind {
            expected: "i64",
            actual: v.kind(),
        })
    }

    /// Required bool field of a record.
    ///
    /// # Errors
    ///
    /// [`WireError::MissingField`] if absent, [`WireError::WrongKind`] if
    /// present with another kind.
    pub fn get_bool(&self, name: &'static str) -> Result<bool, WireError> {
        let v = self.get(name).ok_or(WireError::MissingField(name))?;
        v.as_bool().ok_or(WireError::WrongKind {
            expected: "bool",
            actual: v.kind(),
        })
    }

    /// Required blob field of a record.
    ///
    /// # Errors
    ///
    /// [`WireError::MissingField`] if absent, [`WireError::WrongKind`] if
    /// present with another kind.
    pub fn get_blob(&self, name: &'static str) -> Result<&Bytes, WireError> {
        let v = self.get(name).ok_or(WireError::MissingField(name))?;
        v.as_blob().ok_or(WireError::WrongKind {
            expected: "blob",
            actual: v.kind(),
        })
    }

    /// Required list field of a record.
    ///
    /// # Errors
    ///
    /// [`WireError::MissingField`] if absent, [`WireError::WrongKind`] if
    /// present with another kind.
    pub fn get_list(&self, name: &'static str) -> Result<&[Value], WireError> {
        let v = self.get(name).ok_or(WireError::MissingField(name))?;
        v.as_list().ok_or(WireError::WrongKind {
            expected: "list",
            actual: v.kind(),
        })
    }

    /// Approximate in-memory payload size, used by tests and benches to
    /// relate value size to encoded size.
    pub fn payload_len(&self) -> usize {
        match self {
            Value::Null | Value::Bool(_) => 1,
            Value::U64(_) | Value::I64(_) | Value::F64(_) => 8,
            Value::Str(s) => s.len(),
            Value::Blob(b) => b.len(),
            Value::List(items) => items.iter().map(Value::payload_len).sum(),
            Value::Record(fields) => fields.iter().map(|(k, v)| k.len() + v.payload_len()).sum(),
            // The handle itself, not the referenced bytes: the whole point
            // of a ref is that the payload does not ride with the value.
            Value::Ref(r) => r.store.len() + r.key.len() + 12,
        }
    }
}

impl std::fmt::Display for Value {
    /// Renders a JSON-like human-readable form (for logs and debugging;
    /// *not* a serialization format — use [`crate::encode`] for that).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::U64(n) => write!(f, "{n}"),
            Value::I64(n) => write!(f, "{n}"),
            Value::F64(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Blob(b) => {
                if b.len() <= 8 {
                    write!(f, "0x")?;
                    for byte in b.iter() {
                        write!(f, "{byte:02x}")?;
                    }
                    Ok(())
                } else {
                    write!(f, "<{} bytes>", b.len())
                }
            }
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Record(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
            Value::Ref(r) => write!(
                f,
                "ref({}/{}, {} bytes, crc={:08x})",
                r.store, r.key, r.len, r.crc
            ),
        }
    }
}

impl Default for Value {
    /// [`Value::Null`].
    fn default() -> Value {
        Value::Null
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::U64(n)
    }
}
impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::U64(n.into())
    }
}
impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::I64(n)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::F64(x)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(WStr::from(s))
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(WStr::from(s))
    }
}
impl From<WStr> for Value {
    fn from(s: WStr) -> Value {
        Value::Str(s)
    }
}
impl From<Bytes> for Value {
    fn from(b: Bytes) -> Value {
        Value::Blob(b)
    }
}
impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Value {
        Value::List(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_lookup_by_name() {
        let v = Value::record([("a", Value::U64(1)), ("b", Value::str("x"))]);
        assert_eq!(v.get_u64("a").unwrap(), 1);
        assert_eq!(v.get_str("b").unwrap(), "x");
        assert_eq!(v.get("missing"), None);
        assert_eq!(
            v.get_u64("missing"),
            Err(WireError::MissingField("missing"))
        );
    }

    #[test]
    fn wrong_kind_reports_both_sides() {
        let v = Value::record([("n", Value::str("not a number"))]);
        assert_eq!(
            v.get_u64("n"),
            Err(WireError::WrongKind {
                expected: "u64",
                actual: "str"
            })
        );
    }

    #[test]
    fn first_match_wins_on_duplicate_fields() {
        let v = Value::Record(vec![
            ("k".into(), Value::U64(1)),
            ("k".into(), Value::U64(2)),
        ]);
        assert_eq!(v.get_u64("k").unwrap(), 1);
    }

    #[test]
    fn conversions_from_primitives() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(5u64), Value::U64(5));
        assert_eq!(Value::from(5u32), Value::U64(5));
        assert_eq!(Value::from(-5i64), Value::I64(-5));
        assert_eq!(Value::from("hi"), Value::str("hi"));
        assert_eq!(Value::from(2.5f64), Value::F64(2.5));
    }

    #[test]
    fn accessors_reject_other_kinds() {
        let v = Value::U64(3);
        assert!(v.as_str().is_none());
        assert!(v.as_bool().is_none());
        assert!(v.as_list().is_none());
        assert!(v.as_record().is_none());
        assert_eq!(v.as_u64(), Some(3));
    }

    #[test]
    fn payload_len_is_additive() {
        let v = Value::record([("k", Value::blob(vec![0u8; 100])), ("s", Value::str("abc"))]);
        assert_eq!(v.payload_len(), 1 + 100 + 1 + 3);
    }

    #[test]
    fn display_is_json_like() {
        let v = Value::record([
            ("op", Value::str("put")),
            ("n", Value::U64(3)),
            ("tags", Value::list([Value::Bool(true), Value::Null])),
            ("raw", Value::blob(vec![0xAB, 0xCD])),
            ("big", Value::blob(vec![0u8; 100])),
        ]);
        assert_eq!(
            v.to_string(),
            "{op: \"put\", n: 3, tags: [true, null], raw: 0xabcd, big: <100 bytes>}"
        );
    }

    #[test]
    fn default_is_null() {
        assert_eq!(Value::default(), Value::Null);
        assert_eq!(Value::default().kind(), "null");
    }

    #[test]
    fn blob_ref_accessors_and_display() {
        let v = Value::blob_ref("blob-origin", "k/42", 1_048_576, 0xDEAD_BEEF);
        assert_eq!(v.kind(), "ref");
        let r = v.as_blob_ref().unwrap();
        assert_eq!(r.store.as_str(), "blob-origin");
        assert_eq!(r.key.as_str(), "k/42");
        assert_eq!(r.len, 1_048_576);
        assert_eq!(r.crc, 0xDEAD_BEEF);
        assert!(v.as_blob().is_none(), "a ref is not an inline blob");
        assert_eq!(
            v.to_string(),
            "ref(blob-origin/k/42, 1048576 bytes, crc=deadbeef)"
        );
        // The handle is small no matter how big the referenced payload is.
        assert_eq!(v.payload_len(), 11 + 4 + 12);
        assert!(Value::U64(1).as_blob_ref().is_none());
    }
}
