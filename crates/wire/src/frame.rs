//! Framing: a versioned, checksummed envelope around an encoded value.
//!
//! Layout:
//!
//! ```text
//! +-------+---------+-------------+------------------+---------+
//! | magic | version | crc32 (LE)  | payload len (LE) | payload |
//! |  2 B  |   1 B   |    4 B      |       4 B        |   n B   |
//! +-------+---------+-------------+------------------+---------+
//! ```
//!
//! The checksum covers the payload only; the fixed-size header makes
//! truncation detectable before the checksum is even consulted. Protocol
//! layers (RPC) put exactly one frame in each simulated datagram.

use bytes::{BufMut, Bytes, BytesMut};

use crate::codec::{decode, encode};
use crate::crc::crc32;
use crate::error::WireError;
use crate::value::Value;

/// First magic byte ('P' for proxy).
const MAGIC: [u8; 2] = [0x50, 0x58]; // "PX"

/// Current frame format version.
pub const FRAME_VERSION: u8 = 1;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 2 + 1 + 4 + 4;

/// Wraps an encoded value in a checksummed frame.
///
/// ```
/// use wire::{frame, unframe, Value};
/// let v = Value::str("payload");
/// assert_eq!(unframe(&frame(&v)).unwrap(), v);
/// ```
pub fn frame(v: &Value) -> Bytes {
    let payload = encode(v);
    let mut buf = BytesMut::with_capacity(HEADER_LEN + payload.len());
    buf.put_slice(&MAGIC);
    buf.put_u8(FRAME_VERSION);
    buf.put_u32_le(crc32(&payload));
    buf.put_u32_le(payload.len() as u32);
    buf.put_slice(&payload);
    buf.freeze()
}

/// Validates a frame and decodes its payload.
///
/// # Errors
///
/// * [`WireError::UnexpectedEof`] — shorter than the header or the
///   declared payload.
/// * [`WireError::BadMagic`] / [`WireError::BadVersion`] — wrong envelope.
/// * [`WireError::BadChecksum`] — payload corruption.
/// * [`WireError::TrailingBytes`] — bytes beyond the declared payload.
/// * any decode error from the payload itself.
pub fn unframe(input: &[u8]) -> Result<Value, WireError> {
    if input.len() < HEADER_LEN {
        return Err(WireError::UnexpectedEof {
            needed: HEADER_LEN - input.len(),
        });
    }
    if input[0..2] != MAGIC {
        return Err(WireError::BadMagic);
    }
    if input[2] != FRAME_VERSION {
        return Err(WireError::BadVersion(input[2]));
    }
    let expected = u32::from_le_bytes(input[3..7].try_into().unwrap());
    let len = u32::from_le_bytes(input[7..11].try_into().unwrap()) as usize;
    let body = &input[HEADER_LEN..];
    if body.len() < len {
        return Err(WireError::UnexpectedEof {
            needed: len - body.len(),
        });
    }
    if body.len() > len {
        return Err(WireError::TrailingBytes(body.len() - len));
    }
    let actual = crc32(body);
    if actual != expected {
        return Err(WireError::BadChecksum { expected, actual });
    }
    decode(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let v = Value::record([("op", Value::str("get")), ("id", Value::U64(42))]);
        assert_eq!(unframe(&frame(&v)).unwrap(), v);
    }

    #[test]
    fn short_header_rejected() {
        assert!(matches!(
            unframe(&[0x50]),
            Err(WireError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut f = frame(&Value::Null).to_vec();
        f[0] = 0x00;
        assert_eq!(unframe(&f), Err(WireError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut f = frame(&Value::Null).to_vec();
        f[2] = 99;
        assert_eq!(unframe(&f), Err(WireError::BadVersion(99)));
    }

    #[test]
    fn payload_corruption_detected() {
        let mut f = frame(&Value::str("sensitive")).to_vec();
        let last = f.len() - 1;
        f[last] ^= 0x01;
        assert!(matches!(unframe(&f), Err(WireError::BadChecksum { .. })));
    }

    #[test]
    fn truncated_payload_rejected() {
        let f = frame(&Value::str("some payload"));
        assert!(matches!(
            unframe(&f[..f.len() - 3]),
            Err(WireError::UnexpectedEof { needed: 3 })
        ));
    }

    #[test]
    fn extra_bytes_rejected() {
        let mut f = frame(&Value::Null).to_vec();
        f.push(0xAA);
        assert_eq!(unframe(&f), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn header_overhead_is_constant() {
        let small = frame(&Value::Null);
        let payload = encode(&Value::Null);
        assert_eq!(small.len(), HEADER_LEN + payload.len());
    }
}
