//! Framing: a versioned, checksummed envelope around an encoded value.
//!
//! Layout:
//!
//! ```text
//! +-------+---------+-------------+------------------+---------+
//! | magic | version | crc32 (LE)  | payload len (LE) | payload |
//! |  2 B  |   1 B   |    4 B      |       4 B        |   n B   |
//! +-------+---------+-------------+------------------+---------+
//! ```
//!
//! The checksum covers the payload only; the fixed-size header makes
//! truncation detectable before the checksum is even consulted. Protocol
//! layers (RPC) put exactly one frame in each simulated datagram.
//!
//! On the receive side, [`unframe_bytes`] pairs the envelope check with
//! the zero-copy decoder so the resulting `Value`'s string/blob leaves
//! alias the datagram instead of copying out of it; [`unframe`] is the
//! copying equivalent for plain slices.

use bytes::Bytes;

use crate::codec::{decode, decode_bytes, encode_into};
use crate::crc::crc32;
use crate::error::WireError;
use crate::value::Value;

/// First magic byte ('P' for proxy).
const MAGIC: [u8; 2] = [0x50, 0x58]; // "PX"

/// Current frame format version.
pub const FRAME_VERSION: u8 = 1;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 2 + 1 + 4 + 4;

/// Fills in the frame header over a buffer whose first [`HEADER_LEN`]
/// bytes are reserved and whose remainder is the encoded payload. This
/// is the single-buffer framing path shared by [`frame`] and the pooled
/// [`crate::Encoder::frame_with`] — encode once, patch the header, no
/// second buffer.
pub(crate) fn finish_frame(buf: &mut [u8]) {
    debug_assert!(buf.len() >= HEADER_LEN);
    let crc = crc32(&buf[HEADER_LEN..]);
    let len = (buf.len() - HEADER_LEN) as u32;
    buf[0..2].copy_from_slice(&MAGIC);
    buf[2] = FRAME_VERSION;
    buf[3..7].copy_from_slice(&crc.to_le_bytes());
    buf[7..11].copy_from_slice(&len.to_le_bytes());
}

/// Wraps an encoded value in a checksummed frame.
///
/// Single allocation: the payload is encoded directly after a reserved
/// header which is then patched in place. Hot paths framing many
/// messages should prefer [`crate::Encoder::frame`], which also reuses
/// the scratch buffer across messages.
///
/// ```
/// use wire::{frame, unframe, Value};
/// let v = Value::str("payload");
/// assert_eq!(unframe(&frame(&v)).unwrap(), v);
/// ```
pub fn frame(v: &Value) -> Bytes {
    let mut buf = Vec::with_capacity(HEADER_LEN + 64);
    buf.resize(HEADER_LEN, 0);
    encode_into(v, &mut buf);
    finish_frame(&mut buf);
    Bytes::from(buf)
}

/// Validates the envelope (magic, version, length, checksum) and returns
/// the payload slice without decoding it. Shared by [`unframe`],
/// [`unframe_bytes`] and the raw peek API.
pub(crate) fn check_frame(input: &[u8]) -> Result<&[u8], WireError> {
    if input.len() < HEADER_LEN {
        return Err(WireError::UnexpectedEof {
            needed: HEADER_LEN - input.len(),
        });
    }
    if input[0..2] != MAGIC {
        return Err(WireError::BadMagic);
    }
    if input[2] != FRAME_VERSION {
        return Err(WireError::BadVersion(input[2]));
    }
    let expected = u32::from_le_bytes(input[3..7].try_into().unwrap());
    let len = u32::from_le_bytes(input[7..11].try_into().unwrap()) as usize;
    let body = &input[HEADER_LEN..];
    if body.len() < len {
        return Err(WireError::UnexpectedEof {
            needed: len - body.len(),
        });
    }
    if body.len() > len {
        return Err(WireError::TrailingBytes(body.len() - len));
    }
    let actual = crc32(body);
    if actual != expected {
        return Err(WireError::BadChecksum { expected, actual });
    }
    Ok(body)
}

/// Validates a frame and decodes its payload (copying decoder).
///
/// # Errors
///
/// * [`WireError::UnexpectedEof`] — shorter than the header or the
///   declared payload.
/// * [`WireError::BadMagic`] / [`WireError::BadVersion`] — wrong envelope.
/// * [`WireError::BadChecksum`] — payload corruption.
/// * [`WireError::TrailingBytes`] — bytes beyond the declared payload.
/// * any decode error from the payload itself.
pub fn unframe(input: &[u8]) -> Result<Value, WireError> {
    decode(check_frame(input)?)
}

/// Validates a frame and decodes its payload zero-copy: string and blob
/// leaves of the result alias the frame's refcounted buffer.
///
/// Accepts exactly the frames [`unframe`] accepts and produces equal
/// `Value`s; only the backing of the leaves differs.
///
/// ```
/// use wire::{frame, unframe_bytes, Value};
/// let v = Value::record([("key", Value::str("abc"))]);
/// assert_eq!(unframe_bytes(&frame(&v)).unwrap(), v);
/// ```
///
/// # Errors
///
/// As for [`unframe`].
pub fn unframe_bytes(input: &Bytes) -> Result<Value, WireError> {
    check_frame(input)?;
    decode_bytes(&input.slice(HEADER_LEN..input.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode;

    #[test]
    fn roundtrip() {
        let v = Value::record([("op", Value::str("get")), ("id", Value::U64(42))]);
        assert_eq!(unframe(&frame(&v)).unwrap(), v);
        assert_eq!(unframe_bytes(&frame(&v)).unwrap(), v);
    }

    #[test]
    fn short_header_rejected() {
        assert!(matches!(
            unframe(&[0x50]),
            Err(WireError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut f = frame(&Value::Null).to_vec();
        f[0] = 0x00;
        assert_eq!(unframe(&f), Err(WireError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut f = frame(&Value::Null).to_vec();
        f[2] = 99;
        assert_eq!(unframe(&f), Err(WireError::BadVersion(99)));
    }

    #[test]
    fn payload_corruption_detected() {
        let mut f = frame(&Value::str("sensitive")).to_vec();
        let last = f.len() - 1;
        f[last] ^= 0x01;
        assert!(matches!(unframe(&f), Err(WireError::BadChecksum { .. })));
        let f = Bytes::from(f);
        assert!(matches!(
            unframe_bytes(&f),
            Err(WireError::BadChecksum { .. })
        ));
    }

    #[test]
    fn truncated_payload_rejected() {
        let f = frame(&Value::str("some payload"));
        assert!(matches!(
            unframe(&f[..f.len() - 3]),
            Err(WireError::UnexpectedEof { needed: 3 })
        ));
    }

    #[test]
    fn extra_bytes_rejected() {
        let mut f = frame(&Value::Null).to_vec();
        f.push(0xAA);
        assert_eq!(unframe(&f), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn header_overhead_is_constant() {
        let small = frame(&Value::Null);
        let payload = encode(&Value::Null);
        assert_eq!(small.len(), HEADER_LEN + payload.len());
    }

    #[test]
    fn pooled_frame_matches_oneshot() {
        let v = Value::record([("op", Value::str("get")), ("id", Value::U64(42))]);
        let mut enc = crate::Encoder::new();
        assert_eq!(enc.frame(&v), frame(&v));
        // And the writer-based path produces an identical frame.
        let streamed = enc.frame_with(|w| {
            w.begin_record(2);
            w.key("op");
            w.str("get");
            w.key("id");
            w.u64(42);
        });
        assert_eq!(streamed, frame(&v));
    }

    #[test]
    fn zero_copy_unframe_aliases_the_datagram() {
        let v = Value::record([("payload", Value::blob(vec![0x5Au8; 128]))]);
        let f = frame(&v);
        let dec = unframe_bytes(&f).unwrap();
        let blob = dec.get_blob("payload").unwrap();
        let f_ptr = f.as_ref().as_ptr() as usize;
        let b_ptr = blob.as_ref().as_ptr() as usize;
        assert!(
            b_ptr >= f_ptr && b_ptr + blob.len() <= f_ptr + f.len(),
            "decoded blob should alias the frame"
        );
    }
}
