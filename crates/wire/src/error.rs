//! Errors produced while encoding or decoding wire data.

use std::fmt;

/// Error decoding (or framing) wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was complete.
    UnexpectedEof {
        /// How many more bytes were needed.
        needed: usize,
    },
    /// An unknown type tag was encountered.
    BadTag(u8),
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// Nesting exceeded [`crate::MAX_DEPTH`].
    TooDeep,
    /// A length prefix exceeded [`crate::MAX_LEN`].
    TooLong(u64),
    /// Decoding finished but input bytes remained.
    TrailingBytes(usize),
    /// A varint ran past its maximum width.
    BadVarint,
    /// Frame magic bytes did not match.
    BadMagic,
    /// Frame declared an unsupported format version.
    BadVersion(u8),
    /// Frame checksum mismatch (corrupt payload).
    BadChecksum {
        /// Checksum carried by the frame.
        expected: u32,
        /// Checksum computed over the payload.
        actual: u32,
    },
    /// A structured value was missing an expected field.
    MissingField(&'static str),
    /// A field existed but held the wrong kind of value.
    WrongKind {
        /// The kind the caller asked for.
        expected: &'static str,
        /// The kind actually present.
        actual: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { needed } => {
                write!(f, "unexpected end of input, {needed} more byte(s) needed")
            }
            WireError::BadTag(t) => write!(f, "unknown wire tag {t:#04x}"),
            WireError::BadUtf8 => write!(f, "string field held invalid utf-8"),
            WireError::TooDeep => write!(f, "value nesting exceeds maximum depth"),
            WireError::TooLong(n) => write!(f, "length prefix {n} exceeds maximum"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after value"),
            WireError::BadVarint => write!(f, "varint overran maximum width"),
            WireError::BadMagic => write!(f, "frame magic mismatch"),
            WireError::BadVersion(v) => write!(f, "unsupported frame version {v}"),
            WireError::BadChecksum { expected, actual } => write!(
                f,
                "frame checksum mismatch: expected {expected:#010x}, got {actual:#010x}"
            ),
            WireError::MissingField(name) => write!(f, "missing field `{name}`"),
            WireError::WrongKind { expected, actual } => {
                write!(f, "expected {expected}, found {actual}")
            }
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errs = [
            WireError::UnexpectedEof { needed: 3 },
            WireError::BadTag(0xff),
            WireError::BadUtf8,
            WireError::TooDeep,
            WireError::TooLong(1 << 40),
            WireError::TrailingBytes(2),
            WireError::BadVarint,
            WireError::BadMagic,
            WireError::BadVersion(9),
            WireError::BadChecksum {
                expected: 1,
                actual: 2,
            },
            WireError::MissingField("key"),
            WireError::WrongKind {
                expected: "u64",
                actual: "str",
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'));
        }
    }
}
