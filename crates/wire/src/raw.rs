//! Raw (lazily-decoded) views over encoded values.
//!
//! The RPC server's duplicate-suppression path only needs a handful of
//! header fields ("is this a request?", "which call id?") to decide
//! whether a datagram can be answered straight from the reply cache.
//! Materializing the full `Value` tree just to read two fields wastes
//! the win. [`RawRecord`] walks the encoding in place instead: the whole
//! record is structurally validated once (every tag, varint and length
//! checked — the same grammar the real decoder enforces), then field
//! lookups scan tag/length information and skip over everything else.
//! Nothing is allocated, and UTF-8 validation is only paid for string
//! fields actually read.

use crate::codec::{tag, Reader};
use crate::error::WireError;
use crate::frame::check_frame;
use crate::value::Value;

fn tag_name(t: u8) -> &'static str {
    match t {
        tag::NULL => "null",
        tag::FALSE | tag::TRUE => "bool",
        tag::U64 => "u64",
        tag::I64 => "i64",
        tag::F64 => "f64",
        tag::STR => "str",
        tag::BLOB => "blob",
        tag::LIST => "list",
        tag::RECORD => "record",
        _ => "unknown",
    }
}

/// A validated, zero-allocation view over one encoded record.
///
/// Construction proves the bytes are exactly one structurally
/// well-formed record (the peek cannot be desynchronized by hostile
/// lengths); field accessors then locate values by scanning and
/// skipping, decoding only what the caller asks for.
///
/// ```
/// use wire::{encode, RawRecord, Value};
/// let enc = encode(&Value::record([
///     ("t", Value::str("req")),
///     ("id", Value::U64(7)),
///     ("args", Value::list([Value::blob(vec![0u8; 1024])])),
/// ]));
/// let raw = RawRecord::parse(&enc).unwrap();
/// assert_eq!(raw.get_str("t").unwrap(), "req");
/// assert_eq!(raw.get_u64("id").unwrap(), 7);
/// // "args" was skipped over, never decoded.
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RawRecord<'a> {
    input: &'a [u8],
    /// Number of fields (from the record's count varint).
    count: usize,
    /// Offset of the first field (just past tag + count).
    fields_at: usize,
}

impl<'a> RawRecord<'a> {
    /// Validates `input` as exactly one encoded record and wraps it.
    ///
    /// # Errors
    ///
    /// * [`WireError::WrongKind`] if the value is not a record.
    /// * [`WireError::TrailingBytes`] if input remains after the record.
    /// * any structural decode error ([`WireError::UnexpectedEof`],
    ///   [`WireError::BadTag`], [`WireError::BadVarint`], …).
    pub fn parse(input: &'a [u8]) -> Result<RawRecord<'a>, WireError> {
        let mut r = Reader::new(input);
        let t = r.read_byte()?;
        if t != tag::RECORD {
            return Err(WireError::WrongKind {
                expected: "record",
                actual: tag_name(t),
            });
        }
        let count = r.read_varint()?;
        if count > crate::MAX_LEN {
            return Err(WireError::TooLong(count));
        }
        let count = count as usize;
        let fields_at = r.pos;
        // Structural validation of every field: keys are
        // length-checked, values are walked by the same grammar the
        // decoder uses. UTF-8 of keys/strings is deliberately not
        // checked here — accessors validate what they actually read,
        // and the full decoder re-checks everything if the message is
        // decoded for real.
        for _ in 0..count {
            let klen = r.read_varint()?;
            if klen > crate::MAX_LEN {
                return Err(WireError::TooLong(klen));
            }
            r.skip_bytes(klen as usize)?;
            r.skip_value(1)?;
        }
        if r.pos != input.len() {
            return Err(WireError::TrailingBytes(input.len() - r.pos));
        }
        Ok(RawRecord {
            input,
            count,
            fields_at,
        })
    }

    /// Number of fields in the record.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the record has no fields.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Locates a field by name, returning a reader positioned at its
    /// value. First match wins, like [`Value::get`]. Infallible walking:
    /// `parse` already validated the structure.
    fn seek(&self, name: &str) -> Option<Reader<'a>> {
        let mut r = Reader::new(self.input);
        r.pos = self.fields_at;
        for _ in 0..self.count {
            let klen = r.read_varint().ok()? as usize;
            let start = r.pos;
            r.skip_bytes(klen).ok()?;
            if &self.input[start..r.pos] == name.as_bytes() {
                return Some(r);
            }
            r.skip_value(1).ok()?;
        }
        None
    }

    /// Whether a field with this name exists.
    pub fn has(&self, name: &str) -> bool {
        self.seek(name).is_some()
    }

    /// Reads a string field without allocating (UTF-8 is validated for
    /// this field only).
    ///
    /// # Errors
    ///
    /// [`WireError::MissingField`] if absent, [`WireError::WrongKind`] if
    /// present with another kind, [`WireError::BadUtf8`] if invalid.
    pub fn get_str(&self, name: &'static str) -> Result<&'a str, WireError> {
        let mut r = self.seek(name).ok_or(WireError::MissingField(name))?;
        let t = r.read_byte()?;
        if t != tag::STR {
            return Err(WireError::WrongKind {
                expected: "str",
                actual: tag_name(t),
            });
        }
        r.str_borrowed()
    }

    /// Reads a `u64` field.
    ///
    /// # Errors
    ///
    /// [`WireError::MissingField`] if absent, [`WireError::WrongKind`] if
    /// present with another kind.
    pub fn get_u64(&self, name: &'static str) -> Result<u64, WireError> {
        let mut r = self.seek(name).ok_or(WireError::MissingField(name))?;
        let t = r.read_byte()?;
        if t != tag::U64 {
            return Err(WireError::WrongKind {
                expected: "u64",
                actual: tag_name(t),
            });
        }
        r.read_varint()
    }

    /// Reads an `i64` field.
    ///
    /// # Errors
    ///
    /// [`WireError::MissingField`] if absent, [`WireError::WrongKind`] if
    /// present with another kind.
    pub fn get_i64(&self, name: &'static str) -> Result<i64, WireError> {
        let mut r = self.seek(name).ok_or(WireError::MissingField(name))?;
        let t = r.read_byte()?;
        if t != tag::I64 {
            return Err(WireError::WrongKind {
                expected: "i64",
                actual: tag_name(t),
            });
        }
        Ok(Reader::unzigzag64(r.read_varint()?))
    }

    /// Views a nested record field as another [`RawRecord`] — still
    /// zero-allocation.
    ///
    /// # Errors
    ///
    /// [`WireError::MissingField`] if absent, [`WireError::WrongKind`] if
    /// present with another kind.
    pub fn get_record(&self, name: &'static str) -> Result<RawRecord<'a>, WireError> {
        let mut r = self.seek(name).ok_or(WireError::MissingField(name))?;
        let start = r.pos;
        r.skip_value(1)?;
        RawRecord::parse(&self.input[start..r.pos])
    }

    /// Materializes one field as a full [`Value`] (copying decoder),
    /// leaving the rest of the record untouched.
    ///
    /// # Errors
    ///
    /// [`WireError::MissingField`] if absent, or any decode error.
    pub fn get_value(&self, name: &'static str) -> Result<Value, WireError> {
        let mut r = self.seek(name).ok_or(WireError::MissingField(name))?;
        r.value(1)
    }
}

/// Validates a frame's envelope (magic, version, length, CRC) and
/// returns a [`RawRecord`] view of its payload — the zero-allocation
/// receive path for peeking at message headers before deciding whether
/// to decode in full.
///
/// ```
/// use wire::{frame, peek_frame, Value};
/// let f = frame(&Value::record([("t", Value::str("req")), ("id", Value::U64(3))]));
/// let raw = peek_frame(&f).unwrap();
/// assert_eq!(raw.get_str("t").unwrap(), "req");
/// ```
///
/// # Errors
///
/// Envelope errors as for [`crate::unframe`], plus
/// [`WireError::WrongKind`] if the payload is not a record.
pub fn peek_frame(input: &[u8]) -> Result<RawRecord<'_>, WireError> {
    RawRecord::parse(check_frame(input)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode;
    use crate::frame::frame;

    fn sample() -> Value {
        Value::record([
            ("t", Value::str("req")),
            ("id", Value::U64(4242)),
            ("neg", Value::I64(-17)),
            (
                "args",
                Value::list([Value::blob(vec![1u8; 64]), Value::str("x")]),
            ),
            ("nested", Value::record([("deep", Value::Bool(true))])),
        ])
    }

    #[test]
    fn peek_reads_fields_without_decoding() {
        let enc = encode(&sample());
        let raw = RawRecord::parse(&enc).unwrap();
        assert_eq!(raw.len(), 5);
        assert!(!raw.is_empty());
        assert_eq!(raw.get_str("t").unwrap(), "req");
        assert_eq!(raw.get_u64("id").unwrap(), 4242);
        assert_eq!(raw.get_i64("neg").unwrap(), -17);
        assert!(raw.has("args"));
        assert!(!raw.has("absent"));
        assert_eq!(
            raw.get_u64("absent"),
            Err(WireError::MissingField("absent"))
        );
        assert_eq!(
            raw.get_u64("t"),
            Err(WireError::WrongKind {
                expected: "u64",
                actual: "str"
            })
        );
        assert_eq!(
            raw.get_str("id"),
            Err(WireError::WrongKind {
                expected: "str",
                actual: "u64"
            })
        );
    }

    #[test]
    fn get_value_materializes_one_field() {
        let enc = encode(&sample());
        let raw = RawRecord::parse(&enc).unwrap();
        let args = raw.get_value("args").unwrap();
        assert_eq!(args.as_list().unwrap().len(), 2);
        let nested = raw.get_value("nested").unwrap();
        assert_eq!(nested.get_bool("deep"), Ok(true));
    }

    #[test]
    fn get_record_views_nested_record_in_place() {
        let enc = encode(&sample());
        let raw = RawRecord::parse(&enc).unwrap();
        let nested = raw.get_record("nested").unwrap();
        assert_eq!(nested.len(), 1);
        assert!(nested.has("deep"));
        assert_eq!(
            raw.get_record("args").unwrap_err(),
            WireError::WrongKind {
                expected: "record",
                actual: "list"
            }
        );
        assert_eq!(
            raw.get_record("absent").unwrap_err(),
            WireError::MissingField("absent")
        );
    }

    #[test]
    fn non_record_rejected() {
        let enc = encode(&Value::U64(1));
        assert_eq!(
            RawRecord::parse(&enc).unwrap_err(),
            WireError::WrongKind {
                expected: "record",
                actual: "u64"
            }
        );
    }

    #[test]
    fn structural_damage_is_caught_at_parse() {
        let enc = encode(&sample()).to_vec();
        // Truncations anywhere must be rejected at parse time, so the
        // accessors can never read out of bounds.
        for cut in 0..enc.len() {
            assert!(RawRecord::parse(&enc[..cut]).is_err(), "cut={cut}");
        }
        // Trailing garbage likewise.
        let mut extra = enc.clone();
        extra.push(0);
        assert_eq!(
            RawRecord::parse(&extra).unwrap_err(),
            WireError::TrailingBytes(1)
        );
    }

    #[test]
    fn peek_agrees_with_full_decoder_on_acceptance() {
        // A corpus of malformed payloads: the peek must reject exactly
        // what decode rejects (structure-wise; UTF-8 of unread strings
        // excepted by design).
        let bad: Vec<Vec<u8>> = vec![
            vec![],
            vec![0xEE],                               // unknown tag
            vec![crate::codec::tag::RECORD],          // missing count
            vec![crate::codec::tag::RECORD, 1],       // missing field
            vec![crate::codec::tag::U64, 0x80, 0x00], // non-canonical varint
        ];
        for raw in &bad {
            assert!(crate::decode(raw).is_err());
            assert!(RawRecord::parse(raw).is_err());
        }
    }

    #[test]
    fn duplicate_keys_first_match_wins() {
        let v = Value::Record(vec![
            ("k".into(), Value::U64(1)),
            ("k".into(), Value::U64(2)),
        ]);
        let enc = encode(&v);
        let raw = RawRecord::parse(&enc).unwrap();
        assert_eq!(raw.get_u64("k").unwrap(), 1);
    }

    #[test]
    fn peek_frame_checks_the_envelope() {
        let f = frame(&sample());
        let raw = peek_frame(&f).unwrap();
        assert_eq!(raw.get_str("t").unwrap(), "req");
        let mut corrupt = f.to_vec();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 1;
        assert!(matches!(
            peek_frame(&corrupt),
            Err(WireError::BadChecksum { .. })
        ));
    }
}
