//! Canonical binary encoding of [`Value`].
//!
//! The format is a compact tag-length-value scheme:
//!
//! | tag | kind   | payload |
//! |-----|--------|---------|
//! | 0   | null   | —       |
//! | 1   | false  | —       |
//! | 2   | true   | —       |
//! | 3   | u64    | varint  |
//! | 4   | i64    | zigzag varint |
//! | 5   | f64    | 8 bytes little-endian |
//! | 6   | str    | varint length + UTF-8 |
//! | 7   | blob   | varint length + bytes |
//! | 8   | list   | varint count + items  |
//! | 9   | record | varint count + (str key, value) pairs |
//!
//! Encoding is canonical: a given `Value` always produces the same bytes,
//! so checksums and duplicate-suppression can operate on the encoding.

use bytes::{BufMut, Bytes, BytesMut};

use crate::error::WireError;
use crate::value::Value;

/// Maximum nesting depth accepted by the decoder (guards against stack
/// exhaustion from hostile input).
pub const MAX_DEPTH: usize = 32;

/// Maximum declared length of any string/blob/list/record (guards against
/// allocation bombs from hostile input).
pub const MAX_LEN: u64 = 1 << 28;

mod tag {
    pub const NULL: u8 = 0;
    pub const FALSE: u8 = 1;
    pub const TRUE: u8 = 2;
    pub const U64: u8 = 3;
    pub const I64: u8 = 4;
    pub const F64: u8 = 5;
    pub const STR: u8 = 6;
    pub const BLOB: u8 = 7;
    pub const LIST: u8 = 8;
    pub const RECORD: u8 = 9;
}

fn put_varint(buf: &mut BytesMut, mut n: u64) {
    loop {
        let byte = (n & 0x7F) as u8;
        n >>= 7;
        if n == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn zigzag(n: i64) -> u64 {
    ((n << 1) ^ (n >> 63)) as u64
}

fn unzigzag(n: u64) -> i64 {
    ((n >> 1) as i64) ^ -((n & 1) as i64)
}

fn encode_into(v: &Value, buf: &mut BytesMut) {
    match v {
        Value::Null => buf.put_u8(tag::NULL),
        Value::Bool(false) => buf.put_u8(tag::FALSE),
        Value::Bool(true) => buf.put_u8(tag::TRUE),
        Value::U64(n) => {
            buf.put_u8(tag::U64);
            put_varint(buf, *n);
        }
        Value::I64(n) => {
            buf.put_u8(tag::I64);
            put_varint(buf, zigzag(*n));
        }
        Value::F64(x) => {
            buf.put_u8(tag::F64);
            buf.put_f64_le(*x);
        }
        Value::Str(s) => {
            buf.put_u8(tag::STR);
            put_varint(buf, s.len() as u64);
            buf.put_slice(s.as_bytes());
        }
        Value::Blob(b) => {
            buf.put_u8(tag::BLOB);
            put_varint(buf, b.len() as u64);
            buf.put_slice(b);
        }
        Value::List(items) => {
            buf.put_u8(tag::LIST);
            put_varint(buf, items.len() as u64);
            for item in items {
                encode_into(item, buf);
            }
        }
        Value::Record(fields) => {
            buf.put_u8(tag::RECORD);
            put_varint(buf, fields.len() as u64);
            for (k, v) in fields {
                put_varint(buf, k.len() as u64);
                buf.put_slice(k.as_bytes());
                encode_into(v, buf);
            }
        }
    }
}

/// Encodes a value to its canonical byte representation.
///
/// ```
/// use wire::{encode, decode, Value};
/// let v = Value::record([("n", Value::U64(300))]);
/// assert_eq!(decode(&encode(&v)).unwrap(), v);
/// ```
pub fn encode(v: &Value) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    encode_into(v, &mut buf);
    buf.freeze()
}

struct Reader<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.input.len() {
            return Err(WireError::UnexpectedEof {
                needed: self.pos + n - self.input.len(),
            });
        }
        let s = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn byte(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn varint(&mut self) -> Result<u64, WireError> {
        let mut n: u64 = 0;
        for shift in (0..64).step_by(7) {
            let b = self.byte()?;
            n |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                // Reject non-canonical over-wide encodings of small values
                // in the final (10th) byte position.
                if shift == 63 && b > 1 {
                    return Err(WireError::BadVarint);
                }
                return Ok(n);
            }
        }
        Err(WireError::BadVarint)
    }

    fn length(&mut self) -> Result<usize, WireError> {
        let n = self.varint()?;
        if n > MAX_LEN {
            return Err(WireError::TooLong(n));
        }
        Ok(n as usize)
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.length()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn value(&mut self, depth: usize) -> Result<Value, WireError> {
        if depth > MAX_DEPTH {
            return Err(WireError::TooDeep);
        }
        let t = self.byte()?;
        match t {
            tag::NULL => Ok(Value::Null),
            tag::FALSE => Ok(Value::Bool(false)),
            tag::TRUE => Ok(Value::Bool(true)),
            tag::U64 => Ok(Value::U64(self.varint()?)),
            tag::I64 => Ok(Value::I64(unzigzag(self.varint()?))),
            tag::F64 => {
                let raw = self.take(8)?;
                Ok(Value::F64(f64::from_le_bytes(raw.try_into().unwrap())))
            }
            tag::STR => Ok(Value::Str(self.string()?)),
            tag::BLOB => {
                let len = self.length()?;
                Ok(Value::Blob(Bytes::copy_from_slice(self.take(len)?)))
            }
            tag::LIST => {
                let count = self.length()?;
                let mut items = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    items.push(self.value(depth + 1)?);
                }
                Ok(Value::List(items))
            }
            tag::RECORD => {
                let count = self.length()?;
                let mut fields = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    let k = self.string()?;
                    let v = self.value(depth + 1)?;
                    fields.push((k, v));
                }
                Ok(Value::Record(fields))
            }
            other => Err(WireError::BadTag(other)),
        }
    }
}

/// Decodes a value, requiring the input to be exactly one encoded value.
///
/// # Errors
///
/// Any [`WireError`] describing the malformation, including
/// [`WireError::TrailingBytes`] if input remains after the value.
pub fn decode(input: &[u8]) -> Result<Value, WireError> {
    let mut r = Reader { input, pos: 0 };
    let v = r.value(0)?;
    if r.pos != input.len() {
        return Err(WireError::TrailingBytes(input.len() - r.pos));
    }
    Ok(v)
}

/// Decodes a value from the front of `input`, returning it along with the
/// number of bytes consumed. Useful when concatenating encodings.
///
/// # Errors
///
/// Any [`WireError`] describing the malformation.
pub fn decode_prefix(input: &[u8]) -> Result<(Value, usize), WireError> {
    let mut r = Reader { input, pos: 0 };
    let v = r.value(0)?;
    Ok((v, r.pos))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Value) {
        let enc = encode(&v);
        let dec = decode(&enc).unwrap();
        assert_eq!(dec, v);
    }

    #[test]
    fn roundtrip_scalars() {
        roundtrip(Value::Null);
        roundtrip(Value::Bool(true));
        roundtrip(Value::Bool(false));
        roundtrip(Value::U64(0));
        roundtrip(Value::U64(127));
        roundtrip(Value::U64(128));
        roundtrip(Value::U64(u64::MAX));
        roundtrip(Value::I64(0));
        roundtrip(Value::I64(-1));
        roundtrip(Value::I64(i64::MIN));
        roundtrip(Value::I64(i64::MAX));
        roundtrip(Value::F64(0.0));
        roundtrip(Value::F64(-123.456));
        roundtrip(Value::F64(f64::INFINITY));
    }

    #[test]
    fn roundtrip_compound() {
        roundtrip(Value::str(""));
        roundtrip(Value::str("héllo wörld"));
        roundtrip(Value::blob(vec![0u8, 255, 1, 2]));
        roundtrip(Value::list([Value::U64(1), Value::str("two"), Value::Null]));
        roundtrip(Value::record([
            (
                "nested",
                Value::record([("deep", Value::list([Value::Bool(true)]))]),
            ),
            ("blob", Value::blob(vec![9u8; 300])),
        ]));
    }

    #[test]
    fn canonical_encoding_is_stable() {
        let v = Value::record([("a", Value::U64(1)), ("b", Value::str("x"))]);
        assert_eq!(encode(&v), encode(&v.clone()));
    }

    #[test]
    fn varint_boundaries() {
        for n in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            roundtrip(Value::U64(n));
        }
    }

    #[test]
    fn truncated_input_reports_eof() {
        let enc = encode(&Value::str("hello"));
        for cut in 0..enc.len() {
            let err = decode(&enc[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::UnexpectedEof { .. }),
                "cut={cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut enc = encode(&Value::U64(5)).to_vec();
        enc.push(0);
        assert_eq!(decode(&enc), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(decode(&[0xEE]), Err(WireError::BadTag(0xEE)));
    }

    #[test]
    fn invalid_utf8_rejected() {
        // STR tag, length 2, invalid UTF-8 bytes.
        let raw = [super::tag::STR, 2, 0xFF, 0xFE];
        assert_eq!(decode(&raw), Err(WireError::BadUtf8));
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(super::tag::BLOB);
        put_varint(&mut buf, MAX_LEN + 1);
        assert_eq!(decode(&buf), Err(WireError::TooLong(MAX_LEN + 1)));
    }

    #[test]
    fn excessive_depth_rejected() {
        let mut v = Value::Null;
        for _ in 0..(MAX_DEPTH + 2) {
            v = Value::List(vec![v]);
        }
        let enc = encode(&v);
        assert_eq!(decode(&enc), Err(WireError::TooDeep));
    }

    #[test]
    fn depth_at_limit_accepted() {
        let mut v = Value::U64(7);
        for _ in 0..MAX_DEPTH {
            v = Value::List(vec![v]);
        }
        roundtrip(v);
    }

    #[test]
    fn batch_shaped_wide_nesting_roundtrips() {
        // The RPC layer coalesces pipelined requests into one datagram:
        // a record holding a *wide* list of per-call request records.
        // Width must cost no depth — only the envelope's three levels
        // (record → list → record) plus whatever the deepest args use.
        let call = |id: u64, deep_args: Value| {
            Value::record([
                ("op", Value::str("work")),
                ("id", Value::U64(id)),
                ("args", deep_args),
            ])
        };
        let mut deep = Value::U64(7);
        // Envelope: batch record (depth 0) + call list (1) + call
        // record (2) puts the args value at depth 3, so the args may
        // nest MAX_DEPTH - 3 levels before the limit bites.
        for _ in 0..(MAX_DEPTH - 3) {
            deep = Value::List(vec![deep]);
        }
        let calls: Vec<Value> = (0..64)
            .map(|i| call(i, if i == 63 { deep.clone() } else { Value::Null }))
            .collect();
        let batch = Value::record([("batch", Value::List(calls))]);
        roundtrip(batch.clone());

        // One level deeper in the args and the whole batch is rejected.
        let over = Value::record([("batch", Value::List(vec![call(0, Value::List(vec![deep]))]))]);
        assert_eq!(decode(&encode(&over)), Err(WireError::TooDeep));
    }

    #[test]
    fn decode_prefix_reports_consumed() {
        let a = encode(&Value::U64(300));
        let b = encode(&Value::str("tail"));
        let joined: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        let (v, used) = decode_prefix(&joined).unwrap();
        assert_eq!(v, Value::U64(300));
        assert_eq!(used, a.len());
        let (v2, used2) = decode_prefix(&joined[used..]).unwrap();
        assert_eq!(v2, Value::str("tail"));
        assert_eq!(used + used2, joined.len());
    }

    #[test]
    fn overlong_varint_rejected() {
        // 11 continuation bytes is over the maximum 10-byte varint.
        let raw = [
            super::tag::U64,
            0x80,
            0x80,
            0x80,
            0x80,
            0x80,
            0x80,
            0x80,
            0x80,
            0x80,
            0x80,
            0x01,
        ];
        assert_eq!(decode(&raw), Err(WireError::BadVarint));
    }

    #[test]
    fn zigzag_roundtrip() {
        for n in [0i64, -1, 1, i64::MIN, i64::MAX, -123456789] {
            assert_eq!(unzigzag(zigzag(n)), n);
        }
    }
}
