//! Canonical binary encoding of [`Value`].
//!
//! The format is a compact tag-length-value scheme:
//!
//! | tag | kind   | payload |
//! |-----|--------|---------|
//! | 0   | null   | —       |
//! | 1   | false  | —       |
//! | 2   | true   | —       |
//! | 3   | u64    | varint  |
//! | 4   | i64    | zigzag varint |
//! | 5   | f64    | 8 bytes little-endian |
//! | 6   | str    | varint length + UTF-8 |
//! | 7   | blob   | varint length + bytes |
//! | 8   | list   | varint count + items  |
//! | 9   | record | varint count + (str key, value) pairs |
//! | 10  | ref    | store str + key str + varint payload length + 4-byte CRC-32 |
//!
//! Encoding is canonical: a given `Value` always produces the same bytes,
//! so checksums and duplicate-suppression can operate on the encoding.
//! Canonicality cuts both ways: the decoder rejects overlong varints
//! (continuation bytes followed by a redundant `0x00` terminator), so no
//! two distinct byte strings decode to the same value.
//!
//! Two decoders share one grammar:
//!
//! * [`decode`] — the *tree* decoder: works on any `&[u8]` and copies
//!   string/blob payloads into fresh buffers.
//! * [`decode_bytes`] — the *zero-copy* decoder: works on a refcounted
//!   [`Bytes`] frame and returns `Value`s whose `Str`/`Blob` payloads
//!   (and record keys) are cheap slices of the input, sharing its
//!   allocation.
//!
//! Encoding offers a matching pair: the [`encode`] convenience and the
//! pooled [`Encoder`], which reuses one scratch buffer across messages
//! and exposes a borrow-based [`ValueWriter`] so protocol layers can
//! marshal straight from their own fields without building an
//! intermediate `Value` tree.

use bytes::Bytes;

use crate::error::WireError;
use crate::value::{BlobRef, Value};
use crate::wstr::WStr;

/// Maximum nesting depth accepted by the decoder (guards against stack
/// exhaustion from hostile input).
pub const MAX_DEPTH: usize = 32;

/// Maximum declared length of any string/blob/list/record (guards against
/// allocation bombs from hostile input).
pub const MAX_LEN: u64 = 1 << 28;

/// Maximum payload length a [`Value::Ref`] may declare, and the ceiling a
/// blob store enforces on chunked uploads. A ref's bytes live out-of-band
/// so they may legitimately exceed [`MAX_LEN`], but a decoder still
/// refuses absurd declared lengths outright ([`WireError::TooLong`],
/// before any resolver allocates reassembly buffers for them).
pub const MAX_BULK_LEN: u64 = 1 << 32;

pub(crate) mod tag {
    pub const NULL: u8 = 0;
    pub const FALSE: u8 = 1;
    pub const TRUE: u8 = 2;
    pub const U64: u8 = 3;
    pub const I64: u8 = 4;
    pub const F64: u8 = 5;
    pub const STR: u8 = 6;
    pub const BLOB: u8 = 7;
    pub const LIST: u8 = 8;
    pub const RECORD: u8 = 9;
    pub const REF: u8 = 10;
}

pub(crate) fn put_varint(buf: &mut Vec<u8>, mut n: u64) {
    loop {
        let byte = (n & 0x7F) as u8;
        n >>= 7;
        if n == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn zigzag(n: i64) -> u64 {
    ((n << 1) ^ (n >> 63)) as u64
}

fn unzigzag(n: u64) -> i64 {
    ((n >> 1) as i64) ^ -((n & 1) as i64)
}

pub(crate) fn encode_into(v: &Value, buf: &mut Vec<u8>) {
    match v {
        Value::Null => buf.push(tag::NULL),
        Value::Bool(false) => buf.push(tag::FALSE),
        Value::Bool(true) => buf.push(tag::TRUE),
        Value::U64(n) => {
            buf.push(tag::U64);
            put_varint(buf, *n);
        }
        Value::I64(n) => {
            buf.push(tag::I64);
            put_varint(buf, zigzag(*n));
        }
        Value::F64(x) => {
            buf.push(tag::F64);
            buf.extend_from_slice(&x.to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(tag::STR);
            put_varint(buf, s.len() as u64);
            buf.extend_from_slice(s.as_bytes());
        }
        Value::Blob(b) => {
            buf.push(tag::BLOB);
            put_varint(buf, b.len() as u64);
            buf.extend_from_slice(b);
        }
        Value::List(items) => {
            buf.push(tag::LIST);
            put_varint(buf, items.len() as u64);
            for item in items {
                encode_into(item, buf);
            }
        }
        Value::Record(fields) => {
            buf.push(tag::RECORD);
            put_varint(buf, fields.len() as u64);
            for (k, v) in fields {
                put_varint(buf, k.len() as u64);
                buf.extend_from_slice(k.as_bytes());
                encode_into(v, buf);
            }
        }
        Value::Ref(r) => {
            buf.push(tag::REF);
            put_varint(buf, r.store.len() as u64);
            buf.extend_from_slice(r.store.as_bytes());
            put_varint(buf, r.key.len() as u64);
            buf.extend_from_slice(r.key.as_bytes());
            put_varint(buf, r.len);
            buf.extend_from_slice(&r.crc.to_le_bytes());
        }
    }
}

/// Encodes a value to its canonical byte representation.
///
/// One-shot convenience; hot paths that encode many messages should hold
/// an [`Encoder`] and reuse its buffer.
///
/// ```
/// use wire::{encode, decode, Value};
/// let v = Value::record([("n", Value::U64(300))]);
/// assert_eq!(decode(&encode(&v)).unwrap(), v);
/// ```
pub fn encode(v: &Value) -> Bytes {
    let mut buf = Vec::with_capacity(64);
    encode_into(v, &mut buf);
    Bytes::from(buf)
}

/// A streaming value writer over a borrowed buffer.
///
/// Protocol layers use this to marshal straight from their own fields —
/// no intermediate `Value` tree, no cloning of operation names or
/// arguments. Obtain one from [`Encoder::encode_with`] or
/// [`Encoder::frame_with`][crate::Encoder::frame_with].
///
/// The writer is *trusted*: the element counts passed to
/// [`ValueWriter::begin_list`] / [`ValueWriter::begin_record`] must match
/// the number of items actually written, and every record entry must be a
/// key followed by exactly one value. A miscounted message is not unsafe
/// — it simply produces bytes the decoder will reject.
#[derive(Debug)]
pub struct ValueWriter<'a> {
    buf: &'a mut Vec<u8>,
}

impl<'a> ValueWriter<'a> {
    pub(crate) fn new(buf: &'a mut Vec<u8>) -> ValueWriter<'a> {
        ValueWriter { buf }
    }

    /// Writes a null.
    pub fn null(&mut self) {
        self.buf.push(tag::NULL);
    }

    /// Writes a bool.
    pub fn bool(&mut self, b: bool) {
        self.buf.push(if b { tag::TRUE } else { tag::FALSE });
    }

    /// Writes a u64.
    pub fn u64(&mut self, n: u64) {
        self.buf.push(tag::U64);
        put_varint(self.buf, n);
    }

    /// Writes an i64.
    pub fn i64(&mut self, n: i64) {
        self.buf.push(tag::I64);
        put_varint(self.buf, zigzag(n));
    }

    /// Writes an f64.
    pub fn f64(&mut self, x: f64) {
        self.buf.push(tag::F64);
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Writes a string by reference.
    pub fn str(&mut self, s: &str) {
        self.buf.push(tag::STR);
        put_varint(self.buf, s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a blob by reference.
    pub fn blob(&mut self, b: &[u8]) {
        self.buf.push(tag::BLOB);
        put_varint(self.buf, b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Opens a list of exactly `count` items; write each one next.
    pub fn begin_list(&mut self, count: usize) {
        self.buf.push(tag::LIST);
        put_varint(self.buf, count as u64);
    }

    /// Opens a record of exactly `count` fields; write each as a
    /// [`ValueWriter::key`] followed by one value.
    pub fn begin_record(&mut self, count: usize) {
        self.buf.push(tag::RECORD);
        put_varint(self.buf, count as u64);
    }

    /// Writes a record field key (inside [`ValueWriter::begin_record`]).
    pub fn key(&mut self, k: &str) {
        put_varint(self.buf, k.len() as u64);
        self.buf.extend_from_slice(k.as_bytes());
    }

    /// Writes a whole [`Value`] tree by reference.
    pub fn value(&mut self, v: &Value) {
        encode_into(v, self.buf);
    }

    /// Writes an out-of-band blob reference ([`Value::Ref`]).
    pub fn blob_ref(&mut self, store: &str, key: &str, len: u64, crc: u32) {
        self.buf.push(tag::REF);
        put_varint(self.buf, store.len() as u64);
        self.buf.extend_from_slice(store.as_bytes());
        put_varint(self.buf, key.len() as u64);
        self.buf.extend_from_slice(key.as_bytes());
        put_varint(self.buf, len);
        self.buf.extend_from_slice(&crc.to_le_bytes());
    }
}

/// A reusable encoder with a pooled scratch buffer.
///
/// The one-shot [`encode`] / [`frame`][crate::frame] helpers allocate a
/// fresh buffer (and grow it) per message; an `Encoder` amortizes that by
/// encoding into one retained scratch buffer and copying out a
/// right-sized [`Bytes`] at the end — steady-state, one exact-size
/// allocation per message and zero growth reallocations.
///
/// ```
/// use wire::{decode, Encoder, Value};
/// let mut enc = Encoder::new();
/// let v = Value::record([("n", Value::U64(300))]);
/// let a = enc.encode(&v);
/// let b = enc.encode(&v); // reuses the same scratch buffer
/// assert_eq!(a, b);
/// assert_eq!(decode(&a).unwrap(), v);
/// ```
#[derive(Debug, Default)]
pub struct Encoder {
    scratch: Vec<u8>,
}

impl Encoder {
    /// An encoder with an empty scratch buffer (it warms up after the
    /// first message).
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// An encoder pre-sized for messages of about `cap` bytes.
    pub fn with_capacity(cap: usize) -> Encoder {
        Encoder {
            scratch: Vec::with_capacity(cap),
        }
    }

    /// Encodes one value, reusing the scratch buffer.
    pub fn encode(&mut self, v: &Value) -> Bytes {
        self.scratch.clear();
        encode_into(v, &mut self.scratch);
        Bytes::copy_from_slice(&self.scratch)
    }

    /// Encodes one value written through a [`ValueWriter`] (borrow-based:
    /// no intermediate tree).
    pub fn encode_with(&mut self, f: impl FnOnce(&mut ValueWriter<'_>)) -> Bytes {
        self.scratch.clear();
        f(&mut ValueWriter::new(&mut self.scratch));
        Bytes::copy_from_slice(&self.scratch)
    }

    /// Frames one value (checksummed envelope), reusing the scratch
    /// buffer. Equivalent to [`frame`][crate::frame] but pooled.
    pub fn frame(&mut self, v: &Value) -> Bytes {
        self.frame_with(|w| w.value(v))
    }

    /// Frames one value written through a [`ValueWriter`]. The closure
    /// must write exactly one value; the encoder prepends the
    /// magic/version/CRC-32/length header over whatever was written.
    pub fn frame_with(&mut self, f: impl FnOnce(&mut ValueWriter<'_>)) -> Bytes {
        self.scratch.clear();
        self.scratch.resize(crate::frame::HEADER_LEN, 0);
        f(&mut ValueWriter::new(&mut self.scratch));
        crate::frame::finish_frame(&mut self.scratch);
        Bytes::copy_from_slice(&self.scratch)
    }
}

pub(crate) struct Reader<'a> {
    pub(crate) input: &'a [u8],
    pub(crate) pos: usize,
    /// When decoding from a refcounted frame, the buffer `input` borrows
    /// from (`input == &shared[base..]`): str/blob payloads become
    /// zero-copy slices of it instead of fresh allocations.
    shared: Option<(&'a Bytes, usize)>,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(input: &'a [u8]) -> Reader<'a> {
        Reader {
            input,
            pos: 0,
            shared: None,
        }
    }

    fn new_shared(input: &'a Bytes) -> Reader<'a> {
        Reader {
            input,
            pos: 0,
            shared: Some((input, 0)),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(WireError::UnexpectedEof { needed: n })?;
        if end > self.input.len() {
            return Err(WireError::UnexpectedEof {
                needed: end - self.input.len(),
            });
        }
        let s = &self.input[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn byte(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn varint(&mut self) -> Result<u64, WireError> {
        let mut n: u64 = 0;
        for shift in (0..64).step_by(7) {
            let b = self.byte()?;
            n |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                // Canonicality: a continuation byte followed by a 0x00
                // terminator encodes the same value in more bytes — e.g.
                // [0x80, 0x00] is an overlong encoding of 0. Reject it so
                // a value has exactly one encoding (checksums and
                // duplicate-suppression rely on that). A lone 0x00 first
                // byte is the canonical zero and stays legal.
                if shift > 0 && b == 0 {
                    return Err(WireError::BadVarint);
                }
                // Reject non-canonical over-wide encodings of small values
                // in the final (10th) byte position.
                if shift == 63 && b > 1 {
                    return Err(WireError::BadVarint);
                }
                return Ok(n);
            }
        }
        Err(WireError::BadVarint)
    }

    fn length(&mut self) -> Result<usize, WireError> {
        let n = self.varint()?;
        if n > MAX_LEN {
            return Err(WireError::TooLong(n));
        }
        Ok(n as usize)
    }

    /// Reads a [`Value::Ref`] declared payload length. Bulk payloads live
    /// out-of-band so the ceiling is [`MAX_BULK_LEN`], not [`MAX_LEN`] —
    /// but a hostile declared length is still rejected cleanly here,
    /// before any resolver trusts it enough to allocate.
    fn bulk_length(&mut self) -> Result<u64, WireError> {
        let n = self.varint()?;
        if n > MAX_BULK_LEN {
            return Err(WireError::TooLong(n));
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string: a zero-copy slice of the
    /// shared buffer when one is attached, a fresh copy otherwise.
    fn string(&mut self) -> Result<WStr, WireError> {
        let len = self.length()?;
        let start = self.pos;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| WireError::BadUtf8)?;
        match self.shared {
            // SAFETY: just validated as UTF-8 above.
            Some((buf, base)) => {
                Ok(unsafe { WStr::from_utf8_unchecked(buf.slice(base + start..base + self.pos)) })
            }
            None => Ok(unsafe { WStr::from_utf8_unchecked(Bytes::copy_from_slice(bytes)) }),
        }
    }

    fn blob(&mut self) -> Result<Bytes, WireError> {
        let len = self.length()?;
        let start = self.pos;
        let bytes = self.take(len)?;
        match self.shared {
            Some((buf, base)) => Ok(buf.slice(base + start..base + self.pos)),
            None => Ok(Bytes::copy_from_slice(bytes)),
        }
    }

    pub(crate) fn value(&mut self, depth: usize) -> Result<Value, WireError> {
        if depth > MAX_DEPTH {
            return Err(WireError::TooDeep);
        }
        let t = self.byte()?;
        match t {
            tag::NULL => Ok(Value::Null),
            tag::FALSE => Ok(Value::Bool(false)),
            tag::TRUE => Ok(Value::Bool(true)),
            tag::U64 => Ok(Value::U64(self.varint()?)),
            tag::I64 => Ok(Value::I64(unzigzag(self.varint()?))),
            tag::F64 => {
                let raw = self.take(8)?;
                Ok(Value::F64(f64::from_le_bytes(raw.try_into().unwrap())))
            }
            tag::STR => Ok(Value::Str(self.string()?)),
            tag::BLOB => Ok(Value::Blob(self.blob()?)),
            tag::LIST => {
                let count = self.length()?;
                let mut items = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    items.push(self.value(depth + 1)?);
                }
                Ok(Value::List(items))
            }
            tag::RECORD => {
                let count = self.length()?;
                let mut fields = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    let k = self.string()?;
                    let v = self.value(depth + 1)?;
                    fields.push((k, v));
                }
                Ok(Value::Record(fields))
            }
            tag::REF => {
                let store = self.string()?;
                let key = self.string()?;
                let len = self.bulk_length()?;
                let raw = self.take(4)?;
                let crc = u32::from_le_bytes(raw.try_into().unwrap());
                Ok(Value::Ref(BlobRef {
                    store,
                    key,
                    len,
                    crc,
                }))
            }
            other => Err(WireError::BadTag(other)),
        }
    }

    /// Walks over exactly one encoded value without materializing it:
    /// every tag, varint and length is still validated, but nothing is
    /// allocated and UTF-8 is not checked. The raw-view API uses this to
    /// find field extents.
    pub(crate) fn skip_value(&mut self, depth: usize) -> Result<(), WireError> {
        if depth > MAX_DEPTH {
            return Err(WireError::TooDeep);
        }
        let t = self.byte()?;
        match t {
            tag::NULL | tag::FALSE | tag::TRUE => Ok(()),
            tag::U64 | tag::I64 => self.varint().map(drop),
            tag::F64 => self.take(8).map(drop),
            tag::STR | tag::BLOB => {
                let len = self.length()?;
                self.take(len).map(drop)
            }
            tag::LIST => {
                let count = self.length()?;
                for _ in 0..count {
                    self.skip_value(depth + 1)?;
                }
                Ok(())
            }
            tag::RECORD => {
                let count = self.length()?;
                for _ in 0..count {
                    let klen = self.length()?;
                    self.take(klen)?;
                    self.skip_value(depth + 1)?;
                }
                Ok(())
            }
            tag::REF => {
                let slen = self.length()?;
                self.take(slen)?;
                let klen = self.length()?;
                self.take(klen)?;
                self.bulk_length()?;
                self.take(4).map(drop)
            }
            other => Err(WireError::BadTag(other)),
        }
    }

    /// Skips `n` raw bytes (raw-view API).
    pub(crate) fn skip_bytes(&mut self, n: usize) -> Result<(), WireError> {
        self.take(n).map(drop)
    }

    /// Reads a length-prefixed string, borrowing from the input (used by
    /// the raw-view API; does validate UTF-8).
    pub(crate) fn str_borrowed(&mut self) -> Result<&'a str, WireError> {
        let len = self.length()?;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| WireError::BadUtf8)
    }

    /// Reads one varint (raw-view API).
    pub(crate) fn read_varint(&mut self) -> Result<u64, WireError> {
        self.varint()
    }

    /// Reads one tag byte (raw-view API).
    pub(crate) fn read_byte(&mut self) -> Result<u8, WireError> {
        self.byte()
    }

    /// Un-zigzags (raw-view API).
    pub(crate) fn unzigzag64(n: u64) -> i64 {
        unzigzag(n)
    }
}

/// Decodes a value, requiring the input to be exactly one encoded value.
///
/// This is the *tree* decoder: string and blob payloads are copied into
/// fresh buffers. When the input is an owned [`Bytes`] frame, prefer
/// [`decode_bytes`], which slices instead of copying.
///
/// # Errors
///
/// Any [`WireError`] describing the malformation, including
/// [`WireError::TrailingBytes`] if input remains after the value.
pub fn decode(input: &[u8]) -> Result<Value, WireError> {
    let mut r = Reader::new(input);
    let v = r.value(0)?;
    if r.pos != input.len() {
        return Err(WireError::TrailingBytes(input.len() - r.pos));
    }
    Ok(v)
}

/// Decodes a value zero-copy: `Str`/`Blob` payloads (and record keys) in
/// the result are cheap slices of `input`, sharing its refcounted
/// allocation instead of copying.
///
/// Accepts exactly the same byte strings as [`decode`] and produces equal
/// `Value`s — only the backing of the leaves differs. The input buffer
/// stays alive as long as any decoded leaf does.
///
/// ```
/// use wire::{decode, decode_bytes, encode, Value};
/// let v = Value::record([("s", Value::str("zero-copy"))]);
/// let enc = encode(&v);
/// assert_eq!(decode_bytes(&enc).unwrap(), decode(&enc).unwrap());
/// ```
///
/// # Errors
///
/// Any [`WireError`] describing the malformation, including
/// [`WireError::TrailingBytes`] if input remains after the value.
pub fn decode_bytes(input: &Bytes) -> Result<Value, WireError> {
    let mut r = Reader::new_shared(input);
    let v = r.value(0)?;
    if r.pos != input.len() {
        return Err(WireError::TrailingBytes(input.len() - r.pos));
    }
    Ok(v)
}

/// Decodes a value from the front of `input`, returning it along with the
/// number of bytes consumed. Useful when concatenating encodings.
///
/// # Errors
///
/// Any [`WireError`] describing the malformation.
pub fn decode_prefix(input: &[u8]) -> Result<(Value, usize), WireError> {
    let mut r = Reader::new(input);
    let v = r.value(0)?;
    Ok((v, r.pos))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Value) {
        let enc = encode(&v);
        let dec = decode(&enc).unwrap();
        assert_eq!(dec, v);
        // The zero-copy decoder must agree exactly.
        assert_eq!(decode_bytes(&enc).unwrap(), v);
    }

    #[test]
    fn roundtrip_scalars() {
        roundtrip(Value::Null);
        roundtrip(Value::Bool(true));
        roundtrip(Value::Bool(false));
        roundtrip(Value::U64(0));
        roundtrip(Value::U64(127));
        roundtrip(Value::U64(128));
        roundtrip(Value::U64(u64::MAX));
        roundtrip(Value::I64(0));
        roundtrip(Value::I64(-1));
        roundtrip(Value::I64(i64::MIN));
        roundtrip(Value::I64(i64::MAX));
        roundtrip(Value::F64(0.0));
        roundtrip(Value::F64(-123.456));
        roundtrip(Value::F64(f64::INFINITY));
    }

    #[test]
    fn roundtrip_compound() {
        roundtrip(Value::str(""));
        roundtrip(Value::str("héllo wörld"));
        roundtrip(Value::blob(vec![0u8, 255, 1, 2]));
        roundtrip(Value::list([Value::U64(1), Value::str("two"), Value::Null]));
        roundtrip(Value::record([
            (
                "nested",
                Value::record([("deep", Value::list([Value::Bool(true)]))]),
            ),
            ("blob", Value::blob(vec![9u8; 300])),
        ]));
    }

    #[test]
    fn canonical_encoding_is_stable() {
        let v = Value::record([("a", Value::U64(1)), ("b", Value::str("x"))]);
        assert_eq!(encode(&v), encode(&v.clone()));
    }

    #[test]
    fn varint_boundaries() {
        for n in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            roundtrip(Value::U64(n));
        }
    }

    #[test]
    fn truncated_input_reports_eof() {
        let enc = encode(&Value::str("hello"));
        for cut in 0..enc.len() {
            let err = decode(&enc[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::UnexpectedEof { .. }),
                "cut={cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut enc = encode(&Value::U64(5)).to_vec();
        enc.push(0);
        assert_eq!(decode(&enc), Err(WireError::TrailingBytes(1)));
        let enc = Bytes::from(enc);
        assert_eq!(decode_bytes(&enc), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(decode(&[0xEE]), Err(WireError::BadTag(0xEE)));
    }

    #[test]
    fn invalid_utf8_rejected() {
        // STR tag, length 2, invalid UTF-8 bytes.
        let raw = [super::tag::STR, 2, 0xFF, 0xFE];
        assert_eq!(decode(&raw), Err(WireError::BadUtf8));
        assert_eq!(
            decode_bytes(&Bytes::copy_from_slice(&raw)),
            Err(WireError::BadUtf8)
        );
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = vec![super::tag::BLOB];
        put_varint(&mut buf, MAX_LEN + 1);
        assert_eq!(decode(&buf), Err(WireError::TooLong(MAX_LEN + 1)));
    }

    #[test]
    fn excessive_depth_rejected() {
        let mut v = Value::Null;
        for _ in 0..(MAX_DEPTH + 2) {
            v = Value::List(vec![v]);
        }
        let enc = encode(&v);
        assert_eq!(decode(&enc), Err(WireError::TooDeep));
        assert_eq!(decode_bytes(&enc), Err(WireError::TooDeep));
    }

    #[test]
    fn depth_at_limit_accepted() {
        let mut v = Value::U64(7);
        for _ in 0..MAX_DEPTH {
            v = Value::List(vec![v]);
        }
        roundtrip(v);
    }

    #[test]
    fn batch_shaped_wide_nesting_roundtrips() {
        // The RPC layer coalesces pipelined requests into one datagram:
        // a record holding a *wide* list of per-call request records.
        // Width must cost no depth — only the envelope's three levels
        // (record → list → record) plus whatever the deepest args use.
        let call = |id: u64, deep_args: Value| {
            Value::record([
                ("op", Value::str("work")),
                ("id", Value::U64(id)),
                ("args", deep_args),
            ])
        };
        let mut deep = Value::U64(7);
        // Envelope: batch record (depth 0) + call list (1) + call
        // record (2) puts the args value at depth 3, so the args may
        // nest MAX_DEPTH - 3 levels before the limit bites.
        for _ in 0..(MAX_DEPTH - 3) {
            deep = Value::List(vec![deep]);
        }
        let calls: Vec<Value> = (0..64)
            .map(|i| call(i, if i == 63 { deep.clone() } else { Value::Null }))
            .collect();
        let batch = Value::record([("batch", Value::List(calls))]);
        roundtrip(batch.clone());

        // One level deeper in the args and the whole batch is rejected.
        let over = Value::record([("batch", Value::List(vec![call(0, Value::List(vec![deep]))]))]);
        assert_eq!(decode(&encode(&over)), Err(WireError::TooDeep));
    }

    #[test]
    fn decode_prefix_reports_consumed() {
        let a = encode(&Value::U64(300));
        let b = encode(&Value::str("tail"));
        let joined: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        let (v, used) = decode_prefix(&joined).unwrap();
        assert_eq!(v, Value::U64(300));
        assert_eq!(used, a.len());
        let (v2, used2) = decode_prefix(&joined[used..]).unwrap();
        assert_eq!(v2, Value::str("tail"));
        assert_eq!(used + used2, joined.len());
    }

    #[test]
    fn overlong_varint_rejected() {
        // 11 continuation bytes is over the maximum 10-byte varint.
        let raw = [
            super::tag::U64,
            0x80,
            0x80,
            0x80,
            0x80,
            0x80,
            0x80,
            0x80,
            0x80,
            0x80,
            0x80,
            0x01,
        ];
        assert_eq!(decode(&raw), Err(WireError::BadVarint));
    }

    #[test]
    fn noncanonical_varint_rejected() {
        // [0x80, 0x00] is an overlong encoding of 0: the continuation
        // bit promises more significant bits, then delivers none.
        assert_eq!(
            decode(&[super::tag::U64, 0x80, 0x00]),
            Err(WireError::BadVarint)
        );
        // [0xFF, 0x00] is an overlong encoding of 127.
        assert_eq!(
            decode(&[super::tag::U64, 0xFF, 0x00]),
            Err(WireError::BadVarint)
        );
        // Redundant zero terminator deeper in: overlong encoding of
        // 0x3FFF (two meaningful bytes + 0x00).
        assert_eq!(
            decode(&[super::tag::U64, 0xFF, 0xFF, 0x00]),
            Err(WireError::BadVarint)
        );
        // The canonical encodings of the same values still decode.
        assert_eq!(decode(&[super::tag::U64, 0x00]), Ok(Value::U64(0)));
        assert_eq!(decode(&[super::tag::U64, 0x7F]), Ok(Value::U64(127)));
        // The zero-copy decoder applies the same rule (shared grammar).
        assert_eq!(
            decode_bytes(&Bytes::copy_from_slice(&[super::tag::U64, 0x80, 0x00])),
            Err(WireError::BadVarint)
        );
        // Lengths are varints too: an overlong string length is rejected
        // even though the canonical form would be in range.
        assert_eq!(
            decode(&[super::tag::STR, 0x80, 0x00]),
            Err(WireError::BadVarint)
        );
    }

    #[test]
    fn ten_byte_varint_boundary() {
        // u64::MAX: nine 0xFF continuation bytes + final 0x01 — exactly
        // ten bytes, canonical, accepted.
        let mut raw = vec![super::tag::U64];
        raw.extend_from_slice(&[0xFF; 9]);
        raw.push(0x01);
        assert_eq!(decode(&raw), Ok(Value::U64(u64::MAX)));
        // Final byte 0x00 in the 10th position is the overlong form.
        let mut raw = vec![super::tag::U64];
        raw.extend_from_slice(&[0xFF; 9]);
        raw.push(0x00);
        assert_eq!(decode(&raw), Err(WireError::BadVarint));
        // Final byte > 1 in the 10th position overflows 64 bits.
        let mut raw = vec![super::tag::U64];
        raw.extend_from_slice(&[0xFF; 9]);
        raw.push(0x02);
        assert_eq!(decode(&raw), Err(WireError::BadVarint));
    }

    #[test]
    fn hostile_length_near_usize_max_is_eof_not_overflow() {
        // A declared string length that would overflow `pos + n` must
        // error as UnexpectedEof (checked_add), not wrap around. Use a
        // length just under MAX_LEN so the TooLong guard doesn't mask
        // the take() path, then one near u64::MAX to exercise length().
        let mut raw = vec![super::tag::STR];
        put_varint(&mut raw, MAX_LEN);
        assert!(matches!(decode(&raw), Err(WireError::UnexpectedEof { .. })));
        let mut raw = vec![super::tag::STR];
        put_varint(&mut raw, u64::MAX - 1);
        assert_eq!(decode(&raw), Err(WireError::TooLong(u64::MAX - 1)));
    }

    #[test]
    fn zero_copy_decode_shares_the_input_allocation() {
        let v = Value::record([
            ("key", Value::str("some/key")),
            ("blob", Value::blob(vec![0xA5u8; 64])),
        ]);
        let enc = encode(&v);
        let dec = decode_bytes(&enc).unwrap();
        // The decoded blob is a sub-slice of the encoding, not a copy.
        let blob = dec.get_blob("blob").unwrap();
        let enc_ptr = enc.as_ref().as_ptr() as usize;
        let blob_ptr = blob.as_ref().as_ptr() as usize;
        assert!(
            blob_ptr >= enc_ptr && blob_ptr + blob.len() <= enc_ptr + enc.len(),
            "blob should alias the input frame"
        );
        let s = dec.get("key").unwrap().as_wstr().unwrap();
        let s_ptr = s.as_bytes().as_ptr() as usize;
        assert!(
            s_ptr >= enc_ptr && s_ptr + s.len() <= enc_ptr + enc.len(),
            "str should alias the input frame"
        );
    }

    #[test]
    fn pooled_encoder_matches_oneshot() {
        let mut enc = Encoder::new();
        let values = [
            Value::Null,
            Value::str("pooled"),
            Value::record([("k", Value::blob(vec![1u8; 200]))]),
            Value::U64(42),
        ];
        for v in &values {
            assert_eq!(enc.encode(v), encode(v), "pooled != one-shot for {v}");
        }
    }

    #[test]
    fn writer_matches_tree_encoding() {
        let v = Value::record([
            ("op", Value::str("put")),
            ("id", Value::U64(300)),
            ("neg", Value::I64(-5)),
            ("pi", Value::F64(3.5)),
            ("ok", Value::Bool(true)),
            ("none", Value::Null),
            ("raw", Value::blob(vec![1u8, 2, 3])),
            ("tags", Value::list([Value::str("a"), Value::str("b")])),
        ]);
        let mut enc = Encoder::new();
        let streamed = enc.encode_with(|w| {
            w.begin_record(8);
            w.key("op");
            w.str("put");
            w.key("id");
            w.u64(300);
            w.key("neg");
            w.i64(-5);
            w.key("pi");
            w.f64(3.5);
            w.key("ok");
            w.bool(true);
            w.key("none");
            w.null();
            w.key("raw");
            w.blob(&[1, 2, 3]);
            w.key("tags");
            w.begin_list(2);
            w.str("a");
            w.str("b");
        });
        assert_eq!(streamed, encode(&v), "writer must be byte-identical");
    }

    #[test]
    fn zigzag_roundtrip() {
        for n in [0i64, -1, 1, i64::MIN, i64::MAX, -123456789] {
            assert_eq!(unzigzag(zigzag(n)), n);
        }
    }

    #[test]
    fn roundtrip_blob_ref() {
        roundtrip(Value::blob_ref("blob-origin", "spill/7", 0, 0));
        roundtrip(Value::blob_ref("b", "", MAX_BULK_LEN, u32::MAX));
        // Refs nest like any other value.
        roundtrip(Value::record([
            ("op", Value::str("put")),
            ("v", Value::blob_ref("store", "k", 1 << 20, 0xABCD_EF01)),
            ("tail", Value::list([Value::blob_ref("s", "k2", 9, 1)])),
        ]));
    }

    #[test]
    fn blob_ref_writer_matches_tree_encoding() {
        let v = Value::blob_ref("blob-origin", "spill/42", 123_456, 0x1234_5678);
        let mut enc = Encoder::new();
        let streamed =
            enc.encode_with(|w| w.blob_ref("blob-origin", "spill/42", 123_456, 0x1234_5678));
        assert_eq!(
            streamed,
            encode(&v),
            "blob_ref writer must be byte-identical"
        );
    }

    #[test]
    fn hostile_bulk_length_rejected_without_allocation() {
        // A ref declaring an absurd payload length must fail cleanly at
        // decode (TooLong), never reach a resolver that would allocate a
        // reassembly buffer for it. Build the hostile frame by hand.
        let mut raw = vec![super::tag::REF];
        put_varint(&mut raw, 1);
        raw.push(b's');
        put_varint(&mut raw, 1);
        raw.push(b'k');
        put_varint(&mut raw, MAX_BULK_LEN + 1);
        raw.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(decode(&raw), Err(WireError::TooLong(MAX_BULK_LEN + 1)));
        // skip_value walks the same grammar and applies the same guard.
        let mut r = Reader::new(&raw);
        assert_eq!(r.skip_value(0), Err(WireError::TooLong(MAX_BULK_LEN + 1)));
        // A declared length at the ceiling is fine: refs may exceed the
        // inline MAX_LEN because the bytes never ride the frame.
        const { assert!(MAX_BULK_LEN > MAX_LEN) };
        roundtrip(Value::blob_ref("s", "k", MAX_BULK_LEN, 0));
        // Truncated CRC reports EOF, not garbage.
        let ok = encode(&Value::blob_ref("s", "k", 10, 7));
        assert!(matches!(
            decode(&ok[..ok.len() - 1]),
            Err(WireError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn zero_copy_blob_ref_aliases_the_frame() {
        let enc = encode(&Value::blob_ref("blob-origin", "some/long/key", 99, 3));
        let dec = decode_bytes(&enc).unwrap();
        let r = dec.as_blob_ref().unwrap();
        let enc_ptr = enc.as_ref().as_ptr() as usize;
        for s in [&r.store, &r.key] {
            let p = s.as_bytes().as_ptr() as usize;
            assert!(
                p >= enc_ptr && p + s.len() <= enc_ptr + enc.len(),
                "ref strings should alias the input frame"
            );
        }
    }
}
