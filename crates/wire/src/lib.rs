//! # wire — the marshalling substrate
//!
//! A self-describing binary presentation layer in the spirit of the
//! Courier and Sun RPC encodings the proxy-principle paper's systems used.
//! Every protocol message in this workspace is a [`Value`] encoded via
//! [`encode`]/[`decode`] and shipped inside a checksummed [`frame`].
//!
//! * [`Value`] — the dynamic data model (null/bool/ints/float/str/blob/
//!   list/record, plus [`BlobRef`] out-of-band references). Strings are
//!   [`WStr`]: refcounted, cheaply clonable.
//! * [`encode`] / [`decode`] — canonical tag-length-value binary codec,
//!   hardened against hostile input (depth & length limits, canonical
//!   varints).
//! * [`decode_bytes`] / [`unframe_bytes`] — the zero-copy receive path:
//!   decoded `Str`/`Blob` leaves are slices of the incoming frame.
//! * [`Encoder`] / [`ValueWriter`] — pooled, borrow-based send path:
//!   one reusable scratch buffer, no intermediate `Value` trees.
//! * [`RawRecord`] / [`peek_frame`] — lazily-decoded views for reading a
//!   couple of header fields without materializing the message.
//! * [`frame`] / [`unframe`] — versioned envelope with a CRC-32 checksum.
//! * [`crc32`] / [`Crc32`] — the checksum itself (implemented here to keep
//!   the workspace dependency-minimal); slice-by-16 fast path with
//!   [`crc32_bytewise`] kept as the differential oracle.
//!
//! ## Example
//!
//! ```
//! use wire::{frame, unframe, Value};
//!
//! let request = Value::record([
//!     ("op", Value::str("read")),
//!     ("block", Value::U64(17)),
//! ]);
//! let datagram = frame(&request);
//! let parsed = unframe(&datagram)?;
//! assert_eq!(parsed.get_u64("block")?, 17);
//! # Ok::<(), wire::WireError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod codec;
mod crc;
mod error;
mod frame;
mod raw;
mod value;
mod wstr;

pub use codec::{
    decode, decode_bytes, decode_prefix, encode, Encoder, ValueWriter, MAX_BULK_LEN, MAX_DEPTH,
    MAX_LEN,
};
pub use crc::{crc32, crc32_bytewise, Crc32};
pub use error::WireError;
pub use frame::{frame, unframe, unframe_bytes, FRAME_VERSION, HEADER_LEN};
pub use raw::{peek_frame, RawRecord};
pub use value::{BlobRef, Value};
pub use wstr::WStr;
