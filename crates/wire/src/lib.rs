//! # wire — the marshalling substrate
//!
//! A self-describing binary presentation layer in the spirit of the
//! Courier and Sun RPC encodings the proxy-principle paper's systems used.
//! Every protocol message in this workspace is a [`Value`] encoded via
//! [`encode`]/[`decode`] and shipped inside a checksummed [`frame`].
//!
//! * [`Value`] — the dynamic data model (null/bool/ints/float/str/blob/
//!   list/record).
//! * [`encode`] / [`decode`] — canonical tag-length-value binary codec,
//!   hardened against hostile input (depth & length limits, canonical
//!   varints).
//! * [`frame`] / [`unframe`] — versioned envelope with a CRC-32 checksum.
//! * [`crc32`] / [`Crc32`] — the checksum itself (implemented here to keep
//!   the workspace dependency-minimal).
//!
//! ## Example
//!
//! ```
//! use wire::{frame, unframe, Value};
//!
//! let request = Value::record([
//!     ("op", Value::str("read")),
//!     ("block", Value::U64(17)),
//! ]);
//! let datagram = frame(&request);
//! let parsed = unframe(&datagram)?;
//! assert_eq!(parsed.get_u64("block")?, 17);
//! # Ok::<(), wire::WireError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod codec;
mod crc;
mod error;
mod frame;
mod value;

pub use codec::{decode, decode_prefix, encode, MAX_DEPTH, MAX_LEN};
pub use crc::{crc32, Crc32};
pub use error::WireError;
pub use frame::{frame, unframe, FRAME_VERSION, HEADER_LEN};
pub use value::Value;
