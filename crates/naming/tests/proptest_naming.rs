//! Property-based tests of the name service: an arbitrary sequence of
//! register/update/unregister/lookup commands behaves exactly like an
//! in-memory oracle map, and generations are globally strictly
//! increasing across all mutations.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use naming::{is_not_found, spawn_name_server, NameClient};
use proptest::prelude::*;
use simnet::{Endpoint, NetworkConfig, NodeId, PortId, Simulation};
use wire::Value;

#[derive(Debug, Clone)]
enum Cmd {
    Register(u8, u8), // name, endpoint-port
    Update(u8, u8),   // name, endpoint-port
    Unregister(u8),
    Lookup(u8),
}

fn arb_cmds() -> impl Strategy<Value = Vec<Cmd>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u8>(), any::<u8>()).prop_map(|(n, p)| Cmd::Register(n % 6, p)),
            (any::<u8>(), any::<u8>()).prop_map(|(n, p)| Cmd::Update(n % 6, p)),
            any::<u8>().prop_map(|n| Cmd::Unregister(n % 6)),
            any::<u8>().prop_map(|n| Cmd::Lookup(n % 6)),
        ],
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn name_server_matches_oracle(cmds in arb_cmds(), seed in 0u64..10_000) {
        let mut sim = Simulation::new(NetworkConfig::lan(), seed);
        let ns = spawn_name_server(&sim, NodeId(0));
        let failure: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
        let f2 = Arc::clone(&failure);
        sim.spawn("driver", NodeId(1), move |ctx| {
            let mut nc = NameClient::new(ns);
            let mut oracle: HashMap<String, Endpoint> = HashMap::new();
            let mut last_gen = 0u64;
            for (i, cmd) in cmds.iter().enumerate() {
                match cmd {
                    Cmd::Register(n, p) => {
                        let name = format!("svc{n}");
                        let ep = Endpoint::new(NodeId(9), PortId(*p as u32));
                        let g = nc.register(ctx, &name, ep, Value::Null).unwrap();
                        if g <= last_gen {
                            *f2.lock().unwrap() =
                                Some(format!("step {i}: generation {g} not increasing"));
                            return;
                        }
                        last_gen = g;
                        oracle.insert(name, ep);
                    }
                    Cmd::Update(n, p) => {
                        let name = format!("svc{n}");
                        let ep = Endpoint::new(NodeId(9), PortId(*p as u32));
                        match nc.update(ctx, &name, ep, Value::Null) {
                            Ok(g) => {
                                if !oracle.contains_key(&name) {
                                    *f2.lock().unwrap() = Some(format!(
                                        "step {i}: update of unknown `{name}` succeeded"
                                    ));
                                    return;
                                }
                                if g <= last_gen {
                                    *f2.lock().unwrap() =
                                        Some(format!("step {i}: generation {g} not increasing"));
                                    return;
                                }
                                last_gen = g;
                                oracle.insert(name, ep);
                            }
                            Err(e) if is_not_found(&e) => {
                                if oracle.contains_key(&name) {
                                    *f2.lock().unwrap() = Some(format!(
                                        "step {i}: update of known `{name}` failed"
                                    ));
                                    return;
                                }
                            }
                            Err(e) => {
                                *f2.lock().unwrap() = Some(format!("step {i}: {e}"));
                                return;
                            }
                        }
                    }
                    Cmd::Unregister(n) => {
                        let name = format!("svc{n}");
                        match nc.unregister(ctx, &name) {
                            Ok(()) => {
                                if oracle.remove(&name).is_none() {
                                    *f2.lock().unwrap() = Some(format!(
                                        "step {i}: unregister of unknown `{name}` succeeded"
                                    ));
                                    return;
                                }
                            }
                            Err(e) if is_not_found(&e) => {
                                if oracle.contains_key(&name) {
                                    *f2.lock().unwrap() = Some(format!(
                                        "step {i}: unregister of known `{name}` failed"
                                    ));
                                    return;
                                }
                            }
                            Err(e) => {
                                *f2.lock().unwrap() = Some(format!("step {i}: {e}"));
                                return;
                            }
                        }
                    }
                    Cmd::Lookup(n) => {
                        let name = format!("svc{n}");
                        match nc.lookup(ctx, &name) {
                            Ok(rec) => match oracle.get(&name) {
                                Some(ep) if *ep == rec.endpoint => {}
                                Some(ep) => {
                                    *f2.lock().unwrap() = Some(format!(
                                        "step {i}: `{name}` -> {} but oracle says {ep}",
                                        rec.endpoint
                                    ));
                                    return;
                                }
                                None => {
                                    *f2.lock().unwrap() = Some(format!(
                                        "step {i}: lookup of unknown `{name}` succeeded"
                                    ));
                                    return;
                                }
                            },
                            Err(e) if is_not_found(&e) => {
                                if oracle.contains_key(&name) {
                                    *f2.lock().unwrap() =
                                        Some(format!("step {i}: known `{name}` not found"));
                                    return;
                                }
                            }
                            Err(e) => {
                                *f2.lock().unwrap() = Some(format!("step {i}: {e}"));
                                return;
                            }
                        }
                    }
                }
            }
            // Terminal: `list` agrees with the oracle's key set.
            let mut names = nc.list(ctx).unwrap();
            names.sort();
            let mut expected: Vec<String> = oracle.keys().cloned().collect();
            expected.sort();
            if names != expected {
                *f2.lock().unwrap() = Some(format!("final list {names:?} != {expected:?}"));
            }
        });
        sim.run();
        let failed = failure.lock().unwrap().take();
        if let Some(msg) = failed {
            return Err(TestCaseError::fail(msg));
        }
    }
}
