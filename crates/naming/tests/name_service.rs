//! End-to-end name service tests over the simulated network.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use naming::{is_not_found, spawn_name_server, NameClient};
use simnet::{NetworkConfig, NodeId, PortId, Simulation};
use wire::Value;

#[test]
fn register_lookup_across_nodes() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 1);
    let ns = spawn_name_server(&sim, NodeId(0));
    let svc = sim.spawn_at(
        "svc",
        NodeId(1),
        PortId(5),
        |ctx| {
            while ctx.recv().is_ok() {}
        },
    );
    let checked = Arc::new(AtomicU64::new(0));
    let c2 = Arc::clone(&checked);
    sim.spawn("registrar", NodeId(1), move |ctx| {
        let mut nc = NameClient::new(ns);
        let gen = nc
            .register(
                ctx,
                "svc",
                svc,
                Value::record([("proxy", Value::str("stub"))]),
            )
            .unwrap();
        assert_eq!(gen, 1);
        c2.store(1, Ordering::SeqCst);
    });
    sim.run_until(simnet::SimTime::from_millis(100));
    let found = Arc::new(AtomicU64::new(0));
    let f2 = Arc::clone(&found);
    sim.spawn("resolver", NodeId(2), move |ctx| {
        let mut nc = NameClient::new(ns);
        let rec = nc.lookup(ctx, "svc").unwrap();
        assert_eq!(rec.endpoint, svc);
        assert_eq!(rec.meta.get_str("proxy").unwrap(), "stub");
        f2.store(1, Ordering::SeqCst);
    });
    sim.run();
    assert_eq!(checked.load(Ordering::SeqCst), 1);
    assert_eq!(found.load(Ordering::SeqCst), 1);
}

#[test]
fn resolve_uses_cache_until_forgotten() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 2);
    let ns = spawn_name_server(&sim, NodeId(0));
    sim.spawn("client", NodeId(1), move |ctx| {
        let mut nc = NameClient::new(ns);
        nc.register(ctx, "x", ctx.endpoint(), Value::Null).unwrap();
        let _ = nc.lookup(ctx, "x").unwrap(); // populates cache
        for _ in 0..5 {
            let _ = nc.resolve(ctx, "x").unwrap();
        }
        assert_eq!(nc.cache_hits, 5);
        assert_eq!(nc.cache_misses, 0);
        nc.forget("x");
        let _ = nc.resolve(ctx, "x").unwrap();
        assert_eq!(nc.cache_misses, 1);
    });
    sim.run();
}

#[test]
fn stale_binding_detected_via_generation() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 3);
    let ns = spawn_name_server(&sim, NodeId(0));
    sim.spawn("mover", NodeId(1), move |ctx| {
        let mut nc = NameClient::new(ns);
        let old_ep = ctx.endpoint();
        nc.register(ctx, "svc", old_ep, Value::Null).unwrap();
        let rec1 = nc.lookup(ctx, "svc").unwrap();

        // Service migrates: a second registrar updates the binding.
        let new_ep = simnet::Endpoint::new(NodeId(2), PortId(9));
        let gen2 = nc.update(ctx, "svc", new_ep, Value::Null).unwrap();
        assert!(gen2 > rec1.generation);

        let rec2 = nc.lookup(ctx, "svc").unwrap();
        assert_eq!(rec2.endpoint, new_ep);
        assert!(rec2.generation > rec1.generation);
    });
    sim.run();
}

#[test]
fn not_found_helper() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 4);
    let ns = spawn_name_server(&sim, NodeId(0));
    sim.spawn("client", NodeId(1), move |ctx| {
        let mut nc = NameClient::new(ns);
        let err = nc.lookup(ctx, "ghost").unwrap_err();
        assert!(is_not_found(&err));
    });
    sim.run();
}

#[test]
fn list_reflects_registrations() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 5);
    let ns = spawn_name_server(&sim, NodeId(0));
    sim.spawn("client", NodeId(1), move |ctx| {
        let mut nc = NameClient::new(ns);
        for name in ["b", "a", "c"] {
            nc.register(ctx, name, ctx.endpoint(), Value::Null).unwrap();
        }
        nc.unregister(ctx, "b").unwrap();
        let names = nc.list(ctx).unwrap();
        assert_eq!(names, vec!["a".to_string(), "c".to_string()]);
    });
    sim.run();
}

#[test]
fn survives_lossy_network() {
    let mut sim = Simulation::new(NetworkConfig::lan().with_loss(0.15), 6);
    let ns = spawn_name_server(&sim, NodeId(0));
    sim.spawn("client", NodeId(1), move |ctx| {
        let mut nc = NameClient::new(ns);
        nc.register(ctx, "svc", ctx.endpoint(), Value::Null)
            .unwrap();
        for _ in 0..20 {
            let rec = nc.lookup(ctx, "svc").unwrap();
            assert_eq!(rec.endpoint, ctx.endpoint());
        }
    });
    sim.run();
}
