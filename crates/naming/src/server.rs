//! The name server process.

use std::sync::Arc;

use rpc::{endpoint_from_value, ErrorCode, RemoteError, Request, RpcServer};
use simnet::{Ctx, Endpoint, NodeId, PortId, Simulation};
use wire::{Value, WireError};

use crate::directory::Directory;

/// The well-known port the name server listens on.
pub const NAME_SERVER_PORT: PortId = PortId(1);

fn bad_args(e: WireError) -> RemoteError {
    RemoteError::new(ErrorCode::BadArgs, e.to_string())
}

fn handle(dir: &Directory, req: &Request) -> Result<Value, RemoteError> {
    match req.op.as_str() {
        "register" => {
            let name = req.args.get_str("name").map_err(bad_args)?;
            let ep = endpoint_from_value(
                req.args
                    .get("ep")
                    .ok_or_else(|| RemoteError::new(ErrorCode::BadArgs, "missing ep"))?,
            )
            .map_err(bad_args)?;
            let meta = req.args.get("meta").cloned().unwrap_or(Value::Null);
            let gen = dir.register(name, ep, meta);
            Ok(Value::record([("gen", Value::U64(gen))]))
        }
        "update" => {
            let name = req.args.get_str("name").map_err(bad_args)?;
            let ep = endpoint_from_value(
                req.args
                    .get("ep")
                    .ok_or_else(|| RemoteError::new(ErrorCode::BadArgs, "missing ep"))?,
            )
            .map_err(bad_args)?;
            let meta = req.args.get("meta").cloned().unwrap_or(Value::Null);
            match dir.update(name, ep, meta) {
                Some(gen) => Ok(Value::record([("gen", Value::U64(gen))])),
                None => Err(RemoteError::new(
                    ErrorCode::NoSuchObject,
                    format!("unknown name `{name}`"),
                )),
            }
        }
        "unregister" => {
            let name = req.args.get_str("name").map_err(bad_args)?;
            if dir.unregister(name) {
                Ok(Value::Null)
            } else {
                Err(RemoteError::new(
                    ErrorCode::NoSuchObject,
                    format!("unknown name `{name}`"),
                ))
            }
        }
        "lookup" => {
            let name = req.args.get_str("name").map_err(bad_args)?;
            match dir.lookup(name) {
                Some(rec) => Ok(rec.to_value()),
                None => Err(RemoteError::new(
                    ErrorCode::NoSuchObject,
                    format!("unknown name `{name}`"),
                )),
            }
        }
        "list" => Ok(Value::record([(
            "names",
            Value::list(dir.list().iter().map(Value::str)),
        )])),
        other => Err(RemoteError::new(ErrorCode::NoSuchOp, other.to_owned())),
    }
}

/// The name-server process body; spawn it yourself for custom placements:
///
/// ```
/// use simnet::{Simulation, NetworkConfig, NodeId, PortId};
///
/// let sim = Simulation::new(NetworkConfig::lan(), 0);
/// sim.spawn_at("names", NodeId(2), PortId(1), naming::name_server_body);
/// ```
pub fn name_server_body(ctx: &mut Ctx) {
    serve_directory(ctx, Arc::new(Directory::new()));
}

/// A name-server process body serving a caller-provided (typically
/// shared) [`Directory`]. This is what replica bodies run: each replica
/// answers from the same striped table, so a registration through any
/// replica is immediately visible to lookups through every other.
pub fn serve_directory(ctx: &mut Ctx, dir: Arc<Directory>) {
    let mut server = RpcServer::new();
    server.serve(ctx, |_ctx, req| handle(&dir, req), |_, _| {});
}

/// Spawns the name server on `node` at [`NAME_SERVER_PORT`], returning
/// its endpoint.
///
/// # Panics
///
/// Panics if the port is already bound on that node.
pub fn spawn_name_server(sim: &Simulation, node: NodeId) -> Endpoint {
    sim.spawn_at("name-server", node, NAME_SERVER_PORT, name_server_body)
}

/// Spawns one name-server replica per node in `nodes`, all serving one
/// shared striped [`Directory`], and returns their endpoints (one per
/// node, in order).
///
/// Clients spread their lookups across the replicas (see
/// `SessionCore::with_ns_replicas` in `core`), so a million concurrent
/// bind backoff polls fan out over `nodes.len()` server queues instead
/// of serializing on one process — while registrations stay visible
/// directory-wide in the same instant.
///
/// # Panics
///
/// Panics if `nodes` is empty or [`NAME_SERVER_PORT`] is already bound
/// on any of the nodes.
pub fn spawn_name_cluster(sim: &Simulation, nodes: &[NodeId]) -> Vec<Endpoint> {
    assert!(!nodes.is_empty(), "name cluster needs at least one node");
    let dir = Arc::new(Directory::new());
    nodes
        .iter()
        .enumerate()
        .map(|(i, &node)| {
            let dir = Arc::clone(&dir);
            sim.spawn_at(
                format!("name-server-{i}"),
                node,
                NAME_SERVER_PORT,
                move |ctx: &mut Ctx| serve_directory(ctx, dir),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::NameRecord;

    fn req(op: &str, args: Value) -> Request {
        Request {
            call_id: 1,
            reply_to: Endpoint::new(NodeId(9), PortId(70000)),
            object: String::new(),
            op: op.into(),
            args,
            span: 0,
        }
    }

    fn ep_value(n: u32, p: u32) -> Value {
        rpc::endpoint_to_value(Endpoint::new(NodeId(n), PortId(p)))
    }

    #[test]
    fn register_then_lookup() {
        let t = Directory::new();
        let r = handle(
            &t,
            &req(
                "register",
                Value::record([("name", Value::str("kv")), ("ep", ep_value(1, 2))]),
            ),
        )
        .unwrap();
        assert_eq!(r.get_u64("gen").unwrap(), 1);
        let rec = handle(
            &t,
            &req("lookup", Value::record([("name", Value::str("kv"))])),
        )
        .unwrap();
        let rec = NameRecord::from_value(&rec).unwrap();
        assert_eq!(rec.endpoint, Endpoint::new(NodeId(1), PortId(2)));
    }

    #[test]
    fn update_bumps_generation_and_moves() {
        let t = Directory::new();
        handle(
            &t,
            &req(
                "register",
                Value::record([("name", Value::str("kv")), ("ep", ep_value(1, 2))]),
            ),
        )
        .unwrap();
        let r = handle(
            &t,
            &req(
                "update",
                Value::record([("name", Value::str("kv")), ("ep", ep_value(3, 4))]),
            ),
        )
        .unwrap();
        assert_eq!(r.get_u64("gen").unwrap(), 2);
        let rec = NameRecord::from_value(
            &handle(
                &t,
                &req("lookup", Value::record([("name", Value::str("kv"))])),
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(rec.endpoint, Endpoint::new(NodeId(3), PortId(4)));
        assert_eq!(rec.generation, 2);
    }

    #[test]
    fn unknown_name_is_no_such_object() {
        let t = Directory::new();
        let e = handle(
            &t,
            &req("lookup", Value::record([("name", Value::str("x"))])),
        )
        .unwrap_err();
        assert_eq!(e.code, ErrorCode::NoSuchObject);
        let e = handle(
            &t,
            &req(
                "update",
                Value::record([("name", Value::str("x")), ("ep", ep_value(0, 0))]),
            ),
        )
        .unwrap_err();
        assert_eq!(e.code, ErrorCode::NoSuchObject);
        let e = handle(
            &t,
            &req("unregister", Value::record([("name", Value::str("x"))])),
        )
        .unwrap_err();
        assert_eq!(e.code, ErrorCode::NoSuchObject);
    }

    #[test]
    fn list_is_sorted() {
        let t = Directory::new();
        for n in ["zeta", "alpha", "mid"] {
            handle(
                &t,
                &req(
                    "register",
                    Value::record([("name", Value::str(n)), ("ep", ep_value(0, 1))]),
                ),
            )
            .unwrap();
        }
        let r = handle(&t, &req("list", Value::Null)).unwrap();
        let names: Vec<&str> = r
            .get_list("names")
            .unwrap()
            .iter()
            .filter_map(Value::as_str)
            .collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn bad_args_reported() {
        let t = Directory::new();
        let e = handle(&t, &req("register", Value::Null)).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadArgs);
    }

    #[test]
    fn reregister_replaces_binding() {
        let t = Directory::new();
        for p in [2u32, 7] {
            handle(
                &t,
                &req(
                    "register",
                    Value::record([("name", Value::str("kv")), ("ep", ep_value(1, p))]),
                ),
            )
            .unwrap();
        }
        let rec = NameRecord::from_value(
            &handle(
                &t,
                &req("lookup", Value::record([("name", Value::str("kv"))])),
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(rec.endpoint, Endpoint::new(NodeId(1), PortId(7)));
        assert_eq!(rec.generation, 2);
    }
}
