//! The name server process.

use std::collections::BTreeMap;

use rpc::{endpoint_from_value, ErrorCode, RemoteError, Request, RpcServer};
use simnet::{Ctx, Endpoint, NodeId, PortId, Simulation};
use wire::{Value, WireError};

use crate::record::NameRecord;

/// The well-known port the name server listens on.
pub const NAME_SERVER_PORT: PortId = PortId(1);

/// In-memory name table (process-local state of the server).
#[derive(Debug, Default)]
struct NameTable {
    records: BTreeMap<String, NameRecord>,
    next_gen: u64,
}

impl NameTable {
    fn bump(&mut self) -> u64 {
        self.next_gen += 1;
        self.next_gen
    }
}

fn bad_args(e: WireError) -> RemoteError {
    RemoteError::new(ErrorCode::BadArgs, e.to_string())
}

fn handle(table: &mut NameTable, req: &Request) -> Result<Value, RemoteError> {
    match req.op.as_str() {
        "register" => {
            let name = req.args.get_str("name").map_err(bad_args)?.to_owned();
            let ep = endpoint_from_value(
                req.args
                    .get("ep")
                    .ok_or_else(|| RemoteError::new(ErrorCode::BadArgs, "missing ep"))?,
            )
            .map_err(bad_args)?;
            let meta = req.args.get("meta").cloned().unwrap_or(Value::Null);
            let gen = table.bump();
            table.records.insert(
                name,
                NameRecord {
                    endpoint: ep,
                    meta,
                    generation: gen,
                },
            );
            Ok(Value::record([("gen", Value::U64(gen))]))
        }
        "update" => {
            let name = req.args.get_str("name").map_err(bad_args)?;
            let ep = endpoint_from_value(
                req.args
                    .get("ep")
                    .ok_or_else(|| RemoteError::new(ErrorCode::BadArgs, "missing ep"))?,
            )
            .map_err(bad_args)?;
            let meta = req.args.get("meta").cloned().unwrap_or(Value::Null);
            let gen = table.bump();
            match table.records.get_mut(name) {
                Some(rec) => {
                    rec.endpoint = ep;
                    if meta != Value::Null {
                        rec.meta = meta;
                    }
                    rec.generation = gen;
                    Ok(Value::record([("gen", Value::U64(gen))]))
                }
                None => Err(RemoteError::new(
                    ErrorCode::NoSuchObject,
                    format!("unknown name `{name}`"),
                )),
            }
        }
        "unregister" => {
            let name = req.args.get_str("name").map_err(bad_args)?;
            match table.records.remove(name) {
                Some(_) => Ok(Value::Null),
                None => Err(RemoteError::new(
                    ErrorCode::NoSuchObject,
                    format!("unknown name `{name}`"),
                )),
            }
        }
        "lookup" => {
            let name = req.args.get_str("name").map_err(bad_args)?;
            match table.records.get(name) {
                Some(rec) => Ok(rec.to_value()),
                None => Err(RemoteError::new(
                    ErrorCode::NoSuchObject,
                    format!("unknown name `{name}`"),
                )),
            }
        }
        "list" => Ok(Value::record([(
            "names",
            Value::list(table.records.keys().map(Value::str)),
        )])),
        other => Err(RemoteError::new(ErrorCode::NoSuchOp, other.to_owned())),
    }
}

/// The name-server process body; spawn it yourself for custom placements:
///
/// ```
/// use simnet::{Simulation, NetworkConfig, NodeId, PortId};
///
/// let sim = Simulation::new(NetworkConfig::lan(), 0);
/// sim.spawn_at("names", NodeId(2), PortId(1), naming::name_server_body);
/// ```
pub fn name_server_body(ctx: &mut Ctx) {
    let mut table = NameTable::default();
    let mut server = RpcServer::new();
    server.serve(ctx, |_ctx, req| handle(&mut table, req), |_, _| {});
}

/// Spawns the name server on `node` at [`NAME_SERVER_PORT`], returning
/// its endpoint.
///
/// # Panics
///
/// Panics if the port is already bound on that node.
pub fn spawn_name_server(sim: &Simulation, node: NodeId) -> Endpoint {
    sim.spawn_at("name-server", node, NAME_SERVER_PORT, name_server_body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(op: &str, args: Value) -> Request {
        Request {
            call_id: 1,
            reply_to: Endpoint::new(NodeId(9), PortId(70000)),
            object: String::new(),
            op: op.into(),
            args,
            span: 0,
        }
    }

    fn ep_value(n: u32, p: u32) -> Value {
        rpc::endpoint_to_value(Endpoint::new(NodeId(n), PortId(p)))
    }

    #[test]
    fn register_then_lookup() {
        let mut t = NameTable::default();
        let r = handle(
            &mut t,
            &req(
                "register",
                Value::record([("name", Value::str("kv")), ("ep", ep_value(1, 2))]),
            ),
        )
        .unwrap();
        assert_eq!(r.get_u64("gen").unwrap(), 1);
        let rec = handle(
            &mut t,
            &req("lookup", Value::record([("name", Value::str("kv"))])),
        )
        .unwrap();
        let rec = NameRecord::from_value(&rec).unwrap();
        assert_eq!(rec.endpoint, Endpoint::new(NodeId(1), PortId(2)));
    }

    #[test]
    fn update_bumps_generation_and_moves() {
        let mut t = NameTable::default();
        handle(
            &mut t,
            &req(
                "register",
                Value::record([("name", Value::str("kv")), ("ep", ep_value(1, 2))]),
            ),
        )
        .unwrap();
        let r = handle(
            &mut t,
            &req(
                "update",
                Value::record([("name", Value::str("kv")), ("ep", ep_value(3, 4))]),
            ),
        )
        .unwrap();
        assert_eq!(r.get_u64("gen").unwrap(), 2);
        let rec = NameRecord::from_value(
            &handle(
                &mut t,
                &req("lookup", Value::record([("name", Value::str("kv"))])),
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(rec.endpoint, Endpoint::new(NodeId(3), PortId(4)));
        assert_eq!(rec.generation, 2);
    }

    #[test]
    fn unknown_name_is_no_such_object() {
        let mut t = NameTable::default();
        let e = handle(
            &mut t,
            &req("lookup", Value::record([("name", Value::str("x"))])),
        )
        .unwrap_err();
        assert_eq!(e.code, ErrorCode::NoSuchObject);
        let e = handle(
            &mut t,
            &req(
                "update",
                Value::record([("name", Value::str("x")), ("ep", ep_value(0, 0))]),
            ),
        )
        .unwrap_err();
        assert_eq!(e.code, ErrorCode::NoSuchObject);
        let e = handle(
            &mut t,
            &req("unregister", Value::record([("name", Value::str("x"))])),
        )
        .unwrap_err();
        assert_eq!(e.code, ErrorCode::NoSuchObject);
    }

    #[test]
    fn list_is_sorted() {
        let mut t = NameTable::default();
        for n in ["zeta", "alpha", "mid"] {
            handle(
                &mut t,
                &req(
                    "register",
                    Value::record([("name", Value::str(n)), ("ep", ep_value(0, 1))]),
                ),
            )
            .unwrap();
        }
        let r = handle(&mut t, &req("list", Value::Null)).unwrap();
        let names: Vec<&str> = r
            .get_list("names")
            .unwrap()
            .iter()
            .filter_map(Value::as_str)
            .collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn bad_args_reported() {
        let mut t = NameTable::default();
        let e = handle(&mut t, &req("register", Value::Null)).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadArgs);
    }

    #[test]
    fn reregister_replaces_binding() {
        let mut t = NameTable::default();
        for p in [2u32, 7] {
            handle(
                &mut t,
                &req(
                    "register",
                    Value::record([("name", Value::str("kv")), ("ep", ep_value(1, p))]),
                ),
            )
            .unwrap();
        }
        let rec = NameRecord::from_value(
            &handle(
                &mut t,
                &req("lookup", Value::record([("name", Value::str("kv"))])),
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(rec.endpoint, Endpoint::new(NodeId(1), PortId(7)));
        assert_eq!(rec.generation, 2);
    }
}
