//! The shared, read-optimized name directory.
//!
//! A single-process name server keeps its table as process-local state,
//! which is fine until a million clients poll `bind_async` against it:
//! every NotFound-backoff retry then funnels through one exclusive
//! table. [`Directory`] is the read-optimized alternative: the table is
//! striped into shards keyed by name hash, each behind its own
//! `RwLock`, so lookups (by far the dominant operation) take a shared
//! read lock on one stripe and never contend with lookups of other
//! names — or even of other readers of the same name. Writes take the
//! write lock of just their stripe.
//!
//! One `Arc<Directory>` can back any number of name-server replicas
//! ([`crate::spawn_name_cluster`]); generations stay globally unique
//! and monotonic across replicas via one shared atomic.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use simnet::Endpoint;
use wire::Value;

use crate::record::NameRecord;

/// Default stripe count (power of two).
const DEFAULT_STRIPES: usize = 16;

/// FNV-1a hash of a name, for stripe selection.
fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A striped name table safe to share across server replicas.
///
/// All operations take `&self`; reads lock one stripe shared, writes
/// lock one stripe exclusive. Generation numbers come from a single
/// atomic, so they are unique and monotonic directory-wide no matter
/// which replica served the write.
#[derive(Debug)]
pub struct Directory {
    stripes: Box<[RwLock<BTreeMap<String, NameRecord>>]>,
    next_gen: AtomicU64,
}

impl Default for Directory {
    fn default() -> Self {
        Directory::with_stripes(DEFAULT_STRIPES)
    }
}

impl Directory {
    /// An empty directory with the default stripe count.
    pub fn new() -> Directory {
        Directory::default()
    }

    /// An empty directory with an explicit stripe count (rounded up to
    /// a power of two, clamped to at least 1). Stripe count affects
    /// contention only, never results.
    pub fn with_stripes(stripes: usize) -> Directory {
        let stripes = stripes.clamp(1, 1 << 12).next_power_of_two();
        Directory {
            stripes: (0..stripes).map(|_| RwLock::new(BTreeMap::new())).collect(),
            next_gen: AtomicU64::new(0),
        }
    }

    fn stripe(&self, name: &str) -> &RwLock<BTreeMap<String, NameRecord>> {
        &self.stripes[(name_hash(name) as usize) & (self.stripes.len() - 1)]
    }

    fn bump(&self) -> u64 {
        self.next_gen.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Binds `name` to `ep` (replacing any existing binding) and
    /// returns the new generation.
    pub fn register(&self, name: &str, ep: Endpoint, meta: Value) -> u64 {
        let gen = self.bump();
        let mut map = self.stripe(name).write().unwrap_or_else(|e| e.into_inner());
        map.insert(
            name.to_string(),
            NameRecord {
                endpoint: ep,
                meta,
                generation: gen,
            },
        );
        gen
    }

    /// Rebinds an existing `name` to `ep`, returning the new generation,
    /// or `None` when the name is not bound. A `Value::Null` meta keeps
    /// the existing meta.
    pub fn update(&self, name: &str, ep: Endpoint, meta: Value) -> Option<u64> {
        let gen = self.bump();
        let mut map = self.stripe(name).write().unwrap_or_else(|e| e.into_inner());
        let rec = map.get_mut(name)?;
        rec.endpoint = ep;
        if meta != Value::Null {
            rec.meta = meta;
        }
        rec.generation = gen;
        Some(gen)
    }

    /// Removes the binding for `name`; `false` when it was not bound.
    pub fn unregister(&self, name: &str) -> bool {
        let mut map = self.stripe(name).write().unwrap_or_else(|e| e.into_inner());
        map.remove(name).is_some()
    }

    /// The current record for `name`, if bound. This is the hot path:
    /// one shared read lock on one stripe.
    pub fn lookup(&self, name: &str) -> Option<NameRecord> {
        let map = self.stripe(name).read().unwrap_or_else(|e| e.into_inner());
        map.get(name).cloned()
    }

    /// All bound names, sorted.
    pub fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        for stripe in self.stripes.iter() {
            let map = stripe.read().unwrap_or_else(|e| e.into_inner());
            names.extend(map.keys().cloned());
        }
        names.sort_unstable();
        names
    }

    /// Number of bound names.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.read().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// True when nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{NodeId, PortId};

    fn ep(n: u32, p: u32) -> Endpoint {
        Endpoint::new(NodeId(n), PortId(p))
    }

    #[test]
    fn register_lookup_roundtrip() {
        let dir = Directory::new();
        let gen = dir.register("kv", ep(1, 2), Value::Null);
        assert_eq!(gen, 1);
        let rec = dir.lookup("kv").expect("bound");
        assert_eq!(rec.endpoint, ep(1, 2));
        assert_eq!(rec.generation, 1);
        assert!(dir.lookup("missing").is_none());
    }

    #[test]
    fn generations_are_unique_across_stripes() {
        let dir = Directory::with_stripes(4);
        let mut gens = Vec::new();
        for i in 0..100 {
            gens.push(dir.register(&format!("svc-{i}"), ep(i, 1), Value::Null));
        }
        let mut sorted = gens.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 100, "generations must be unique");
        assert_eq!(dir.len(), 100);
    }

    #[test]
    fn update_requires_existing_binding() {
        let dir = Directory::new();
        assert!(dir.update("kv", ep(1, 2), Value::Null).is_none());
        dir.register("kv", ep(1, 2), Value::Null);
        let gen = dir.update("kv", ep(3, 4), Value::Null).expect("bound");
        assert!(gen > 1);
        assert_eq!(dir.lookup("kv").unwrap().endpoint, ep(3, 4));
    }

    #[test]
    fn unregister_then_lookup_misses() {
        let dir = Directory::new();
        dir.register("kv", ep(1, 2), Value::Null);
        assert!(dir.unregister("kv"));
        assert!(!dir.unregister("kv"));
        assert!(dir.lookup("kv").is_none());
        assert!(dir.is_empty());
    }

    #[test]
    fn list_is_sorted_across_stripes() {
        let dir = Directory::with_stripes(8);
        for n in ["zeta", "alpha", "mid", "beta"] {
            dir.register(n, ep(0, 1), Value::Null);
        }
        assert_eq!(dir.list(), vec!["alpha", "beta", "mid", "zeta"]);
    }

    #[test]
    fn stripe_count_does_not_change_results() {
        for stripes in [1, 4, 64] {
            let dir = Directory::with_stripes(stripes);
            for i in 0..20 {
                dir.register(&format!("svc-{i}"), ep(i, 1), Value::Null);
            }
            dir.unregister("svc-7");
            let names = dir.list();
            assert_eq!(names.len(), 19);
            assert!(!names.contains(&"svc-7".to_string()));
        }
    }
}
