//! The record a name maps to.

use rpc::{endpoint_from_value, endpoint_to_value};
use simnet::Endpoint;
use wire::{Value, WireError};

/// A name binding: where the service lives and how to bind to it.
///
/// `meta` carries the *service-chosen* binding information — in the proxy
/// principle, the proxy specification the service wants installed in its
/// clients. `generation` increases every time the binding changes, letting
/// clients detect stale cached bindings.
#[derive(Debug, Clone, PartialEq)]
pub struct NameRecord {
    /// Where the service currently accepts messages.
    pub endpoint: Endpoint,
    /// Opaque binding metadata (proxy spec, replica list, …).
    pub meta: Value,
    /// Monotonic binding version, bumped by every register/update.
    pub generation: u64,
}

impl NameRecord {
    /// Encodes the record as a wire value.
    pub fn to_value(&self) -> Value {
        Value::record([
            ("ep", endpoint_to_value(self.endpoint)),
            ("meta", self.meta.clone()),
            ("gen", Value::U64(self.generation)),
        ])
    }

    /// Decodes a record from a wire value.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if fields are missing or malformed.
    pub fn from_value(v: &Value) -> Result<NameRecord, WireError> {
        Ok(NameRecord {
            endpoint: endpoint_from_value(v.get("ep").ok_or(WireError::MissingField("ep"))?)?,
            meta: v.get("meta").cloned().unwrap_or(Value::Null),
            generation: v.get_u64("gen")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{NodeId, PortId};

    #[test]
    fn roundtrip() {
        let rec = NameRecord {
            endpoint: Endpoint::new(NodeId(4), PortId(9)),
            meta: Value::record([("proxy", Value::str("caching"))]),
            generation: 17,
        };
        assert_eq!(NameRecord::from_value(&rec.to_value()).unwrap(), rec);
    }

    #[test]
    fn missing_endpoint_rejected() {
        let v = Value::record([("gen", Value::U64(1))]);
        assert!(NameRecord::from_value(&v).is_err());
    }

    #[test]
    fn missing_meta_defaults_to_null() {
        let rec = NameRecord {
            endpoint: Endpoint::new(NodeId(1), PortId(1)),
            meta: Value::Null,
            generation: 1,
        };
        let mut v = rec.to_value();
        if let Value::Record(ref mut fields) = v {
            fields.retain(|(k, _)| k != "meta");
        }
        assert_eq!(NameRecord::from_value(&v).unwrap(), rec);
    }
}
