//! # naming — the name service
//!
//! Services register themselves under a string name together with the
//! metadata a client needs to *bind* to them (in the proxy principle, the
//! service-chosen proxy specification). Clients look names up, cache the
//! bindings, and re-resolve when a binding goes stale — e.g. after the
//! service migrates and bumps its location generation.
//!
//! The name server is itself an ordinary RPC service: the bootstrap
//! problem is solved the classic way, by making its endpoint well known
//! ([`NAME_SERVER_PORT`] on an agreed node).
//!
//! ## Example
//!
//! ```
//! use simnet::{Simulation, NetworkConfig, NodeId};
//! use naming::{spawn_name_server, NameClient};
//! use wire::Value;
//!
//! let mut sim = Simulation::new(NetworkConfig::lan(), 1);
//! let ns = spawn_name_server(&sim, NodeId(0));
//! sim.spawn("svc", NodeId(1), move |ctx| {
//!     let mut nc = NameClient::new(ns);
//!     nc.register(ctx, "printer", ctx.endpoint(), Value::Null).unwrap();
//!     let rec = nc.lookup(ctx, "printer").unwrap();
//!     assert_eq!(rec.endpoint, ctx.endpoint());
//! });
//! sim.run();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod directory;
mod record;
mod server;

pub use directory::Directory;
pub use record::NameRecord;
pub use server::{
    name_server_body, serve_directory, spawn_name_cluster, spawn_name_server, NAME_SERVER_PORT,
};

use std::collections::HashMap;

use rpc::{endpoint_to_value, ErrorCode, RpcClient, RpcError};
use simnet::{Ctx, Endpoint};
use wire::Value;

/// Typed client for the name service, with an optional binding cache.
///
/// The cache is consulted by [`NameClient::resolve`]; a caller that
/// discovers a binding is stale (e.g. an RPC to the recorded endpoint
/// times out or returns `Moved`) calls [`NameClient::forget`] and
/// resolves again.
#[derive(Debug)]
pub struct NameClient {
    rpc: RpcClient,
    cache: HashMap<String, NameRecord>,
    /// Cache hits served without contacting the name server.
    pub cache_hits: u64,
    /// Lookups that had to contact the name server.
    pub cache_misses: u64,
}

impl NameClient {
    /// Creates a client for the name server at `ns`.
    pub fn new(ns: Endpoint) -> NameClient {
        NameClient {
            rpc: RpcClient::new(ns),
            cache: HashMap::new(),
            cache_hits: 0,
            cache_misses: 0,
        }
    }

    /// Registers (or replaces) `name` with a location and binding
    /// metadata, returning the new generation.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the underlying call.
    pub fn register(
        &mut self,
        ctx: &mut Ctx,
        name: &str,
        endpoint: Endpoint,
        meta: Value,
    ) -> Result<u64, RpcError> {
        let rep = self.rpc.call(
            ctx,
            "register",
            Value::record([
                ("name", Value::str(name)),
                ("ep", endpoint_to_value(endpoint)),
                ("meta", meta),
            ]),
        )?;
        Ok(rep.get_u64("gen")?)
    }

    /// Updates the location of an existing name (migration), bumping its
    /// generation.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoSuchObject`] if the name is unknown, or any
    /// transport error.
    pub fn update(
        &mut self,
        ctx: &mut Ctx,
        name: &str,
        endpoint: Endpoint,
        meta: Value,
    ) -> Result<u64, RpcError> {
        let rep = self.rpc.call(
            ctx,
            "update",
            Value::record([
                ("name", Value::str(name)),
                ("ep", endpoint_to_value(endpoint)),
                ("meta", meta),
            ]),
        )?;
        self.cache.remove(name);
        Ok(rep.get_u64("gen")?)
    }

    /// Removes a name.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoSuchObject`] if the name is unknown, or any
    /// transport error.
    pub fn unregister(&mut self, ctx: &mut Ctx, name: &str) -> Result<(), RpcError> {
        self.rpc.call(
            ctx,
            "unregister",
            Value::record([("name", Value::str(name))]),
        )?;
        self.cache.remove(name);
        Ok(())
    }

    /// Looks `name` up at the name server (bypassing the cache) and
    /// refreshes the cache entry.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoSuchObject`] if the name is unknown, or any
    /// transport error.
    pub fn lookup(&mut self, ctx: &mut Ctx, name: &str) -> Result<NameRecord, RpcError> {
        let rep = self
            .rpc
            .call(ctx, "lookup", Value::record([("name", Value::str(name))]))?;
        let rec = NameRecord::from_value(&rep)?;
        self.cache.insert(name.to_owned(), rec.clone());
        Ok(rec)
    }

    /// Resolves `name`, preferring the local binding cache.
    ///
    /// # Errors
    ///
    /// Same as [`NameClient::lookup`] on a cache miss.
    pub fn resolve(&mut self, ctx: &mut Ctx, name: &str) -> Result<NameRecord, RpcError> {
        if let Some(rec) = self.cache.get(name) {
            self.cache_hits += 1;
            return Ok(rec.clone());
        }
        self.cache_misses += 1;
        self.lookup(ctx, name)
    }

    /// Drops a cached binding (after discovering it is stale).
    pub fn forget(&mut self, name: &str) {
        self.cache.remove(name);
    }

    /// Lists all registered names in lexicographic order.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the underlying call.
    pub fn list(&mut self, ctx: &mut Ctx) -> Result<Vec<String>, RpcError> {
        let rep = self.rpc.call(ctx, "list", Value::Null)?;
        let items = rep.get_list("names")?;
        Ok(items
            .iter()
            .filter_map(|v| v.as_str().map(str::to_owned))
            .collect())
    }
}

/// Convenience: true if the error is "name not found".
pub fn is_not_found(err: &RpcError) -> bool {
    matches!(err, RpcError::Remote(e) if e.code == ErrorCode::NoSuchObject)
}
