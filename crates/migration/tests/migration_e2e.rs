//! End-to-end migration tests: transparency, forwarding chains, path
//! compression modes, and naming updates.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use migration::{request_migration, spawn_migratable, ForwardMode, MigratableConfig};
use naming::spawn_name_server;
use proxy_core::{ClientRuntime, FactoryRegistry, InterfaceDesc, OpDesc, ServiceObject};
use rpc::{ErrorCode, RemoteError};
use simnet::{Ctx, NetworkConfig, NodeId, Simulation};
use wire::Value;

/// A counter object whose state must survive every migration.
struct Counter(u64);

impl ServiceObject for Counter {
    fn interface(&self) -> InterfaceDesc {
        InterfaceDesc::new(
            "counter",
            [OpDesc::read_whole("get"), OpDesc::write_whole("inc")],
        )
    }

    fn dispatch(&mut self, _ctx: &mut Ctx, op: &str, _args: &Value) -> Result<Value, RemoteError> {
        match op {
            "get" => Ok(Value::U64(self.0)),
            "inc" => {
                self.0 += 1;
                Ok(Value::U64(self.0))
            }
            other => Err(RemoteError::new(ErrorCode::NoSuchOp, other.to_owned())),
        }
    }

    fn snapshot(&self) -> Result<Value, RemoteError> {
        Ok(Value::U64(self.0))
    }
}

fn counter_factory() -> FactoryRegistry {
    FactoryRegistry::new().register("counter", |v| {
        Ok(Box::new(Counter(v.as_u64().unwrap_or(0))))
    })
}

#[test]
fn migration_is_transparent_and_preserves_state() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 1);
    let ns = spawn_name_server(&sim, NodeId(0));
    let home = spawn_migratable(
        &sim,
        NodeId(1),
        ns,
        MigratableConfig::new("ctr"),
        counter_factory(),
        || Box::new(Counter(0)),
    );
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let ctr = rt.bind(ctx, "ctr").unwrap();
        for _ in 0..5 {
            rt.invoke(ctx, ctr, "inc", Value::Null).unwrap();
        }
        let new_ep = request_migration(ctx, home, NodeId(3)).unwrap();
        assert_eq!(new_ep.node, NodeId(3));
        // Same proxy keeps working; count survived the move.
        assert_eq!(
            rt.invoke(ctx, ctr, "get", Value::Null).unwrap(),
            Value::U64(5)
        );
        assert_eq!(
            rt.invoke(ctx, ctr, "inc", Value::Null).unwrap(),
            Value::U64(6)
        );
        assert_eq!(rt.stats(ctr).rebinds, 1, "one redirect expected");
    });
    sim.run();
}

/// Builds a chain of `hops` migrations and returns (first-call rebinds,
/// second-call rebinds) observed by a fresh client that bound before any
/// migration.
fn chain_rebinds(mode: ForwardMode, hops: u32, seed: u64) -> (u64, u64) {
    let mut sim = Simulation::new(NetworkConfig::lan(), seed);
    let ns = spawn_name_server(&sim, NodeId(0));
    let home = spawn_migratable(
        &sim,
        NodeId(1),
        ns,
        MigratableConfig::new("ctr").with_forward_mode(mode),
        counter_factory(),
        || Box::new(Counter(7)),
    );
    let out = Arc::new(AtomicU64::new(0));
    let out2 = Arc::clone(&out);
    sim.spawn("client", NodeId(100), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let ctr = rt.bind(ctx, "ctr").unwrap();
        // Bind is warm: one call before any migration.
        assert_eq!(
            rt.invoke(ctx, ctr, "get", Value::Null).unwrap(),
            Value::U64(7)
        );

        // Build the chain: node 1 -> 2 -> 3 -> ...
        let mut host = home;
        for i in 0..hops {
            host = request_migration(ctx, host, NodeId(2 + i)).unwrap();
        }

        let before = rt.stats(ctr).rebinds;
        assert_eq!(
            rt.invoke(ctx, ctr, "get", Value::Null).unwrap(),
            Value::U64(7)
        );
        let first = rt.stats(ctr).rebinds - before;
        assert_eq!(
            rt.invoke(ctx, ctr, "get", Value::Null).unwrap(),
            Value::U64(7)
        );
        let second = rt.stats(ctr).rebinds - before - first;
        out2.store(first * 1000 + second, Ordering::SeqCst);
    });
    sim.run();
    let packed = out.load(Ordering::SeqCst);
    (packed / 1000, packed % 1000)
}

#[test]
fn next_hop_chain_costs_one_redirect_per_hop_then_none() {
    for hops in [1u32, 3, 6] {
        let (first, second) = chain_rebinds(ForwardMode::NextHop, hops, 42 + hops as u64);
        assert_eq!(
            first, hops as u64,
            "first call after {hops} migrations should pay {hops} redirects"
        );
        assert_eq!(second, 0, "path compression failed: second call redirected");
    }
}

#[test]
fn resolving_forwarder_collapses_chain_to_one_redirect() {
    for hops in [1u32, 3, 6] {
        let (first, second) = chain_rebinds(ForwardMode::Resolve, hops, 80 + hops as u64);
        assert_eq!(
            first, 1,
            "resolving forwarder should redirect straight to the home ({hops} hops)"
        );
        assert_eq!(second, 0);
    }
}

#[test]
fn naming_updates_let_fresh_clients_bind_directly() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 5);
    let ns = spawn_name_server(&sim, NodeId(0));
    let home = spawn_migratable(
        &sim,
        NodeId(1),
        ns,
        MigratableConfig::new("ctr").with_naming_updates(),
        counter_factory(),
        || Box::new(Counter(1)),
    );
    sim.spawn("admin", NodeId(2), move |ctx| {
        // Move twice with naming updates.
        let h2 = request_migration(ctx, home, NodeId(3)).unwrap();
        let _h3 = request_migration(ctx, h2, NodeId(4)).unwrap();
        // A fresh client binds *after* the moves: naming points at the
        // current home, so no redirects at all.
        let mut rt = ClientRuntime::new(ns);
        let ctr = rt.bind(ctx, "ctr").unwrap();
        assert_eq!(
            rt.invoke(ctx, ctr, "get", Value::Null).unwrap(),
            Value::U64(1)
        );
        assert_eq!(
            rt.stats(ctr).rebinds,
            0,
            "fresh bind should hit the home directly"
        );
    });
    sim.run();
}

#[test]
fn migrating_twice_to_same_chain_is_consistent_under_writes() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 6);
    let ns = spawn_name_server(&sim, NodeId(0));
    let home = spawn_migratable(
        &sim,
        NodeId(1),
        ns,
        MigratableConfig::new("ctr"),
        counter_factory(),
        || Box::new(Counter(0)),
    );
    sim.spawn("client", NodeId(9), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let ctr = rt.bind(ctx, "ctr").unwrap();
        let mut expected = 0u64;
        let mut host = home;
        for round in 0..4u32 {
            for _ in 0..3 {
                expected += 1;
                assert_eq!(
                    rt.invoke(ctx, ctr, "inc", Value::Null).unwrap(),
                    Value::U64(expected),
                    "count drifted after {round} migrations"
                );
            }
            host = request_migration(ctx, host, NodeId(2 + round)).unwrap();
        }
        assert_eq!(
            rt.invoke(ctx, ctr, "get", Value::Null).unwrap(),
            Value::U64(expected)
        );
    });
    sim.run();
}

#[test]
fn locate_returns_current_home() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 7);
    let ns = spawn_name_server(&sim, NodeId(0));
    let home = spawn_migratable(
        &sim,
        NodeId(1),
        ns,
        MigratableConfig::new("ctr").with_forward_mode(ForwardMode::Resolve),
        counter_factory(),
        || Box::new(Counter(0)),
    );
    sim.spawn("admin", NodeId(2), move |ctx| {
        let h2 = request_migration(ctx, home, NodeId(3)).unwrap();
        let h3 = request_migration(ctx, h2, NodeId(4)).unwrap();
        // Ask the original (now twice-stale) host where the object is.
        let mut c = rpc::RpcClient::new(home);
        let v = c.call(ctx, migration::OP_LOCATE, Value::Null).unwrap();
        let located = rpc::endpoint_from_value(&v).unwrap();
        assert_eq!(located, h3, "resolve-mode forwarder should know the home");
    });
    sim.run();
}
