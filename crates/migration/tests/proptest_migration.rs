//! Property-based tests of migration invariants: for any sequence of
//! migrations interleaved with client operations, state is never lost,
//! operations execute exactly once, and the client always reconverges
//! on the object's true home.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use migration::{request_migration, spawn_migratable, ForwardMode, MigratableConfig};
use proptest::prelude::*;
use proxy_core::{ClientRuntime, FactoryRegistry, InterfaceDesc, OpDesc, ServiceObject};
use rpc::{ErrorCode, RemoteError};
use simnet::{Ctx, NetworkConfig, NodeId, Simulation};
use wire::Value;

struct Counter(u64);

impl ServiceObject for Counter {
    fn interface(&self) -> InterfaceDesc {
        InterfaceDesc::new(
            "counter",
            [OpDesc::read_whole("get"), OpDesc::write_whole("inc")],
        )
    }
    fn dispatch(&mut self, _ctx: &mut Ctx, op: &str, _args: &Value) -> Result<Value, RemoteError> {
        match op {
            "get" => Ok(Value::U64(self.0)),
            "inc" => {
                self.0 += 1;
                Ok(Value::U64(self.0))
            }
            other => Err(RemoteError::new(ErrorCode::NoSuchOp, other.to_owned())),
        }
    }
    fn snapshot(&self) -> Result<Value, RemoteError> {
        Ok(Value::U64(self.0))
    }
}

fn factories() -> FactoryRegistry {
    FactoryRegistry::new().register("counter", |v| {
        Ok(Box::new(Counter(v.as_u64().unwrap_or(0))))
    })
}

#[derive(Debug, Clone, Copy)]
enum Step {
    Inc,
    Get,
    Migrate(u8),
    Pause(u8),
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            3 => Just(Step::Inc),
            3 => Just(Step::Get),
            1 => (0u8..6).prop_map(Step::Migrate),
            1 => (1u8..10).prop_map(Step::Pause),
        ],
        1..25,
    )
}

fn run_schedule(steps: Vec<Step>, mode: ForwardMode, seed: u64) -> Result<(), TestCaseError> {
    let mut sim = Simulation::new(NetworkConfig::lan(), seed);
    let ns = naming::spawn_name_server(&sim, NodeId(0));
    let home = spawn_migratable(
        &sim,
        NodeId(1),
        ns,
        MigratableConfig::new("ctr").with_forward_mode(mode),
        factories(),
        || Box::new(Counter(0)),
    );
    let failure: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
    let f2 = Arc::clone(&failure);
    sim.spawn("driver", NodeId(40), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let ctr = rt.bind(ctx, "ctr").unwrap();
        let mut expected = 0u64;
        let mut host = home;
        for (i, step) in steps.iter().enumerate() {
            match step {
                Step::Inc => {
                    expected += 1;
                    let v = rt
                        .invoke(ctx, ctr, "inc", Value::Null)
                        .unwrap()
                        .as_u64()
                        .unwrap();
                    if v != expected {
                        *f2.lock().unwrap() = Some(format!(
                            "step {i}: inc returned {v}, expected {expected} — \
                             a migration lost or duplicated an increment"
                        ));
                        return;
                    }
                }
                Step::Get => {
                    let v = rt
                        .invoke(ctx, ctr, "get", Value::Null)
                        .unwrap()
                        .as_u64()
                        .unwrap();
                    if v != expected {
                        *f2.lock().unwrap() =
                            Some(format!("step {i}: get returned {v}, expected {expected}"));
                        return;
                    }
                }
                Step::Migrate(node) => {
                    // Target nodes 10..16; migrating to the current node
                    // is legal (object moves to a sibling process).
                    host = request_migration(ctx, host, NodeId(10 + *node as u32)).unwrap();
                }
                Step::Pause(ms) => {
                    let _ = ctx.sleep(Duration::from_millis(*ms as u64));
                }
            }
        }
    });
    sim.run();
    if let Some(msg) = failure.lock().unwrap().take() {
        return Err(TestCaseError::fail(msg));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn state_survives_arbitrary_migration_schedules_nexthop(
        steps in arb_steps(), seed in 0u64..10_000
    ) {
        run_schedule(steps, ForwardMode::NextHop, seed)?;
    }

    #[test]
    fn state_survives_arbitrary_migration_schedules_resolve(
        steps in arb_steps(), seed in 0u64..10_000
    ) {
        run_schedule(steps, ForwardMode::Resolve, seed)?;
    }
}
