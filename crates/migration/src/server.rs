//! The migratable service host and its forwarder after-life.

use naming::NameClient;
use proxy_core::{protocol, FactoryRegistry, InterfaceDesc, ProxySpec, ServiceObject};
use rpc::{
    endpoint_from_value, endpoint_to_value, ErrorCode, RemoteError, Request, RpcClient, RpcError,
    RpcServer,
};
use simnet::{Ctx, Endpoint, NodeId, Simulation};
use wire::Value;

/// The administrative operation that orders a move.
pub const OP_MIGRATE: &str = "_migrate";
/// Asks a host (or forwarder) where the object currently lives.
pub const OP_LOCATE: &str = "_locate";

/// How a forwarder answers requests for a departed object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardMode {
    /// Redirect to the immediate next hop: clients traverse the chain
    /// themselves (lazy compression; each traversal is one extra RTT per
    /// hop, paid once per client).
    NextHop,
    /// Resolve the chain server-side (`_locate` recursion, cached) and
    /// redirect clients straight to the current home (eager compression;
    /// the forwarder pays the chain walk once, every client saves it).
    Resolve,
}

/// Configuration for a migratable service.
#[derive(Debug, Clone)]
pub struct MigratableConfig {
    /// Service name registered with the name service.
    pub service: String,
    /// Proxy the service asks its clients to run.
    pub spec: ProxySpec,
    /// Whether each migration also updates the name service (when false,
    /// moved objects are reachable only through forwarding chains).
    pub update_naming: bool,
    /// Forwarder behaviour.
    pub forward_mode: ForwardMode,
}

impl MigratableConfig {
    /// Stub-proxy service with forwarding chains (no naming updates) and
    /// next-hop redirects — the configuration experiment E10 studies.
    pub fn new(service: impl Into<String>) -> MigratableConfig {
        MigratableConfig {
            service: service.into(),
            spec: ProxySpec::Stub,
            update_naming: false,
            forward_mode: ForwardMode::NextHop,
        }
    }

    /// Sets the proxy spec published at registration.
    pub fn with_spec(mut self, spec: ProxySpec) -> MigratableConfig {
        self.spec = spec;
        self
    }

    /// Also update the name service on every migration.
    pub fn with_naming_updates(mut self) -> MigratableConfig {
        self.update_naming = true;
        self
    }

    /// Sets the forwarder behaviour.
    pub fn with_forward_mode(mut self, mode: ForwardMode) -> MigratableConfig {
        self.forward_mode = mode;
        self
    }
}

/// Error from [`request_migration`].
#[derive(Debug, Clone, PartialEq)]
pub enum MigrationError {
    /// The migrate call failed.
    Rpc(RpcError),
    /// The reply did not carry the new endpoint.
    BadReply,
}

impl std::fmt::Display for MigrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrationError::Rpc(e) => write!(f, "migration call failed: {e}"),
            MigrationError::BadReply => write!(f, "migration reply missing new endpoint"),
        }
    }
}

impl std::error::Error for MigrationError {}

/// Orders the object hosted at `host` to move to `target`, returning its
/// new endpoint. The old host keeps forwarding.
///
/// # Errors
///
/// [`MigrationError`] if the call fails or the reply is malformed.
pub fn request_migration(
    ctx: &mut Ctx,
    host: Endpoint,
    target: NodeId,
) -> Result<Endpoint, MigrationError> {
    let mut client = RpcClient::new(host);
    let reply = client
        .call(
            ctx,
            OP_MIGRATE,
            Value::record([("node", Value::U64(target.0.into()))]),
        )
        .map_err(MigrationError::Rpc)?;
    reply
        .get("ep")
        .and_then(|v| endpoint_from_value(v).ok())
        .ok_or(MigrationError::BadReply)
}

/// State shipped to a freshly spawned host.
struct HostSeed {
    config: MigratableConfig,
    ns: Endpoint,
    factories: FactoryRegistry,
    object: Box<dyn ServiceObject>,
    /// Only the very first host registers the name.
    register: bool,
}

/// Spawns the initial host of a migratable service on `node`.
///
/// The object's type (its `InterfaceDesc::type_name`) must be buildable
/// by `factories`, since every migration reconstructs it from a snapshot.
pub fn spawn_migratable<F>(
    sim: &Simulation,
    node: NodeId,
    ns: Endpoint,
    config: MigratableConfig,
    factories: FactoryRegistry,
    make_object: F,
) -> Endpoint
where
    F: FnOnce() -> Box<dyn ServiceObject> + Send + 'static,
{
    let label = format!("migratable-{}", config.service);
    sim.spawn(label, node, move |ctx| {
        host_body(
            ctx,
            HostSeed {
                config,
                ns,
                factories,
                object: make_object(),
                register: true,
            },
        );
    })
}

/// Serves the object until a migration order arrives, then becomes a
/// forwarder for the rest of the process's life.
fn host_body(ctx: &mut Ctx, seed: HostSeed) {
    let HostSeed {
        config,
        ns,
        factories,
        mut object,
        register,
    } = seed;
    let iface = object.interface();

    if register {
        let meta = Value::record([
            ("spec", config.spec.to_value()),
            ("iface", iface.to_value()),
        ]);
        let mut nc = NameClient::new(ns);
        match nc.register(ctx, &config.service, ctx.endpoint(), meta) {
            Ok(_) => {}
            Err(RpcError::Stopped) => return,
            Err(e) => panic!("migratable `{}` failed to register: {e}", config.service),
        }
    }

    let mut rpc = RpcServer::new();
    let mut departed_to: Option<Endpoint> = None;

    while departed_to.is_none() {
        let msg = match ctx.recv() {
            Ok(m) => m,
            Err(_) => return,
        };
        let obj = &mut object;
        let departed = &mut departed_to;
        let cfg = &config;
        let ifc = &iface;
        let facs = &factories;
        rpc.handle(ctx, &msg, |ctx, req| {
            execute_host(ctx, req, obj, ifc, cfg, facs, ns, departed)
        });
    }

    forwarder_body(
        ctx,
        rpc,
        departed_to.expect("departed"),
        config.forward_mode,
    );
}

#[allow(clippy::too_many_arguments)]
fn execute_host(
    ctx: &mut Ctx,
    req: &Request,
    object: &mut Box<dyn ServiceObject>,
    iface: &InterfaceDesc,
    config: &MigratableConfig,
    factories: &FactoryRegistry,
    ns: Endpoint,
    departed: &mut Option<Endpoint>,
) -> Result<Value, RemoteError> {
    match req.op.as_str() {
        protocol::OP_PING => Ok(Value::Null),
        protocol::OP_IFACE => Ok(iface.to_value()),
        protocol::OP_SNAPSHOT => object.snapshot(),
        OP_LOCATE => Ok(endpoint_to_value(ctx.endpoint())),
        OP_MIGRATE => {
            let node = NodeId(
                u32::try_from(
                    req.args
                        .get_u64("node")
                        .map_err(|e| RemoteError::new(ErrorCode::BadArgs, e.to_string()))?,
                )
                .map_err(|_| RemoteError::new(ErrorCode::BadArgs, "node id out of range"))?,
            );
            let state = object.snapshot()?;
            let restored = factories.create(&iface.type_name, &state)?;
            let seed = HostSeed {
                config: config.clone(),
                ns,
                factories: factories.clone(),
                object: restored,
                register: false,
            };
            let label = format!("migratable-{}", config.service);
            let new_ep = ctx.spawn(label, node, move |cctx| host_body(cctx, seed));
            if config.update_naming {
                let mut nc = NameClient::new(ns);
                let _ = nc.update(ctx, &config.service, new_ep, Value::Null);
            }
            *departed = Some(new_ep);
            ctx.trace(simnet::TraceEvent::Migrated {
                service: config.service.clone(),
                from: ctx.endpoint(),
                to: new_ep,
                span: ctx.current_span(),
            });
            Ok(Value::record([("ep", endpoint_to_value(new_ep))]))
        }
        op if op.starts_with('_') => Err(RemoteError::new(ErrorCode::NoSuchOp, op.to_owned())),
        op => object.dispatch(ctx, op, &req.args),
    }
}

/// The after-life of a host whose object departed: answer everything
/// with a redirect.
fn forwarder_body(ctx: &mut Ctx, mut rpc: RpcServer, next_hop: Endpoint, mode: ForwardMode) {
    // For `Resolve` mode: the chain-walk result, refreshed lazily when a
    // redirected client bounces back (it won't — it goes to the target —
    // so in practice resolved once and cached).
    let mut resolved: Option<Endpoint> = None;

    while let Ok(msg) = ctx.recv() {
        let target = match mode {
            ForwardMode::NextHop => next_hop,
            ForwardMode::Resolve => match resolved {
                Some(ep) => ep,
                None => {
                    let ep = resolve_chain(ctx, next_hop);
                    resolved = Some(ep);
                    ep
                }
            },
        };
        rpc.handle(ctx, &msg, |fctx, req| match req.op.as_str() {
            OP_LOCATE => Ok(endpoint_to_value(target)),
            _ => {
                fctx.trace(simnet::TraceEvent::Forwarded {
                    from: fctx.endpoint(),
                    to: target,
                    span: fctx.current_span(),
                });
                Err(RemoteError::with_data(
                    ErrorCode::Moved,
                    "object has migrated",
                    endpoint_to_value(target),
                ))
            }
        });
    }
}

/// Walks the forwarding chain via `_locate` until it reaches a live host
/// (which answers with its own endpoint) or the walk stops progressing.
fn resolve_chain(ctx: &mut Ctx, first: Endpoint) -> Endpoint {
    let mut current = first;
    for _ in 0..32 {
        let mut client = RpcClient::new(current);
        match client.call(ctx, OP_LOCATE, Value::Null) {
            Ok(v) => match endpoint_from_value(&v) {
                Ok(ep) if ep != current => current = ep,
                _ => return current,
            },
            Err(_) => return current,
        }
    }
    current
}
