//! # migration — relocating objects between nodes
//!
//! The proxy principle makes object location a *service-side* concern, so
//! a service may move its object to another node without telling its
//! clients. This crate implements that machinery:
//!
//! * [`spawn_migratable`] — a service host whose object can be ordered to
//!   another node at runtime (`_migrate`). The old host becomes a
//!   **forwarder** that answers every request with a `Moved` redirect;
//!   proxies follow redirects and cache the new location (lazy path
//!   compression).
//! * [`ForwardMode`] — redirect either to the immediate next hop
//!   ([`ForwardMode::NextHop`]) or resolve the whole forwarding chain
//!   server-side and redirect straight to the object's current home
//!   ([`ForwardMode::Resolve`]). Experiment E10 compares the two.
//! * [`request_migration`] — the administrative call that triggers a move.
//!
//! Repeated migrations without name-service updates build forwarding
//! *chains*: the first post-move call pays one hop per traversed
//! forwarder, after which the client's proxy points at the true home.
//!
//! ## Example
//!
//! ```
//! use simnet::{Simulation, NetworkConfig, NodeId};
//! use naming::spawn_name_server;
//! use migration::{spawn_migratable, request_migration, MigratableConfig, ForwardMode};
//! use proxy_core::{ClientRuntime, FactoryRegistry, ProxySpec};
//! # use proxy_core::{InterfaceDesc, OpDesc, ServiceObject};
//! # use rpc::{RemoteError, ErrorCode};
//! use wire::Value;
//! # struct Reg(u64);
//! # impl ServiceObject for Reg {
//! #     fn interface(&self) -> InterfaceDesc {
//! #         InterfaceDesc::new("reg", [OpDesc::read_whole("read")])
//! #     }
//! #     fn dispatch(&mut self, _c: &mut simnet::Ctx, op: &str, _a: &Value) -> Result<Value, RemoteError> {
//! #         match op { "read" => Ok(Value::U64(self.0)), o => Err(RemoteError::new(ErrorCode::NoSuchOp, o.to_owned())) }
//! #     }
//! #     fn snapshot(&self) -> Result<Value, RemoteError> { Ok(Value::U64(self.0)) }
//! # }
//! # fn reg_factory() -> FactoryRegistry {
//! #     FactoryRegistry::new().register("reg", |v| Ok(Box::new(Reg(v.as_u64().unwrap_or(0)))))
//! # }
//!
//! let mut sim = Simulation::new(NetworkConfig::lan(), 1);
//! let ns = spawn_name_server(&sim, NodeId(0));
//! let home = spawn_migratable(
//!     &sim, NodeId(1), ns,
//!     MigratableConfig::new("reg").with_forward_mode(ForwardMode::NextHop),
//!     reg_factory(),
//!     || Box::new(Reg(5)),
//! );
//! sim.spawn("admin+client", NodeId(2), move |ctx| {
//!     let mut rt = ClientRuntime::new(ns);
//!     let reg = rt.bind(ctx, "reg").unwrap();
//!     assert_eq!(rt.invoke(ctx, reg, "read", Value::Null).unwrap(), Value::U64(5));
//!     // Move the object to node 3; the old host becomes a forwarder.
//!     request_migration(ctx, home, NodeId(3)).unwrap();
//!     // Same proxy, same call: transparently redirected.
//!     assert_eq!(rt.invoke(ctx, reg, "read", Value::Null).unwrap(), Value::U64(5));
//!     assert_eq!(rt.stats(reg).rebinds, 1);
//! });
//! sim.run();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod server;

pub use server::{
    request_migration, spawn_migratable, ForwardMode, MigratableConfig, MigrationError, OP_LOCATE,
    OP_MIGRATE,
};
