//! End-to-end coherence tests for the DSM protocol.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dsm::{spawn_dsm_manager, DsmClient, Mode, PageId};
use simnet::{NetworkConfig, NodeId, Simulation};

const PAGE: usize = 64;

#[test]
fn write_then_remote_read_sees_latest_bytes() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 1);
    let manager = spawn_dsm_manager(&sim, NodeId(0), PAGE);
    let done = Arc::new(AtomicU64::new(0));
    let d2 = Arc::clone(&done);
    sim.spawn("writer", NodeId(1), move |ctx| {
        let mut mem = DsmClient::attach(ctx, manager);
        mem.write(ctx, PageId(0), 0, b"v1").unwrap();
        ctx.sleep(Duration::from_millis(20)).unwrap();
        // Reader has demoted us to a shared mapping by now.
        assert_eq!(mem.mapping(PageId(0)), Some(Mode::Read));
    });
    sim.spawn("reader", NodeId(2), move |ctx| {
        ctx.sleep(Duration::from_millis(5)).unwrap();
        let mut mem = DsmClient::attach(ctx, manager);
        let v = mem.read(ctx, PageId(0), 0, 2).unwrap();
        assert_eq!(&v, b"v1", "reader must see the writer's bytes");
        d2.store(1, Ordering::SeqCst);
    });
    sim.run();
    assert_eq!(done.load(Ordering::SeqCst), 1);
}

#[test]
fn exclusive_writes_are_free_after_the_fault() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 2);
    let manager = spawn_dsm_manager(&sim, NodeId(0), PAGE);
    sim.spawn("writer", NodeId(1), move |ctx| {
        let mut mem = DsmClient::attach(ctx, manager);
        mem.write(ctx, PageId(7), 0, b"x").unwrap(); // fault
        let t0 = ctx.now();
        for i in 0..100usize {
            mem.write(ctx, PageId(7), i % PAGE, b"y").unwrap();
        }
        assert_eq!(ctx.now(), t0, "mapped writes must cost zero simulated time");
        assert_eq!(mem.stats.write_faults, 1);
        assert_eq!(mem.stats.write_hits, 100);
    });
    let report = sim.run();
    // One fault round-trip plus nothing else page-related.
    assert!(report.metrics.msgs_sent <= 4, "unexpected protocol traffic");
}

#[test]
fn writer_invalidates_all_readers() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 3);
    let manager = spawn_dsm_manager(&sim, NodeId(0), PAGE);
    let stale_reads = Arc::new(AtomicU64::new(0));
    // Two readers map the page, then a writer updates it; both readers
    // must observe the new value on their next read (their copies were
    // shot down synchronously before the write was granted).
    for r in 0..2u32 {
        let stale = Arc::clone(&stale_reads);
        sim.spawn(format!("reader{r}"), NodeId(2 + r), move |ctx| {
            let mut mem = DsmClient::attach(ctx, manager);
            let v = mem.read(ctx, PageId(0), 0, 1).unwrap();
            assert_eq!(v[0], 0, "page starts zeroed");
            // Wait past the writer's update.
            ctx.sleep(Duration::from_millis(50)).unwrap();
            let v = mem.read(ctx, PageId(0), 0, 1).unwrap();
            if v[0] != 9 {
                stale.fetch_add(1, Ordering::SeqCst);
            }
            // This read must have faulted (our copy was invalidated).
            assert_eq!(mem.stats.read_faults, 2, "stale mapping survived");
        });
    }
    sim.spawn("writer", NodeId(5), move |ctx| {
        ctx.sleep(Duration::from_millis(20)).unwrap();
        let mut mem = DsmClient::attach(ctx, manager);
        mem.write(ctx, PageId(0), 0, &[9]).unwrap();
    });
    sim.run();
    assert_eq!(stale_reads.load(Ordering::SeqCst), 0, "stale data observed");
}

#[test]
fn ping_pong_ownership_transfers_preserve_data() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 4);
    let manager = spawn_dsm_manager(&sim, NodeId(0), PAGE);
    // Two writers alternately increment a counter byte in the same page.
    // Every increment must be preserved across ownership transfers.
    let final_a = Arc::new(AtomicU64::new(0));
    for w in 0..2u32 {
        let fa = Arc::clone(&final_a);
        sim.spawn(format!("writer{w}"), NodeId(1 + w), move |ctx| {
            let mut mem = DsmClient::attach(ctx, manager);
            for round in 0..10u64 {
                // Loose alternation via sleeps keyed by writer index.
                ctx.sleep(Duration::from_millis(2 + w as u64)).unwrap();
                let cur = mem.read(ctx, PageId(0), 0, 1).unwrap()[0];
                mem.write(ctx, PageId(0), 0, &[cur + 1]).unwrap();
                let _ = round;
            }
            ctx.sleep(Duration::from_millis(80)).unwrap();
            let v = mem.read(ctx, PageId(0), 0, 1).unwrap()[0];
            fa.store(v as u64, Ordering::SeqCst);
        });
    }
    sim.run();
    // NOTE: read-then-write is not atomic across contexts, so increments
    // *can* race (both read N, both write N+1). What the protocol does
    // guarantee is that the final value is between 10 (total serialization
    // of lost updates) and 20 (no lost updates) and both writers converge
    // on the same final byte.
    let v = final_a.load(Ordering::SeqCst);
    assert!((10..=20).contains(&v), "impossible final counter {v}");
}

#[test]
fn reads_scale_without_traffic_once_shared() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 5);
    let manager = spawn_dsm_manager(&sim, NodeId(0), PAGE);
    sim.spawn("reader", NodeId(1), move |ctx| {
        let mut mem = DsmClient::attach(ctx, manager);
        mem.read(ctx, PageId(3), 0, 8).unwrap(); // fault
        let t0 = ctx.now();
        for _ in 0..500 {
            mem.read(ctx, PageId(3), 0, 8).unwrap();
        }
        assert_eq!(ctx.now(), t0, "mapped reads must be free");
        assert_eq!(mem.stats.read_hits, 500);
    });
    sim.run();
}

#[test]
fn out_of_bounds_access_is_rejected_locally() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 6);
    let manager = spawn_dsm_manager(&sim, NodeId(0), PAGE);
    sim.spawn("client", NodeId(1), move |ctx| {
        let mut mem = DsmClient::attach(ctx, manager);
        mem.write(ctx, PageId(0), 0, b"ok").unwrap();
        let err = mem.write(ctx, PageId(0), PAGE - 1, b"xy").unwrap_err();
        assert!(matches!(err, dsm::DsmError::OutOfBounds { .. }));
        let err = mem.read(ctx, PageId(0), 0, PAGE + 1).unwrap_err();
        assert!(matches!(err, dsm::DsmError::OutOfBounds { .. }));
    });
    sim.run();
}
