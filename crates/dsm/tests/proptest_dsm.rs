//! Property-based DSM coherence: for arbitrary access schedules by
//! several contexts, (a) nothing deadlocks or panics, (b) a reader that
//! runs after global quiescence sees the last write to every touched
//! byte, and (c) single-writer pages never lose data.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use dsm::{spawn_dsm_manager, DsmClient, PageId};
use proptest::prelude::*;
use simnet::{NetworkConfig, NodeId, Simulation};

const PAGE: usize = 32;
const PAGES: u32 = 3;

#[derive(Debug, Clone, Copy)]
enum Access {
    Read { page: u8, offset: u8 },
    Write { page: u8, offset: u8, value: u8 },
    Pause { ms: u8 },
}

fn arb_schedule() -> impl Strategy<Value = Vec<Access>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u8>(), any::<u8>()).prop_map(|(p, o)| Access::Read {
                page: p % PAGES as u8,
                offset: o % PAGE as u8,
            }),
            (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(p, o, v)| Access::Write {
                page: p % PAGES as u8,
                offset: o % PAGE as u8,
                value: v,
            }),
            (1u8..8).prop_map(|ms| Access::Pause { ms }),
        ],
        1..25,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Two contexts run arbitrary schedules; afterwards a third context
    /// reads every page twice and must see identical, settled bytes
    /// (all coherence traffic has quiesced, so the two reads cannot
    /// differ).
    #[test]
    fn arbitrary_schedules_quiesce_coherently(
        a in arb_schedule(),
        b in arb_schedule(),
        seed in 0u64..5000,
    ) {
        let mut sim = Simulation::new(NetworkConfig::lan(), seed);
        let manager = spawn_dsm_manager(&sim, NodeId(0), PAGE);
        for (name, node, schedule) in [("a", 1u32, a), ("b", 2, b)] {
            sim.spawn(name, NodeId(node), move |ctx| {
                let mut mem = DsmClient::attach(ctx, manager);
                for access in &schedule {
                    match *access {
                        Access::Read { page, offset } => {
                            let _ = mem.read(ctx, PageId(page as u32), offset as usize, 1)
                                .unwrap();
                        }
                        Access::Write { page, offset, value } => {
                            mem.write(ctx, PageId(page as u32), offset as usize, &[value])
                                .unwrap();
                        }
                        Access::Pause { ms } => {
                            if ctx.sleep(Duration::from_millis(ms as u64)).is_err() {
                                return;
                            }
                        }
                    }
                }
            });
        }
        let snapshots: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
        let s2 = Arc::clone(&snapshots);
        sim.spawn("auditor", NodeId(3), move |ctx| {
            // Run well after both schedules can possibly finish.
            if ctx.sleep(Duration::from_millis(600)).is_err() {
                return;
            }
            let mut mem = DsmClient::attach(ctx, manager);
            for round in 0..2 {
                let mut snap = Vec::new();
                for p in 0..PAGES {
                    snap.extend(mem.read(ctx, PageId(p), 0, PAGE).unwrap());
                }
                s2.lock().unwrap().push(snap);
                let _ = round;
            }
        });
        sim.run();
        let snaps = snapshots.lock().unwrap();
        prop_assert_eq!(snaps.len(), 2);
        prop_assert_eq!(&snaps[0], &snaps[1], "post-quiescence reads disagreed");
    }

    /// A single writer's bytes are never lost, whatever the interleaving
    /// of a concurrent reader.
    #[test]
    fn single_writer_data_survives_reader_interference(
        writes in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..20),
        seed in 0u64..5000,
    ) {
        let mut sim = Simulation::new(NetworkConfig::lan(), seed);
        let manager = spawn_dsm_manager(&sim, NodeId(0), PAGE);
        let expected: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(vec![0; PAGE]));
        let e2 = Arc::clone(&expected);
        let w2 = writes.clone();
        sim.spawn("writer", NodeId(1), move |ctx| {
            let mut mem = DsmClient::attach(ctx, manager);
            for (off, val) in &w2 {
                let off = *off as usize % PAGE;
                mem.write(ctx, PageId(0), off, &[*val]).unwrap();
                e2.lock().unwrap()[off] = *val;
                if ctx.sleep(Duration::from_millis(1)).is_err() {
                    return;
                }
            }
        });
        sim.spawn("reader", NodeId(2), move |ctx| {
            let mut mem = DsmClient::attach(ctx, manager);
            for _ in 0..10 {
                let _ = mem.read(ctx, PageId(0), 0, PAGE).unwrap();
                if ctx.sleep(Duration::from_millis(2)).is_err() {
                    return;
                }
            }
        });
        let observed: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        let o2 = Arc::clone(&observed);
        sim.spawn("auditor", NodeId(3), move |ctx| {
            if ctx.sleep(Duration::from_millis(300)).is_err() {
                return;
            }
            let mut mem = DsmClient::attach(ctx, manager);
            *o2.lock().unwrap() = mem.read(ctx, PageId(0), 0, PAGE).unwrap();
        });
        sim.run();
        prop_assert_eq!(
            &*observed.lock().unwrap(),
            &*expected.lock().unwrap(),
            "reader interference corrupted or lost writes"
        );
    }
}
