//! # dsm — page-based distributed shared memory
//!
//! The third access method in the classic comparison the proxy paper sits
//! inside (RPC stubs / proxies / distributed virtual memory): instead of
//! invoking operations on a remote object, a context *maps* shared pages
//! into its local memory and reads/writes them directly; a fault fetches
//! the page, and a single-writer/multiple-reader **ownership protocol**
//! keeps copies coherent.
//!
//! ## Architecture
//!
//! ```text
//!  app context (node A)          manager (directory)       app context (node B)
//! ┌─────────────────────┐      ┌────────────────────┐     ┌─────────────────────┐
//! │ DsmClient           │ fetch│ per-page state:    │     │ DsmClient           │
//! │   read/write  ──────┼─────▶│  Shared{copyset}   │◀────┼──────               │
//! │   (local after map) │      │  Exclusive{owner}  │     │                     │
//! │ PageCache (shared)  │      └──────────┬─────────┘     │ PageCache (shared)  │
//! │   ▲                 │   downgrade /   │               │   ▲                 │
//! │ Pager (sibling proc)│◀── invalidate / ┴──────────────▶│ Pager               │
//! └─────────────────────┘     surrender  (synchronous RPC)└─────────────────────┘
//! ```
//!
//! Each [`DsmClient`] spawns a sibling **pager** process in its context
//! that shares the page cache and serves the manager's coherence traffic
//! (`downgrade`, `invalidate`, `surrender`) synchronously — the analogue
//! of an MMU trap handler. This gives real single-writer/multi-reader
//! coherence: at any instant a page has either one writable mapping or
//! any number of read-only mappings.
//!
//! ## The trade the paper's contemporaries argued about
//!
//! * **Locality wins.** Once mapped, reads and writes are local memory
//!   operations — zero messages (experiment E12's first half).
//! * **Fine-grained sharing loses.** Two contexts alternately writing
//!   the same page ping-pong it: every access costs a 3-hop transfer,
//!   worse than one RPC per operation (E12's second half).
//!
//! ## Example
//!
//! ```
//! use simnet::{Simulation, NetworkConfig, NodeId};
//! use dsm::{spawn_dsm_manager, DsmClient, PageId};
//!
//! let mut sim = Simulation::new(NetworkConfig::lan(), 1);
//! let manager = spawn_dsm_manager(&sim, NodeId(0), 64);
//! sim.spawn("writer", NodeId(1), move |ctx| {
//!     let mut mem = DsmClient::attach(ctx, manager);
//!     mem.write(ctx, PageId(0), 0, b"hello").unwrap();
//!     // Mapped exclusively now: further writes are local.
//!     mem.write(ctx, PageId(0), 5, b" dsm").unwrap();
//!     let bytes = mem.read(ctx, PageId(0), 0, 9).unwrap();
//!     assert_eq!(&bytes[..], b"hello dsm");
//! });
//! sim.run();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod client;
mod manager;
mod pager;

pub use client::{DsmClient, DsmError, DsmStats};
pub use manager::{spawn_dsm_manager, ManagerStats};

use std::fmt;

/// Identifier of a shared page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u32);

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page{}", self.0)
    }
}

/// How a context currently holds a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Read-only mapping; other read copies may exist.
    Read,
    /// Exclusive writable mapping; no other copies exist.
    Write,
}

pub(crate) mod proto {
    //! Operation names of the DSM coherence protocol.
    /// App → manager: map a page read-only.
    pub const OP_FETCH_RO: &str = "fetch_ro";
    /// App → manager: map a page exclusively.
    pub const OP_FETCH_RW: &str = "fetch_rw";
    /// Manager → pager: demote an exclusive mapping to read-only,
    /// returning the current bytes.
    pub const OP_DOWNGRADE: &str = "downgrade";
    /// Manager → pager: drop a read-only mapping.
    pub const OP_INVALIDATE: &str = "invalidate";
    /// Manager → pager: give up an exclusive mapping entirely,
    /// returning the current bytes.
    pub const OP_SURRENDER: &str = "surrender";
}
