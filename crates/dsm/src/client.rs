//! The app-side DSM handle: map-on-fault reads and writes.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rpc::{endpoint_to_value, RpcClient, RpcError};
use simnet::{Ctx, Endpoint};
use wire::Value;

use crate::pager::{pager_body, CachedPage, PageCache};
use crate::{proto, Mode, PageId};

/// Error from a DSM access.
#[derive(Debug, Clone, PartialEq)]
pub enum DsmError {
    /// The coherence protocol failed (manager unreachable, transfer
    /// refused).
    Rpc(RpcError),
    /// Offset/length fall outside the page.
    OutOfBounds {
        /// The page size.
        page_size: usize,
        /// The requested end offset.
        end: usize,
    },
}

impl std::fmt::Display for DsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DsmError::Rpc(e) => write!(f, "dsm protocol error: {e}"),
            DsmError::OutOfBounds { page_size, end } => {
                write!(f, "access to byte {end} exceeds page size {page_size}")
            }
        }
    }
}

impl std::error::Error for DsmError {}

impl From<RpcError> for DsmError {
    fn from(e: RpcError) -> DsmError {
        DsmError::Rpc(e)
    }
}

/// Access counters for one DSM client.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DsmStats {
    /// Reads satisfied by an existing mapping (no messages).
    pub read_hits: u64,
    /// Reads that faulted and fetched a mapping.
    pub read_faults: u64,
    /// Writes satisfied by an existing exclusive mapping (no messages).
    pub write_hits: u64,
    /// Writes that faulted and acquired exclusivity.
    pub write_faults: u64,
}

/// A context's handle onto the shared address space.
///
/// Created with [`DsmClient::attach`], which also spawns the context's
/// pager. Reads and writes hit the local page table when the page is
/// mapped appropriately and fault to the manager otherwise — after
/// which they are pure local memory operations until another context
/// forces a demotion.
#[derive(Debug)]
pub struct DsmClient {
    manager: RpcClient,
    pager: Endpoint,
    cache: PageCache,
    page_size: usize,
    /// Access counters.
    pub stats: DsmStats,
}

impl DsmClient {
    /// Attaches this context to the shared memory managed at `manager`,
    /// spawning the pager sibling process. The page size is negotiated
    /// from the first fetched page.
    pub fn attach(ctx: &mut Ctx, manager: Endpoint) -> DsmClient {
        let cache: PageCache = Arc::new(Mutex::new(HashMap::new()));
        let pager_cache = Arc::clone(&cache);
        let pager = ctx.spawn("pager", ctx.node(), move |pctx| {
            pager_body(pctx, pager_cache)
        });
        DsmClient {
            manager: RpcClient::new(manager),
            pager,
            cache,
            page_size: 0, // learned on first fault
            stats: DsmStats::default(),
        }
    }

    /// The pager endpoint (the identity the manager knows us by).
    pub fn pager(&self) -> Endpoint {
        self.pager
    }

    fn fault(&mut self, ctx: &mut Ctx, page: PageId, exclusive: bool) -> Result<(), DsmError> {
        let op = if exclusive {
            proto::OP_FETCH_RW
        } else {
            proto::OP_FETCH_RO
        };
        let reply = self.manager.call(
            ctx,
            op,
            Value::record([
                ("page", Value::U64(page.0.into())),
                ("pager", endpoint_to_value(self.pager)),
            ]),
        )?;
        let mut table = self.cache.lock();
        match reply.as_blob() {
            Some(bytes) => {
                self.page_size = self.page_size.max(bytes.len());
                table.insert(
                    page,
                    CachedPage {
                        data: bytes.to_vec(),
                        mode: if exclusive { Mode::Write } else { Mode::Read },
                    },
                );
            }
            None => {
                // Null reply to fetch_rw: we already owned it (duplicate
                // grant); upgrade the local mode if needed.
                if let Some(entry) = table.get_mut(&page) {
                    entry.mode = Mode::Write;
                }
            }
        }
        Ok(())
    }

    /// Reads `len` bytes at `offset` within `page`, mapping it on demand.
    ///
    /// # Errors
    ///
    /// [`DsmError::OutOfBounds`] for accesses past the page, or any
    /// protocol error.
    pub fn read(
        &mut self,
        ctx: &mut Ctx,
        page: PageId,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, DsmError> {
        {
            let table = self.cache.lock();
            if let Some(entry) = table.get(&page) {
                self.stats.read_hits += 1;
                return slice_page(&entry.data, offset, len);
            }
        }
        self.stats.read_faults += 1;
        self.fault(ctx, page, false)?;
        let table = self.cache.lock();
        let entry = table.get(&page).expect("page mapped by fault");
        slice_page(&entry.data, offset, len)
    }

    /// Writes `data` at `offset` within `page`, acquiring exclusivity on
    /// demand. Once exclusive, writes cost nothing until another context
    /// touches the page.
    ///
    /// # Errors
    ///
    /// [`DsmError::OutOfBounds`] for accesses past the page, or any
    /// protocol error.
    pub fn write(
        &mut self,
        ctx: &mut Ctx,
        page: PageId,
        offset: usize,
        data: &[u8],
    ) -> Result<(), DsmError> {
        {
            let mut table = self.cache.lock();
            if let Some(entry) = table.get_mut(&page) {
                if entry.mode == Mode::Write {
                    self.stats.write_hits += 1;
                    return write_page(&mut entry.data, offset, data);
                }
            }
        }
        self.stats.write_faults += 1;
        self.fault(ctx, page, true)?;
        let mut table = self.cache.lock();
        let entry = table.get_mut(&page).expect("page mapped by fault");
        write_page(&mut entry.data, offset, data)
    }

    /// Whether `page` is currently mapped, and how.
    pub fn mapping(&self, page: PageId) -> Option<Mode> {
        self.cache.lock().get(&page).map(|e| e.mode)
    }
}

fn slice_page(data: &[u8], offset: usize, len: usize) -> Result<Vec<u8>, DsmError> {
    let end = offset.saturating_add(len);
    if end > data.len() {
        return Err(DsmError::OutOfBounds {
            page_size: data.len(),
            end,
        });
    }
    Ok(data[offset..end].to_vec())
}

fn write_page(data: &mut [u8], offset: usize, bytes: &[u8]) -> Result<(), DsmError> {
    let end = offset.saturating_add(bytes.len());
    if end > data.len() {
        return Err(DsmError::OutOfBounds {
            page_size: data.len(),
            end,
        });
    }
    data[offset..end].copy_from_slice(bytes);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_checks() {
        let mut page = vec![0u8; 8];
        assert!(write_page(&mut page, 6, b"abc").is_err());
        assert!(write_page(&mut page, 5, b"abc").is_ok());
        assert_eq!(slice_page(&page, 5, 3).unwrap(), b"abc");
        assert!(slice_page(&page, 7, 2).is_err());
        // Overflow-safe.
        assert!(slice_page(&page, usize::MAX, 2).is_err());
    }
}
