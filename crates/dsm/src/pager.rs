//! The pager: a context's coherence servant.
//!
//! A sibling process sharing the app's page cache; it serves the
//! manager's downgrade/invalidate/surrender requests synchronously, the
//! way an MMU trap handler would shoot down a mapping.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rpc::{ErrorCode, RemoteError, RpcServer};
use simnet::Ctx;
use wire::Value;

use crate::{proto, Mode, PageId};

/// One locally mapped page.
#[derive(Debug, Clone)]
pub(crate) struct CachedPage {
    pub data: Vec<u8>,
    pub mode: Mode,
}

/// The page table shared between an app context and its pager.
pub(crate) type PageCache = Arc<Mutex<HashMap<PageId, CachedPage>>>;

fn page_arg(args: &Value) -> Result<PageId, RemoteError> {
    let n = args
        .get_u64("page")
        .map_err(|e| RemoteError::new(ErrorCode::BadArgs, e.to_string()))?;
    Ok(PageId(u32::try_from(n).map_err(|_| {
        RemoteError::new(ErrorCode::BadArgs, "page id out of range")
    })?))
}

/// The pager process body: serves coherence traffic forever.
pub(crate) fn pager_body(ctx: &mut Ctx, cache: PageCache) {
    let mut rpc = RpcServer::new();
    while let Ok(msg) = ctx.recv() {
        rpc.handle(ctx, &msg, |_ctx, req| {
            let page = page_arg(&req.args)?;
            let mut table = cache.lock();
            match req.op.as_str() {
                proto::OP_DOWNGRADE => match table.get_mut(&page) {
                    Some(entry) => {
                        entry.mode = Mode::Read;
                        Ok(Value::blob(entry.data.clone()))
                    }
                    None => Err(RemoteError::new(
                        ErrorCode::NoSuchObject,
                        format!("{page} not mapped here"),
                    )),
                },
                proto::OP_INVALIDATE => {
                    // Idempotent: invalidating an unmapped page is fine
                    // (we may have dropped it voluntarily).
                    table.remove(&page);
                    Ok(Value::Null)
                }
                proto::OP_SURRENDER => match table.remove(&page) {
                    Some(entry) => Ok(Value::blob(entry.data)),
                    None => Err(RemoteError::new(
                        ErrorCode::NoSuchObject,
                        format!("{page} not mapped here"),
                    )),
                },
                other => Err(RemoteError::new(ErrorCode::NoSuchOp, other.to_owned())),
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpc::RpcClient;
    use simnet::{NetworkConfig, NodeId, Simulation};

    #[test]
    fn pager_serves_coherence_ops() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        let cache: PageCache = Arc::new(Mutex::new(HashMap::new()));
        cache.lock().insert(
            PageId(3),
            CachedPage {
                data: vec![1, 2, 3],
                mode: Mode::Write,
            },
        );
        let c2 = Arc::clone(&cache);
        let pager = sim.spawn("pager", NodeId(0), move |ctx| pager_body(ctx, c2));
        let c3 = Arc::clone(&cache);
        sim.spawn("manager", NodeId(1), move |ctx| {
            let mut rpc = RpcClient::new(pager);
            // Downgrade returns the bytes and leaves a Read mapping.
            let v = rpc
                .call(
                    ctx,
                    proto::OP_DOWNGRADE,
                    Value::record([("page", Value::U64(3))]),
                )
                .unwrap();
            assert_eq!(v.as_blob().unwrap().as_ref(), &[1, 2, 3]);
            assert_eq!(c3.lock().get(&PageId(3)).unwrap().mode, Mode::Read);
            // Surrender removes it and returns the bytes.
            let v = rpc
                .call(
                    ctx,
                    proto::OP_SURRENDER,
                    Value::record([("page", Value::U64(3))]),
                )
                .unwrap();
            assert_eq!(v.as_blob().unwrap().as_ref(), &[1, 2, 3]);
            assert!(c3.lock().is_empty());
            // Invalidate is idempotent on unmapped pages.
            rpc.call(
                ctx,
                proto::OP_INVALIDATE,
                Value::record([("page", Value::U64(3))]),
            )
            .unwrap();
            // Surrendering an unmapped page is an error.
            let err = rpc
                .call(
                    ctx,
                    proto::OP_SURRENDER,
                    Value::record([("page", Value::U64(3))]),
                )
                .unwrap_err();
            assert!(
                matches!(err, rpc::RpcError::Remote(ref e) if e.code == ErrorCode::NoSuchObject)
            );
        });
        sim.run();
    }
}
