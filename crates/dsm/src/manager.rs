//! The DSM manager: the page directory.
//!
//! Tracks, for every page, whether it is unmapped, shared by a copyset
//! of reader contexts, or exclusively owned by one writer context — and
//! orchestrates the transitions by calling the affected pagers
//! *synchronously* before granting a new mapping. That ordering is what
//! makes the protocol single-writer/multiple-reader at every instant.

use std::collections::{HashMap, VecDeque};

use bytes::Bytes;
use rpc::{
    endpoint_from_value, ErrorCode, RemoteError, Request, RpcClient, RpcError, RpcServer, Served,
    Stray, StrayVerdict,
};
use simnet::{Ctx, Endpoint, Message, NodeId, Simulation};
use wire::Value;

use crate::{proto, PageId};

/// Counters accumulated by the manager.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Read-mapping grants.
    pub ro_grants: u64,
    /// Exclusive-mapping grants.
    pub rw_grants: u64,
    /// Downgrades performed (exclusive → shared).
    pub downgrades: u64,
    /// Read copies invalidated.
    pub invalidations: u64,
    /// Exclusive mappings surrendered (ownership transfers).
    pub surrenders: u64,
}

#[derive(Debug, Clone)]
enum PageState {
    /// Home copy is authoritative; `copyset` holds reader pagers.
    Shared { data: Bytes, copyset: Vec<Endpoint> },
    /// One context may write; its pager holds the only valid bytes.
    Exclusive { owner: Endpoint },
}

struct Manager {
    page_size: usize,
    pages: HashMap<PageId, PageState>,
    requeued: VecDeque<Message>,
    stats: ManagerStats,
}

fn page_arg(args: &Value) -> Result<PageId, RemoteError> {
    let n = args
        .get_u64("page")
        .map_err(|e| RemoteError::new(ErrorCode::BadArgs, e.to_string()))?;
    Ok(PageId(u32::try_from(n).map_err(|_| {
        RemoteError::new(ErrorCode::BadArgs, "page id out of range")
    })?))
}

fn pager_arg(args: &Value) -> Result<Endpoint, RemoteError> {
    endpoint_from_value(
        args.get("pager")
            .ok_or_else(|| RemoteError::new(ErrorCode::BadArgs, "missing pager"))?,
    )
    .map_err(|e| RemoteError::new(ErrorCode::BadArgs, e.to_string()))
}

impl Manager {
    /// Calls a pager, requeueing any app requests that arrive meanwhile.
    ///
    /// A grant reply and a subsequent coherence request race on the
    /// network: the manager may demand a surrender/downgrade before the
    /// target app has even received the grant that creates the mapping.
    /// The pager answers `NoSuchObject` in that window, so coherence
    /// calls retry briefly until the mapping lands — the standard
    /// in-flight-grant resolution in directory-based DSM protocols.
    fn call_pager(
        &mut self,
        ctx: &mut Ctx,
        pager: Endpoint,
        op: &str,
        page: PageId,
    ) -> Result<Value, RpcError> {
        let mut rpc = RpcClient::new(pager);
        for _attempt in 0..32 {
            let requeued = &mut self.requeued;
            let result = rpc.call_with_strays(
                ctx,
                "",
                op,
                Value::record([("page", Value::U64(page.0.into()))]),
                |_ctx, stray| match stray {
                    Stray::Request(_, m) => {
                        requeued.push_back((*m).clone());
                        StrayVerdict::Consumed
                    }
                    Stray::Oneway(..) => StrayVerdict::Drop,
                },
            );
            match result {
                Err(RpcError::Remote(ref e))
                    if e.code == ErrorCode::NoSuchObject && op != proto::OP_INVALIDATE =>
                {
                    // Grant still in flight to that context; let it land.
                    if ctx.sleep(std::time::Duration::from_millis(1)).is_err() {
                        return result;
                    }
                }
                other => return other,
            }
        }
        Err(RpcError::Remote(RemoteError::new(
            ErrorCode::Unavailable,
            format!("{op} for {page} never became possible"),
        )))
    }

    fn fetch_ro(
        &mut self,
        ctx: &mut Ctx,
        page: PageId,
        pager: Endpoint,
    ) -> Result<Value, RemoteError> {
        let state = self.pages.remove(&page).unwrap_or(PageState::Shared {
            data: Bytes::from(vec![0u8; self.page_size]),
            copyset: Vec::new(),
        });
        let (data, mut copyset) = match state {
            PageState::Shared { data, copyset } => (data, copyset),
            PageState::Exclusive { owner } => {
                // Demote the writer so both can read.
                let bytes = self
                    .call_pager(ctx, owner, proto::OP_DOWNGRADE, page)
                    .map_err(|e| {
                        RemoteError::new(ErrorCode::Unavailable, format!("downgrade failed: {e}"))
                    })?;
                self.stats.downgrades += 1;
                let data = bytes
                    .as_blob()
                    .cloned()
                    .unwrap_or_else(|| Bytes::from(vec![0u8; self.page_size]));
                (data, vec![owner])
            }
        };
        if !copyset.contains(&pager) {
            copyset.push(pager);
        }
        self.stats.ro_grants += 1;
        let reply = Value::blob(data.clone());
        self.pages.insert(page, PageState::Shared { data, copyset });
        Ok(reply)
    }

    fn fetch_rw(
        &mut self,
        ctx: &mut Ctx,
        page: PageId,
        pager: Endpoint,
    ) -> Result<Value, RemoteError> {
        let state = self.pages.remove(&page).unwrap_or(PageState::Shared {
            data: Bytes::from(vec![0u8; self.page_size]),
            copyset: Vec::new(),
        });
        let data = match state {
            PageState::Exclusive { owner } if owner == pager => {
                // Already ours (a lost reply being retried at a higher
                // layer); nothing to transfer.
                self.pages.insert(page, PageState::Exclusive { owner });
                self.stats.rw_grants += 1;
                return Ok(Value::Null);
            }
            PageState::Exclusive { owner } => {
                let bytes = self
                    .call_pager(ctx, owner, proto::OP_SURRENDER, page)
                    .map_err(|e| {
                        RemoteError::new(ErrorCode::Unavailable, format!("surrender failed: {e}"))
                    })?;
                self.stats.surrenders += 1;
                bytes
                    .as_blob()
                    .cloned()
                    .unwrap_or_else(|| Bytes::from(vec![0u8; self.page_size]))
            }
            PageState::Shared { data, copyset } => {
                // Shoot down every reader except the requester.
                for reader in copyset {
                    if reader == pager {
                        continue;
                    }
                    self.call_pager(ctx, reader, proto::OP_INVALIDATE, page)
                        .map_err(|e| {
                            RemoteError::new(
                                ErrorCode::Unavailable,
                                format!("invalidate failed: {e}"),
                            )
                        })?;
                    self.stats.invalidations += 1;
                }
                data
            }
        };
        self.stats.rw_grants += 1;
        self.pages
            .insert(page, PageState::Exclusive { owner: pager });
        Ok(Value::blob(data))
    }

    fn execute(&mut self, ctx: &mut Ctx, req: &Request) -> Result<Value, RemoteError> {
        match req.op.as_str() {
            proto::OP_FETCH_RO => {
                let page = page_arg(&req.args)?;
                let pager = pager_arg(&req.args)?;
                self.fetch_ro(ctx, page, pager)
            }
            proto::OP_FETCH_RW => {
                let page = page_arg(&req.args)?;
                let pager = pager_arg(&req.args)?;
                self.fetch_rw(ctx, page, pager)
            }
            "_stats" => Ok(Value::record([
                ("ro", Value::U64(self.stats.ro_grants)),
                ("rw", Value::U64(self.stats.rw_grants)),
                ("downgrades", Value::U64(self.stats.downgrades)),
                ("invalidations", Value::U64(self.stats.invalidations)),
                ("surrenders", Value::U64(self.stats.surrenders)),
            ])),
            other => Err(RemoteError::new(ErrorCode::NoSuchOp, other.to_owned())),
        }
    }
}

/// Spawns the DSM manager on `node` with the given page size; returns
/// its endpoint (pass to [`crate::DsmClient::attach`]).
pub fn spawn_dsm_manager(sim: &Simulation, node: NodeId, page_size: usize) -> Endpoint {
    assert!(page_size > 0, "page size must be positive");
    sim.spawn("dsm-manager", node, move |ctx| {
        let mut mgr = Manager {
            page_size,
            pages: HashMap::new(),
            requeued: VecDeque::new(),
            stats: ManagerStats::default(),
        };
        let mut rpc = RpcServer::new();
        loop {
            let msg = match mgr.requeued.pop_front() {
                Some(m) => m,
                None => match ctx.recv() {
                    Ok(m) => m,
                    Err(_) => return,
                },
            };
            let mgr_ref = &mut mgr;
            let served = rpc.handle(ctx, &msg, |ctx, req| mgr_ref.execute(ctx, req));
            let _ = matches!(served, Served::Executed(_));
        }
    })
}
