//! The pipelined RPC channel: many outstanding calls, one endpoint.
//!
//! [`RpcClient`](crate::RpcClient) is strictly synchronous — one call,
//! one reply, one RTT. A [`Channel`] keeps up to
//! [`ChannelConfig::pipeline_depth`] calls in flight against one server
//! endpoint: [`Channel::begin_call`] stages a call and returns a
//! [`CallHandle`]; [`Channel::wait`] / [`Channel::wait_all`] drive the
//! channel until replies arrive (blocking style), and
//! [`Channel::poll_wait`] / [`Channel::try_take`] do the same for
//! poll-driven processes, completing on the reply's own delivery wake
//! instead of a parked thread. Replies are matched by call id, each
//! call keeps its own retransmission timer, and ids retransmit unchanged
//! — so the server's per-client window gives the same at-most-once
//! guarantee the synchronous client enjoys, even though calls now
//! complete out of order.
//!
//! On top of pipelining the channel *batches*: staged requests bound for
//! the same endpoint coalesce into one [`Batch`] datagram (up to
//! [`ChannelConfig::max_batch`] per frame), and the server coalesces the
//! replies on the way back — many calls, one network traversal each
//! way. Retransmissions are always sent individually: by the time a
//! timer fires, batch-mates have usually been acknowledged.
//!
//! Every call gets its own `Invoke` span (parented to the caller's
//! active span), so causal traces show per-call latency even when the
//! datagrams were shared.

use std::collections::{HashMap, VecDeque};

use bytes::Bytes;
use simnet::{Ctx, Endpoint, Message, SimTime};
use wire::Value;

use crate::client::RetryPolicy;
use crate::error::{RemoteError, RpcError};
use crate::proto::{Oneway, Packet, Reply, Request};

/// Tuning knobs for a [`Channel`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelConfig {
    /// Maximum calls in flight at once (1 = synchronous behaviour).
    pub pipeline_depth: usize,
    /// Maximum staged requests coalesced into one datagram (1 = no
    /// batching).
    pub max_batch: usize,
    /// Per-call retransmission policy.
    pub policy: RetryPolicy,
}

impl Default for ChannelConfig {
    /// Depth 8, no batching, the default [`RetryPolicy`].
    fn default() -> ChannelConfig {
        ChannelConfig {
            pipeline_depth: 8,
            max_batch: 1,
            policy: RetryPolicy::default(),
        }
    }
}

impl ChannelConfig {
    /// A config with the given depth, no batching, default retries.
    pub fn with_depth(pipeline_depth: usize) -> ChannelConfig {
        ChannelConfig {
            pipeline_depth,
            ..ChannelConfig::default()
        }
    }

    /// Sets the batch size.
    pub fn batched(mut self, max_batch: usize) -> ChannelConfig {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Sets the retry policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> ChannelConfig {
        self.policy = policy;
        self
    }
}

/// A ticket for one in-flight call; redeem with [`Channel::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CallHandle(u64);

impl CallHandle {
    /// The underlying call id (diagnostics only).
    pub fn call_id(&self) -> u64 {
        self.0
    }
}

/// Counters accumulated by a channel (readable by harnesses).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Calls begun.
    pub calls: u64,
    /// Calls that completed with a reply (ok or remote error).
    pub completed: u64,
    /// Calls that exhausted their retry budget.
    pub timeouts: u64,
    /// Retransmissions sent.
    pub retries: u64,
    /// Batch datagrams sent (excluding single-request sends).
    pub batches_sent: u64,
    /// Requests that travelled inside a batch datagram.
    pub batched_calls: u64,
    /// Replies that matched no outstanding call.
    pub stale_replies: u64,
    /// Non-reply datagrams discarded while pumping.
    pub discarded: u64,
}

#[derive(Debug)]
enum CallState {
    /// Staged, not yet sent (pipeline window was full).
    Queued,
    /// Sent; waiting for its reply or its retransmission timer.
    Outstanding,
    /// Reply arrived.
    Done(Result<Value, RemoteError>),
    /// Retry budget exhausted.
    TimedOut,
}

#[derive(Debug)]
struct CallRec {
    request: Request,
    /// Encoded once; retransmissions reuse the bytes (and thus the span).
    bytes: Bytes,
    span: obs::SpanId,
    attempt: u32,
    deadline: SimTime,
    state: CallState,
}

/// A pipelined, batching RPC channel bound to one server endpoint.
///
/// Not a [`Proxy`](../index.html): the channel is the *transport object*
/// proxies build on — the ODP "channel object" whose protocol (depth,
/// batching, retries) the service side may choose freely behind an
/// unchanged call interface.
#[derive(Debug)]
pub struct Channel {
    service: String,
    server: Endpoint,
    cfg: ChannelConfig,
    calls: HashMap<u64, CallRec>,
    /// Queued call ids in begin order.
    queue: VecDeque<u64>,
    outstanding: usize,
    strays: Vec<Oneway>,
    /// Counters (readable by experiment harnesses).
    pub stats: ChannelStats,
}

impl Channel {
    /// Creates a channel for `service` at `server`.
    pub fn new(service: impl Into<String>, server: Endpoint, cfg: ChannelConfig) -> Channel {
        Channel {
            service: service.into(),
            server,
            cfg: ChannelConfig {
                pipeline_depth: cfg.pipeline_depth.max(1),
                max_batch: cfg.max_batch.max(1),
                policy: cfg.policy,
            },
            calls: HashMap::new(),
            queue: VecDeque::new(),
            outstanding: 0,
            strays: Vec::new(),
            stats: ChannelStats::default(),
        }
    }

    /// The server endpoint this channel is bound to.
    pub fn server(&self) -> Endpoint {
        self.server
    }

    /// Calls currently in flight.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Calls staged but not yet sent.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Whether this handle has settled (reply arrived or timed out).
    pub fn is_settled(&self, h: CallHandle) -> bool {
        match self.calls.get(&h.0) {
            Some(rec) => matches!(rec.state, CallState::Done(_) | CallState::TimedOut),
            None => true,
        }
    }

    /// Stages a call on the server's default object and returns its
    /// handle. Nothing is sent until [`Channel::flush`] (which `wait`,
    /// `wait_all` and `poll` call for you).
    pub fn begin_call(&mut self, ctx: &mut Ctx, op: &str, args: Value) -> CallHandle {
        self.begin_call_object(ctx, "", op, args)
    }

    /// Stages a call on a named object in the server context.
    pub fn begin_call_object(
        &mut self,
        ctx: &mut Ctx,
        object: &str,
        op: &str,
        args: Value,
    ) -> CallHandle {
        // Ids come from the per-process counter, shared with any
        // RpcClient in the process, so the server's per-endpoint window
        // sees one id space.
        let call_id = ctx.next_seq();
        self.stats.calls += 1;
        ctx.obs().on_call();
        // Each call gets its own invoke span parented to the caller's
        // active span; the request is encoded once so retransmissions
        // carry the same span by construction.
        let span = ctx.obs().open_span(
            obs::SpanKind::Invoke,
            ctx.current_span(),
            &self.service,
            op,
            ctx.now().as_nanos(),
        );
        let request = Request {
            call_id,
            reply_to: ctx.endpoint(),
            object: object.to_owned(),
            op: op.to_owned(),
            args,
            span: span.raw(),
        };
        let bytes = request.to_bytes();
        self.calls.insert(
            call_id,
            CallRec {
                request,
                bytes,
                span,
                attempt: 0,
                deadline: SimTime::ZERO,
                state: CallState::Queued,
            },
        );
        self.queue.push_back(call_id);
        CallHandle(call_id)
    }

    /// Promotes queued calls into the pipeline window and sends them,
    /// coalescing up to `max_batch` requests per datagram.
    pub fn flush(&mut self, ctx: &mut Ctx) {
        while self.outstanding < self.cfg.pipeline_depth && !self.queue.is_empty() {
            let room = self.cfg.pipeline_depth - self.outstanding;
            let n = self.cfg.max_batch.min(room).min(self.queue.len());
            let ids: Vec<u64> = self.queue.drain(..n).collect();
            let deadline = ctx.now() + self.cfg.policy.attempt_timeout(0);
            for &id in &ids {
                let rec = self.calls.get_mut(&id).expect("queued call exists");
                rec.state = CallState::Outstanding;
                rec.attempt = 0;
                rec.deadline = deadline;
            }
            self.outstanding += ids.len();
            if ids.len() == 1 {
                let rec = &self.calls[&ids[0]];
                ctx.send_traced(self.server, rec.bytes.clone(), rec.span);
            } else {
                // Borrow-based batch encode: the staged requests are
                // written straight into the frame, never cloned.
                let payload = crate::proto::encode_request_batch(
                    ids.iter().map(|id| &self.calls[id].request),
                );
                self.stats.batches_sent += 1;
                self.stats.batched_calls += ids.len() as u64;
                // The datagram serves many spans at once, so it is
                // attributed to none; each call's own span still opens
                // and closes around its reply.
                ctx.trace(simnet::TraceEvent::Batched {
                    src: ctx.endpoint(),
                    dst: self.server,
                    count: ids.len(),
                    span: obs::SpanId::NONE,
                });
                ctx.send_traced(self.server, payload, obs::SpanId::NONE);
            }
        }
        self.note_depth(ctx);
    }

    /// Samples the channel's pipeline window and backlog into the flight
    /// recorder, keyed by service. Called at every transition point
    /// (flush, expiry, reply) so the gauges bracket each change; costs
    /// one relaxed load when the recorder is off.
    fn note_depth(&self, ctx: &mut Ctx) {
        let obs = ctx.obs();
        if !obs.timeseries_enabled() {
            return;
        }
        let now_ns = ctx.now().as_nanos();
        obs.ts_gauge(
            now_ns,
            &format!("inflight@{}", self.service),
            self.outstanding as u64,
        );
        obs.ts_gauge(
            now_ns,
            &format!("queued@{}", self.service),
            self.queue.len() as u64,
        );
    }

    /// Fires retransmission timers: calls past their deadline either
    /// retransmit (individually — batch-mates are usually already
    /// acknowledged) or, once the retry budget is gone, settle as timed
    /// out.
    fn expire(&mut self, ctx: &mut Ctx) {
        let now = ctx.now();
        let mut expired: Vec<u64> = self
            .calls
            .iter()
            .filter(|(_, r)| matches!(r.state, CallState::Outstanding) && r.deadline <= now)
            .map(|(&id, _)| id)
            .collect();
        // HashMap iteration order varies run to run; retransmitting in
        // map order would let two calls with equal deadlines swap their
        // send order between seeds-identical runs. Sorted ids keep the
        // retransmission stream a pure function of simulation state.
        expired.sort_unstable();
        for id in expired {
            let rec = self.calls.get_mut(&id).expect("expired call exists");
            rec.attempt += 1;
            if rec.attempt >= self.cfg.policy.max_attempts {
                rec.state = CallState::TimedOut;
                self.outstanding -= 1;
                self.stats.timeouts += 1;
                ctx.obs().on_timeout();
                ctx.obs().close_span(rec.span, ctx.now().as_nanos(), false);
                continue;
            }
            self.stats.retries += 1;
            ctx.obs().on_retry();
            ctx.obs().span_retransmit_at(rec.span, now.as_nanos());
            ctx.trace(simnet::TraceEvent::Retransmit {
                src: ctx.endpoint(),
                dst: self.server,
                span: rec.span,
                attempt: rec.attempt,
            });
            ctx.send_traced(self.server, rec.bytes.clone(), rec.span);
            rec.deadline = now + self.cfg.policy.attempt_timeout(rec.attempt);
        }
        self.note_depth(ctx);
    }

    fn on_reply(&mut self, ctx: &mut Ctx, rep: Reply, src: Endpoint) {
        ctx.obs().span_reply(rep.span, ctx.now().as_nanos());
        if src != self.server {
            self.stats.stale_replies += 1;
            ctx.obs().on_stale_reply();
            return;
        }
        match self.calls.get_mut(&rep.call_id) {
            Some(rec) if matches!(rec.state, CallState::Outstanding) => {
                self.outstanding -= 1;
                self.stats.completed += 1;
                ctx.obs()
                    .close_span(rec.span, ctx.now().as_nanos(), rep.result.is_ok());
                rec.state = CallState::Done(rep.result);
                self.note_depth(ctx);
            }
            _ => {
                // Duplicate of an already-settled call, or not ours.
                self.stats.stale_replies += 1;
                ctx.obs().on_stale_reply();
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx, msg: &Message) {
        match Packet::from_frame(&msg.payload) {
            Ok(Packet::Reply(rep)) => self.on_reply(ctx, rep, msg.src),
            Ok(Packet::Batch(batch)) => {
                for item in batch.items {
                    match item {
                        Packet::Reply(rep) => self.on_reply(ctx, rep, msg.src),
                        _ => {
                            self.stats.discarded += 1;
                            ctx.obs().on_stray_dropped();
                        }
                    }
                }
            }
            Ok(Packet::Oneway(o)) => self.strays.push(o),
            Ok(Packet::Request(_)) | Err(_) => {
                self.stats.discarded += 1;
                ctx.obs().on_stray_dropped();
            }
        }
    }

    /// Drives the channel until `target` settles (or, with `None`, until
    /// every staged call has settled).
    fn pump(&mut self, ctx: &mut Ctx, target: Option<u64>) -> Result<(), RpcError> {
        loop {
            self.flush(ctx);
            self.expire(ctx);
            let settled = match target {
                Some(id) => self.is_settled(CallHandle(id)),
                None => self.outstanding == 0 && self.queue.is_empty(),
            };
            if settled {
                return Ok(());
            }
            let deadline = self
                .calls
                .values()
                .filter(|r| matches!(r.state, CallState::Outstanding))
                .map(|r| r.deadline)
                .min();
            let Some(deadline) = deadline else {
                // Nothing in flight but the target is unsettled: flush on
                // the next iteration will send queued work.
                continue;
            };
            if let Some(msg) = ctx.recv_deadline(deadline)? {
                self.on_message(ctx, &msg);
            }
        }
    }

    /// Waits for one call to settle and returns its result. Consumes the
    /// handle's slot: waiting twice on the same handle returns
    /// [`RpcError::Timeout`].
    ///
    /// # Errors
    ///
    /// * [`RpcError::Timeout`] — the call's retry budget ran out.
    /// * [`RpcError::Remote`] — the server executed and reported failure.
    /// * [`RpcError::Stopped`] — simulation shutdown.
    pub fn wait(&mut self, ctx: &mut Ctx, h: CallHandle) -> Result<Value, RpcError> {
        if !self.is_settled(h) {
            self.pump(ctx, Some(h.0))?;
        }
        match self.calls.remove(&h.0) {
            Some(CallRec {
                state: CallState::Done(result),
                ..
            }) => result.map_err(RpcError::Remote),
            _ => Err(RpcError::Timeout {
                attempts: self.cfg.policy.max_attempts,
            }),
        }
    }

    /// Drives the channel until every staged call has settled. Results
    /// stay claimable through [`Channel::wait`] (which then returns
    /// immediately).
    ///
    /// # Errors
    ///
    /// [`RpcError::Stopped`] on simulation shutdown.
    pub fn wait_all(&mut self, ctx: &mut Ctx) -> Result<(), RpcError> {
        self.pump(ctx, None)
    }

    /// Non-blocking progress: sends staged calls, fires due timers, and
    /// absorbs whatever already sits in the mailbox. The write-behind
    /// path of the caching proxy calls this between invocations.
    ///
    /// # Errors
    ///
    /// [`RpcError::Stopped`] on simulation shutdown.
    pub fn poll(&mut self, ctx: &mut Ctx) -> Result<(), RpcError> {
        self.flush(ctx);
        self.expire(ctx);
        while let Some(msg) = ctx.try_recv()? {
            self.on_message(ctx, &msg);
        }
        self.flush(ctx);
        Ok(())
    }

    /// Claims the result of a settled call without blocking, consuming
    /// its slot. Returns `None` while the call is still in flight; a
    /// reaped or unknown handle reports `Some(Err(Timeout))`, matching
    /// [`Channel::wait`].
    pub fn try_take(&mut self, h: CallHandle) -> Option<Result<Value, RpcError>> {
        if !self.is_settled(h) {
            return None;
        }
        Some(match self.calls.remove(&h.0) {
            Some(CallRec {
                state: CallState::Done(result),
                ..
            }) => result.map_err(RpcError::Remote),
            _ => Err(RpcError::Timeout {
                attempts: self.cfg.policy.max_attempts,
            }),
        })
    }

    /// The earliest retransmission deadline among in-flight calls, or
    /// `None` when nothing is outstanding. Poll-driven callers arm a
    /// timer wake at this instant before parking, so retransmits and
    /// final timeouts fire even if no reply ever arrives.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.calls
            .values()
            .filter(|r| matches!(r.state, CallState::Outstanding))
            .map(|r| r.deadline)
            .min()
    }

    /// Poll-driven analogue of [`Channel::wait`]: drives the channel as
    /// far as it can without blocking, and either yields the settled
    /// result or registers the wakes that complete it — the reply
    /// delivery itself (every delivery polls a parked process) plus a
    /// timer at the next retransmission deadline.
    ///
    /// Completed calls settle via the *completion wake* of the reply
    /// datagram; there is no condvar and no parked thread.
    pub fn poll_wait(
        &mut self,
        cx: &mut simnet::ProcCx,
        h: CallHandle,
    ) -> simnet::Poll<Result<Value, RpcError>> {
        if let Err(e) = self.poll(cx.ctx()) {
            return simnet::Poll::Ready(Err(e));
        }
        // Arm the earliest retransmit deadline *before* checking for
        // completion: when this call settles, a sibling pipelined call
        // may still be outstanding, and this poll may be the last one
        // the process makes before parking. Arming only on the Pending
        // path would leave that sibling with no timer — a lost wakeup,
        // not a slowdown. A wake for a deadline that retransmission
        // later supersedes is harmless: the timer is gen-stale by the
        // time it fires.
        if let Some(dl) = self.next_deadline() {
            cx.wake_at(dl);
        }
        match self.try_take(h) {
            Some(result) => simnet::Poll::Ready(result),
            None => simnet::Poll::Pending,
        }
    }

    /// Takes the one-way notifications (invalidations, recalls) that
    /// arrived while the channel was pumping. Callers route them to
    /// their proxies.
    pub fn take_strays(&mut self) -> Vec<Oneway> {
        std::mem::take(&mut self.strays)
    }

    /// Discards every settled call record without claiming its result
    /// and returns how many were dropped. Fire-and-forget users (the
    /// caching proxy's write-behind path) call this so unclaimed
    /// results do not accumulate; a later [`Channel::wait`] on a reaped
    /// handle reports a timeout.
    pub fn reap_settled(&mut self) -> usize {
        let before = self.calls.len();
        self.calls
            .retain(|_, r| !matches!(r.state, CallState::Done(_) | CallState::TimedOut));
        before - self.calls.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_clamps_and_builds() {
        let c = ChannelConfig::with_depth(0);
        let ch = Channel::new(
            "svc",
            Endpoint::new(simnet::NodeId(0), simnet::PortId(1)),
            c.batched(0),
        );
        assert_eq!(ch.cfg.pipeline_depth, 1, "depth clamped to 1");
        assert_eq!(ch.cfg.max_batch, 1, "batch clamped to 1");
        assert_eq!(ch.outstanding(), 0);
        assert_eq!(ch.queued(), 0);
    }

    #[test]
    fn unknown_handle_is_settled() {
        let ch = Channel::new(
            "svc",
            Endpoint::new(simnet::NodeId(0), simnet::PortId(1)),
            ChannelConfig::default(),
        );
        assert!(ch.is_settled(CallHandle(99)));
    }
}
