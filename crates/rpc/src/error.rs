//! RPC error types.

use std::fmt;

use simnet::Stopped;
use wire::{Value, WireError};

/// Machine-readable category of a server-side failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// The target object does not expose the requested operation.
    NoSuchOp,
    /// The target object does not exist in the addressed context.
    NoSuchObject,
    /// Arguments failed validation or decoding.
    BadArgs,
    /// The object has migrated; `data` carries its new location.
    Moved,
    /// The server is temporarily unable to execute (e.g. mid-migration).
    Unavailable,
    /// Not the primary replica; writes must go to the primary.
    NotPrimary,
    /// Application-defined failure.
    App,
}

impl ErrorCode {
    /// Stable wire name of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::NoSuchOp => "no_such_op",
            ErrorCode::NoSuchObject => "no_such_object",
            ErrorCode::BadArgs => "bad_args",
            ErrorCode::Moved => "moved",
            ErrorCode::Unavailable => "unavailable",
            ErrorCode::NotPrimary => "not_primary",
            ErrorCode::App => "app",
        }
    }

    /// Parses a wire name back to a code.
    pub fn from_str_loose(s: &str) -> ErrorCode {
        match s {
            "no_such_op" => ErrorCode::NoSuchOp,
            "no_such_object" => ErrorCode::NoSuchObject,
            "bad_args" => ErrorCode::BadArgs,
            "moved" => ErrorCode::Moved,
            "unavailable" => ErrorCode::Unavailable,
            "not_primary" => ErrorCode::NotPrimary,
            _ => ErrorCode::App,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A failure reported by the remote side of a call.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteError {
    /// Category of the failure.
    pub code: ErrorCode,
    /// Human-readable description.
    pub message: String,
    /// Structured payload (e.g. the new location for [`ErrorCode::Moved`]).
    pub data: Value,
}

impl RemoteError {
    /// Creates an error with no structured payload.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> RemoteError {
        RemoteError {
            code,
            message: message.into(),
            data: Value::Null,
        }
    }

    /// Creates an error carrying a structured payload.
    pub fn with_data(code: ErrorCode, message: impl Into<String>, data: Value) -> RemoteError {
        RemoteError {
            code,
            message: message.into(),
            data,
        }
    }
}

impl fmt::Display for RemoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "remote error [{}]: {}", self.code, self.message)
    }
}

impl std::error::Error for RemoteError {}

/// Error returned by RPC client operations.
#[derive(Debug, Clone, PartialEq)]
pub enum RpcError {
    /// No reply within the retry budget.
    Timeout {
        /// Number of attempts made (initial send plus retransmissions).
        attempts: u32,
    },
    /// The simulation is shutting down.
    Stopped,
    /// A reply arrived but could not be decoded.
    Wire(WireError),
    /// The server executed the call and reported a failure.
    Remote(RemoteError),
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Timeout { attempts } => {
                write!(f, "call timed out after {attempts} attempt(s)")
            }
            RpcError::Stopped => write!(f, "simulation stopped"),
            RpcError::Wire(e) => write!(f, "wire error: {e}"),
            RpcError::Remote(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RpcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RpcError::Wire(e) => Some(e),
            RpcError::Remote(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for RpcError {
    fn from(e: WireError) -> RpcError {
        RpcError::Wire(e)
    }
}

impl From<Stopped> for RpcError {
    fn from(_: Stopped) -> RpcError {
        RpcError::Stopped
    }
}

impl From<RemoteError> for RpcError {
    fn from(e: RemoteError) -> RpcError {
        RpcError::Remote(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip() {
        for c in [
            ErrorCode::NoSuchOp,
            ErrorCode::NoSuchObject,
            ErrorCode::BadArgs,
            ErrorCode::Moved,
            ErrorCode::Unavailable,
            ErrorCode::NotPrimary,
            ErrorCode::App,
        ] {
            assert_eq!(ErrorCode::from_str_loose(c.as_str()), c);
        }
        assert_eq!(ErrorCode::from_str_loose("mystery"), ErrorCode::App);
    }

    #[test]
    fn displays_are_informative() {
        let e = RpcError::Remote(RemoteError::new(ErrorCode::NoSuchOp, "nope"));
        assert!(e.to_string().contains("no_such_op"));
        assert!(e.to_string().contains("nope"));
        let t = RpcError::Timeout { attempts: 3 };
        assert!(t.to_string().contains('3'));
    }

    #[test]
    fn conversions() {
        let w: RpcError = WireError::BadMagic.into();
        assert!(matches!(w, RpcError::Wire(WireError::BadMagic)));
        let s: RpcError = Stopped.into();
        assert_eq!(s, RpcError::Stopped);
    }
}
