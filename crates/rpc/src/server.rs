//! The RPC server: dispatch with duplicate suppression.
//!
//! [`RpcServer`] implements the server half of at-most-once semantics: it
//! remembers, per client endpoint, which call ids it has executed and the
//! encoded replies for recent ones. A retransmitted request is answered
//! from the reply cache without re-executing the handler — the property
//! experiment E7 verifies under loss and duplication.
//!
//! A pipelined client keeps many calls outstanding, so ids may *execute
//! out of order* (call 7's datagram can arrive before call 5's). The
//! executed-id window therefore tracks a contiguous floor plus an exact
//! set of executed ids above it, instead of a single high-water mark: a
//! fresh id below the highest executed one still runs, while replayed
//! ids are suppressed exactly.

use std::collections::{BTreeSet, HashMap, VecDeque};

use bytes::Bytes;
use simnet::{Ctx, Endpoint, Message};
use wire::Value;

use crate::error::RemoteError;
use crate::proto::{Batch, Oneway, Packet, Reply, Request};

/// How many encoded replies to retain per client endpoint. Sized for a
/// pipelined channel's outstanding window with slack for late
/// duplicates.
const REPLY_CACHE_PER_CLIENT: usize = 32;

/// Cap on the exact executed-id set above the contiguous floor. A
/// pipelined client keeps at most `pipeline_depth` ids in flight, so
/// gaps close quickly; this bound only matters for pathological clients
/// and keeps per-client state O(1).
const EXECUTED_SET_LIMIT: usize = 1024;

/// Counters accumulated by a server.
///
/// Canonical definition lives in the `obs` crate; each server keeps its
/// own copy here, and the simulation-wide [`obs::MetricsRegistry`]
/// aggregates the same counters across every server.
pub use obs::ServeStats;

/// What [`RpcServer::handle`] did with one datagram.
#[derive(Debug)]
pub enum Served {
    /// A fresh request was executed and replied to.
    Executed(Request),
    /// A duplicate was answered from the reply cache (handler not run).
    DuplicateSuppressed,
    /// A duplicate too old to be cached was dropped.
    DuplicateDropped,
    /// A one-way notification; the caller decides what to do with it.
    Oneway(Oneway),
    /// A reply datagram (this process is also a client; the caller
    /// should not normally see these here).
    Reply(Reply),
    /// A batch of requests was unbatched and dispatched; replies were
    /// coalesced per destination. Counts what happened inside.
    Batch {
        /// Fresh requests executed.
        executed: u64,
        /// Duplicates answered from the reply cache.
        suppressed: u64,
        /// Duplicates too old to answer, dropped.
        dropped: u64,
    },
    /// The datagram failed to decode and was dropped.
    Undecodable,
}

/// Per-client executed-id window plus reply cache.
///
/// `floor` is the contiguous high-water mark: every id `<= floor` has
/// been executed (or permanently abandoned). `executed` holds the exact
/// ids above the floor that have run — out-of-order completions leave
/// gaps, and the floor only advances when its successor is present.
#[derive(Debug, Default)]
struct ClientWindow {
    /// Ids `<= floor` are all executed/handled.
    floor: u64,
    /// Executed ids above the floor (gaps = still-pending ids).
    executed: BTreeSet<u64>,
    /// Recent (call_id, encoded reply) pairs, oldest first.
    cached: VecDeque<(u64, Bytes)>,
}

impl ClientWindow {
    fn lookup(&self, id: u64) -> Option<&Bytes> {
        self.cached.iter().find(|(i, _)| *i == id).map(|(_, b)| b)
    }

    /// Has this id already been executed (run the handler)?
    fn is_executed(&self, id: u64) -> bool {
        id <= self.floor || self.executed.contains(&id)
    }

    fn insert(&mut self, id: u64, reply: Bytes) {
        if self.cached.len() >= REPLY_CACHE_PER_CLIENT {
            self.cached.pop_front();
        }
        self.cached.push_back((id, reply));
        if id > self.floor {
            self.executed.insert(id);
        }
        // Compact: absorb the contiguous run just above the floor.
        while self.executed.first() == Some(&(self.floor + 1)) {
            self.executed.pop_first();
            self.floor += 1;
        }
        // Bound the set: absorbing the smallest id into the floor also
        // writes off any never-seen ids below it — safe (at-most-once is
        // preserved; a >LIMIT-deep straggler would be dropped), and
        // unreachable for any sane pipeline depth.
        while self.executed.len() > EXECUTED_SET_LIMIT {
            if let Some(min) = self.executed.pop_first() {
                self.floor = self.floor.max(min);
            }
        }
    }
}

/// What `answer_request` produced for one request.
enum Answer {
    /// Fresh execution; the encoded reply to send.
    Executed(Bytes),
    /// Duplicate answered from the cache; the recorded reply to resend.
    Cached(Bytes),
    /// Duplicate too old to answer; nothing to send.
    Dropped,
}

/// Server-side call dispatch with per-client duplicate suppression.
///
/// Use [`RpcServer::serve`] for a simple request loop, or
/// [`RpcServer::handle`] inside a custom loop that also processes
/// one-way control traffic.
#[derive(Debug, Default)]
pub struct RpcServer {
    windows: HashMap<Endpoint, ClientWindow>,
    /// Counters (readable by experiment harnesses).
    pub stats: ServeStats,
}

impl RpcServer {
    /// Creates a server with empty duplicate-suppression state.
    pub fn new() -> RpcServer {
        RpcServer::default()
    }

    /// Processes one incoming datagram. Fresh requests run `handler`;
    /// its result is encoded, cached for duplicate suppression, and sent
    /// to the request's `reply_to`. A batch of requests is unbatched,
    /// each item dispatched with the same duplicate suppression, and the
    /// replies coalesced into one batch datagram per destination.
    ///
    /// Duplicate requests take a fast path: the routing header (`"t"`,
    /// `"id"`, `"rt"`) is *peeked* from the validated frame without
    /// materializing the value tree, and a cache hit resends the recorded
    /// reply with the op name and arguments never decoded at all.
    pub fn handle(
        &mut self,
        ctx: &mut Ctx,
        msg: &Message,
        handler: impl FnMut(&mut Ctx, &Request) -> Result<Value, RemoteError>,
    ) -> Served {
        if let Some(served) = self.try_peek_duplicate(ctx, msg) {
            return served;
        }
        let packet = match Packet::from_frame(&msg.payload) {
            Ok(p) => p,
            Err(_) => {
                self.stats.undecodable += 1;
                ctx.obs().on_undecodable();
                return Served::Undecodable;
            }
        };
        let mut handler = handler;
        match packet {
            Packet::Request(req) => self.handle_request(ctx, req, &mut handler),
            Packet::Oneway(o) => {
                self.stats.oneways += 1;
                ctx.obs().on_oneway_rx();
                Served::Oneway(o)
            }
            Packet::Reply(r) => Served::Reply(r),
            Packet::Batch(batch) => self.handle_batch(ctx, batch, &mut handler),
        }
    }

    /// The duplicate-suppression fast path: peeks at a single request's
    /// routing fields through [`wire::peek_frame`] (frame checked,
    /// structure validated, nothing materialized) and answers known call
    /// ids straight from the per-client state. Returns `None` for
    /// anything that needs the full decode — fresh requests, replies,
    /// one-ways, batches, or malformed frames (the slow path re-derives
    /// the precise error accounting).
    fn try_peek_duplicate(&mut self, ctx: &mut Ctx, msg: &Message) -> Option<Served> {
        let raw = wire::peek_frame(&msg.payload).ok()?;
        if raw.get_str("t").ok()? != "req" {
            return None;
        }
        let id = raw.get_u64("id").ok()?;
        let rt = raw.get_record("rt").ok()?;
        let node = u32::try_from(rt.get_u64("n").ok()?).ok()?;
        let port = u32::try_from(rt.get_u64("p").ok()?).ok()?;
        let reply_to = Endpoint::new(simnet::NodeId(node), simnet::PortId(port));
        let window = self.windows.get(&reply_to)?;
        if let Some(cached) = window.lookup(id) {
            // Retransmission with a recorded reply: resend it. The op
            // name and args of the retransmitted request are never
            // decoded (or even UTF-8 validated) on this path.
            let cached = cached.clone();
            let span = obs::SpanId::from_raw(raw.get_u64("sp").unwrap_or(0));
            self.stats.duplicates_suppressed += 1;
            ctx.obs().on_duplicate_suppressed();
            ctx.send_traced(reply_to, cached, span);
            return Some(Served::DuplicateSuppressed);
        }
        if window.is_executed(id) {
            // Executed long ago, reply since evicted: drop.
            self.stats.duplicates_dropped += 1;
            ctx.obs().on_duplicate_dropped();
            return Some(Served::DuplicateDropped);
        }
        None
    }

    fn handle_request(
        &mut self,
        ctx: &mut Ctx,
        req: Request,
        handler: &mut impl FnMut(&mut Ctx, &Request) -> Result<Value, RemoteError>,
    ) -> Served {
        let span = obs::SpanId::from_raw(req.span);
        match self.answer_request(ctx, &req, handler) {
            Answer::Cached(bytes) => {
                ctx.send_traced(req.reply_to, bytes, span);
                Served::DuplicateSuppressed
            }
            Answer::Dropped => Served::DuplicateDropped,
            Answer::Executed(bytes) => {
                // The reply belongs to the request's span (the handler
                // restored the server's previous span inside
                // `answer_request`).
                ctx.send_traced(req.reply_to, bytes, span);
                Served::Executed(req)
            }
        }
    }

    /// Unbatches a batch of requests, dispatches each with duplicate
    /// suppression, and sends the replies back coalesced: one batch
    /// datagram per `reply_to` (a single reply goes out plain).
    /// Non-request items inside a batch are a protocol violation and are
    /// counted as undecodable.
    fn handle_batch(
        &mut self,
        ctx: &mut Ctx,
        batch: Batch,
        handler: &mut impl FnMut(&mut Ctx, &Request) -> Result<Value, RemoteError>,
    ) -> Served {
        let (mut executed, mut suppressed, mut dropped) = (0u64, 0u64, 0u64);
        // Replies grouped by destination, preserving request order.
        let mut by_dest: Vec<(Endpoint, Vec<Bytes>)> = Vec::new();
        for item in batch.items {
            let req = match item {
                Packet::Request(r) => r,
                _ => {
                    self.stats.undecodable += 1;
                    ctx.obs().on_undecodable();
                    continue;
                }
            };
            let reply_to = req.reply_to;
            let bytes = match self.answer_request(ctx, &req, handler) {
                Answer::Executed(b) => {
                    executed += 1;
                    b
                }
                Answer::Cached(b) => {
                    suppressed += 1;
                    b
                }
                Answer::Dropped => {
                    dropped += 1;
                    continue;
                }
            };
            match by_dest.iter_mut().find(|(ep, _)| *ep == reply_to) {
                Some((_, replies)) => replies.push(bytes),
                None => by_dest.push((reply_to, vec![bytes])),
            }
        }
        for (dest, mut replies) in by_dest {
            if replies.len() == 1 {
                // A lone reply needs no envelope; send the cached bytes
                // as-is so single retransmissions stay byte-identical.
                ctx.send_traced(dest, replies.pop().unwrap(), obs::SpanId::NONE);
            } else {
                let count = replies.len();
                let items = replies
                    .iter()
                    .map(|b| match Packet::from_frame(b) {
                        Ok(p) => p,
                        Err(_) => unreachable!("server-encoded reply must decode"),
                    })
                    .collect();
                let payload = Batch { items }.to_bytes();
                ctx.trace(simnet::TraceEvent::Batched {
                    src: ctx.endpoint(),
                    dst: dest,
                    count,
                    span: obs::SpanId::NONE,
                });
                ctx.send_traced(dest, payload, obs::SpanId::NONE);
            }
        }
        Served::Batch {
            executed,
            suppressed,
            dropped,
        }
    }

    /// Duplicate-suppressed execution of one request: runs the handler
    /// only for fresh ids, records the encoded reply, and returns what
    /// to send — without sending it, so batch dispatch can coalesce.
    fn answer_request(
        &mut self,
        ctx: &mut Ctx,
        req: &Request,
        handler: &mut impl FnMut(&mut Ctx, &Request) -> Result<Value, RemoteError>,
    ) -> Answer {
        let window = self.windows.entry(req.reply_to).or_default();
        if let Some(cached) = window.lookup(req.call_id) {
            // Retransmission of a call we already executed: resend the
            // recorded reply; do NOT run the handler again. The cached
            // bytes already carry the original request's span, so the
            // resent reply correlates with the same invocation.
            let cached = cached.clone();
            self.stats.duplicates_suppressed += 1;
            ctx.obs().on_duplicate_suppressed();
            return Answer::Cached(cached);
        }
        if window.is_executed(req.call_id) {
            // Executed long ago and evicted from the reply cache: the
            // client has long since given up on it — drop.
            self.stats.duplicates_dropped += 1;
            ctx.obs().on_duplicate_dropped();
            return Answer::Dropped;
        }
        // Open a dispatch span as a child of the request's invoke span
        // and make it the process's active span while the handler runs,
        // so notifications the handler sends (invalidations, recalls,
        // replication updates) are parented to this dispatch.
        let dispatch = ctx.obs().open_span(
            obs::SpanKind::Dispatch,
            obs::SpanId::from_raw(req.span),
            ctx.name(),
            &req.op,
            ctx.now().as_nanos(),
        );
        let previous = ctx.set_current_span(dispatch);
        let started = ctx.now();
        let result = handler(ctx, req);
        ctx.set_current_span(previous);
        ctx.obs()
            .close_span(dispatch, ctx.now().as_nanos(), result.is_ok());
        ctx.trace(simnet::TraceEvent::ServerExecute {
            service: ctx.name().to_owned(),
            op: req.op.clone(),
            span: dispatch,
            dur_ns: ctx.now().saturating_since(started).as_nanos() as u64,
        });
        let reply = Reply {
            call_id: req.call_id,
            result,
            span: req.span,
        };
        let encoded = reply.to_bytes();
        self.windows
            .entry(req.reply_to)
            .or_default()
            .insert(req.call_id, encoded.clone());
        self.stats.executed += 1;
        ctx.obs().on_executed();
        Answer::Executed(encoded)
    }

    /// Runs a request loop until the simulation stops. One-way traffic is
    /// passed to `on_oneway`; replies and undecodable datagrams are
    /// dropped (counted).
    pub fn serve(
        &mut self,
        ctx: &mut Ctx,
        mut handler: impl FnMut(&mut Ctx, &Request) -> Result<Value, RemoteError>,
        mut on_oneway: impl FnMut(&mut Ctx, &Oneway),
    ) {
        while let Ok(msg) = ctx.recv() {
            if let Served::Oneway(o) = self.handle(ctx, &msg, &mut handler) {
                on_oneway(ctx, &o);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{NodeId, PortId};

    fn ep(n: u32, p: u32) -> Endpoint {
        Endpoint::new(NodeId(n), PortId(p))
    }

    #[test]
    fn window_caches_and_evicts() {
        let mut w = ClientWindow::default();
        for id in 1..=(REPLY_CACHE_PER_CLIENT as u64 + 5) {
            w.insert(id, Bytes::from_static(b"r"));
        }
        assert_eq!(w.floor, REPLY_CACHE_PER_CLIENT as u64 + 5);
        assert!(w.lookup(1).is_none(), "oldest evicted");
        assert!(w.lookup(REPLY_CACHE_PER_CLIENT as u64 + 5).is_some());
        assert!(w.lookup(6).is_some(), "recent retained");
    }

    #[test]
    fn windows_are_per_client() {
        let mut s = RpcServer::new();
        s.windows
            .entry(ep(0, 1))
            .or_default()
            .insert(5, Bytes::new());
        assert!(s.windows.entry(ep(0, 2)).or_default().lookup(5).is_none());
    }

    #[test]
    fn out_of_order_ids_are_not_mistaken_for_duplicates() {
        // A pipelined client's ids can execute out of order: executing 3
        // must not mark 1 and 2 as duplicates.
        let mut w = ClientWindow::default();
        w.insert(3, Bytes::from_static(b"c"));
        assert!(w.is_executed(3));
        assert!(!w.is_executed(1), "gap id 1 wrongly suppressed");
        assert!(!w.is_executed(2), "gap id 2 wrongly suppressed");
        w.insert(1, Bytes::from_static(b"a"));
        assert_eq!(w.floor, 1, "floor advances over contiguous prefix");
        w.insert(2, Bytes::from_static(b"b"));
        assert_eq!(w.floor, 3, "floor absorbs the closed gap");
        assert!(w.executed.is_empty(), "set drained into the floor");
        assert!(w.is_executed(1) && w.is_executed(2) && w.is_executed(3));
        assert!(!w.is_executed(4));
    }

    #[test]
    fn executed_set_stays_bounded() {
        let mut w = ClientWindow::default();
        // Insert only odd ids: every one leaves a gap, so nothing
        // compacts into the floor until the bound kicks in.
        for i in 0..(EXECUTED_SET_LIMIT as u64 + 100) {
            w.insert(2 * i + 1, Bytes::from_static(b"r"));
        }
        assert!(w.executed.len() <= EXECUTED_SET_LIMIT);
        assert!(w.floor > 0, "bound absorbed the oldest ids");
    }
}
