//! The RPC server: dispatch with duplicate suppression.
//!
//! [`RpcServer`] implements the server half of at-most-once semantics: it
//! remembers, per client endpoint, which call ids it has executed and the
//! encoded replies for recent ones. A retransmitted request is answered
//! from the reply cache without re-executing the handler — the property
//! experiment E7 verifies under loss and duplication.

use std::collections::{HashMap, VecDeque};

use bytes::Bytes;
use simnet::{Ctx, Endpoint, Message};
use wire::Value;

use crate::error::RemoteError;
use crate::proto::{Oneway, Packet, Reply, Request};

/// How many encoded replies to retain per client endpoint. A synchronous
/// client has one outstanding call, so a small window is ample.
const REPLY_CACHE_PER_CLIENT: usize = 32;

/// Counters accumulated by a server.
///
/// Canonical definition lives in the `obs` crate; each server keeps its
/// own copy here, and the simulation-wide [`obs::MetricsRegistry`]
/// aggregates the same counters across every server.
pub use obs::ServeStats;

/// What [`RpcServer::handle`] did with one datagram.
#[derive(Debug)]
pub enum Served {
    /// A fresh request was executed and replied to.
    Executed(Request),
    /// A duplicate was answered from the reply cache (handler not run).
    DuplicateSuppressed,
    /// A duplicate too old to be cached was dropped.
    DuplicateDropped,
    /// A one-way notification; the caller decides what to do with it.
    Oneway(Oneway),
    /// A reply datagram (this process is also a client; the caller
    /// should not normally see these here).
    Reply(Reply),
    /// The datagram failed to decode and was dropped.
    Undecodable,
}

#[derive(Debug, Default)]
struct ClientWindow {
    /// Highest call id executed for this client.
    max_executed: u64,
    /// Recent (call_id, encoded reply) pairs, oldest first.
    cached: VecDeque<(u64, Bytes)>,
}

impl ClientWindow {
    fn lookup(&self, id: u64) -> Option<&Bytes> {
        self.cached.iter().find(|(i, _)| *i == id).map(|(_, b)| b)
    }

    fn insert(&mut self, id: u64, reply: Bytes) {
        if self.cached.len() >= REPLY_CACHE_PER_CLIENT {
            self.cached.pop_front();
        }
        self.cached.push_back((id, reply));
        self.max_executed = self.max_executed.max(id);
    }
}

/// Server-side call dispatch with per-client duplicate suppression.
///
/// Use [`RpcServer::serve`] for a simple request loop, or
/// [`RpcServer::handle`] inside a custom loop that also processes
/// one-way control traffic.
#[derive(Debug, Default)]
pub struct RpcServer {
    windows: HashMap<Endpoint, ClientWindow>,
    /// Counters (readable by experiment harnesses).
    pub stats: ServeStats,
}

impl RpcServer {
    /// Creates a server with empty duplicate-suppression state.
    pub fn new() -> RpcServer {
        RpcServer::default()
    }

    /// Processes one incoming datagram. Fresh requests run `handler`;
    /// its result is encoded, cached for duplicate suppression, and sent
    /// to the request's `reply_to`.
    pub fn handle(
        &mut self,
        ctx: &mut Ctx,
        msg: &Message,
        handler: impl FnOnce(&mut Ctx, &Request) -> Result<Value, RemoteError>,
    ) -> Served {
        let packet = match Packet::from_bytes(&msg.payload) {
            Ok(p) => p,
            Err(_) => {
                self.stats.undecodable += 1;
                ctx.obs().on_undecodable();
                return Served::Undecodable;
            }
        };
        match packet {
            Packet::Request(req) => self.handle_request(ctx, req, handler),
            Packet::Oneway(o) => {
                self.stats.oneways += 1;
                ctx.obs().on_oneway_rx();
                Served::Oneway(o)
            }
            Packet::Reply(r) => Served::Reply(r),
        }
    }

    fn handle_request(
        &mut self,
        ctx: &mut Ctx,
        req: Request,
        handler: impl FnOnce(&mut Ctx, &Request) -> Result<Value, RemoteError>,
    ) -> Served {
        let window = self.windows.entry(req.reply_to).or_default();
        if let Some(cached) = window.lookup(req.call_id) {
            // Retransmission of a call we already executed: resend the
            // recorded reply; do NOT run the handler again. The cached
            // bytes already carry the original request's span, so the
            // resent reply correlates with the same invocation.
            let cached = cached.clone();
            self.stats.duplicates_suppressed += 1;
            ctx.obs().on_duplicate_suppressed();
            ctx.send_traced(req.reply_to, cached, obs::SpanId::from_raw(req.span));
            return Served::DuplicateSuppressed;
        }
        if req.call_id <= window.max_executed {
            // Executed long ago and evicted: the client cannot still be
            // waiting (ids are monotonic and calls synchronous) — drop.
            self.stats.duplicates_dropped += 1;
            ctx.obs().on_duplicate_dropped();
            return Served::DuplicateDropped;
        }
        // Open a dispatch span as a child of the request's invoke span
        // and make it the process's active span while the handler runs,
        // so notifications the handler sends (invalidations, recalls,
        // replication updates) are parented to this dispatch.
        let dispatch = ctx.obs().open_span(
            obs::SpanKind::Dispatch,
            obs::SpanId::from_raw(req.span),
            ctx.name(),
            &req.op,
            ctx.now().as_nanos(),
        );
        let previous = ctx.set_current_span(dispatch);
        let started = ctx.now();
        let result = handler(ctx, &req);
        ctx.set_current_span(previous);
        ctx.obs()
            .close_span(dispatch, ctx.now().as_nanos(), result.is_ok());
        ctx.trace(simnet::TraceEvent::ServerExecute {
            service: ctx.name().to_owned(),
            op: req.op.clone(),
            span: dispatch,
            dur_ns: ctx.now().saturating_since(started).as_nanos() as u64,
        });
        let reply = Reply {
            call_id: req.call_id,
            result,
            span: req.span,
        };
        let encoded = reply.to_bytes();
        self.windows
            .entry(req.reply_to)
            .or_default()
            .insert(req.call_id, encoded.clone());
        self.stats.executed += 1;
        ctx.obs().on_executed();
        // The reply belongs to the request's span (the handler restored
        // the server's previous span above).
        ctx.send_traced(req.reply_to, encoded, obs::SpanId::from_raw(req.span));
        Served::Executed(req)
    }

    /// Runs a request loop until the simulation stops. One-way traffic is
    /// passed to `on_oneway`; replies and undecodable datagrams are
    /// dropped (counted).
    pub fn serve(
        &mut self,
        ctx: &mut Ctx,
        mut handler: impl FnMut(&mut Ctx, &Request) -> Result<Value, RemoteError>,
        mut on_oneway: impl FnMut(&mut Ctx, &Oneway),
    ) {
        while let Ok(msg) = ctx.recv() {
            if let Served::Oneway(o) = self.handle(ctx, &msg, &mut handler) {
                on_oneway(ctx, &o);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{NodeId, PortId};

    fn ep(n: u32, p: u32) -> Endpoint {
        Endpoint::new(NodeId(n), PortId(p))
    }

    #[test]
    fn window_caches_and_evicts() {
        let mut w = ClientWindow::default();
        for id in 1..=(REPLY_CACHE_PER_CLIENT as u64 + 5) {
            w.insert(id, Bytes::from_static(b"r"));
        }
        assert_eq!(w.max_executed, REPLY_CACHE_PER_CLIENT as u64 + 5);
        assert!(w.lookup(1).is_none(), "oldest evicted");
        assert!(w.lookup(REPLY_CACHE_PER_CLIENT as u64 + 5).is_some());
        assert!(w.lookup(6).is_some(), "recent retained");
    }

    #[test]
    fn windows_are_per_client() {
        let mut s = RpcServer::new();
        s.windows
            .entry(ep(0, 1))
            .or_default()
            .insert(5, Bytes::new());
        assert!(s.windows.entry(ep(0, 2)).or_default().lookup(5).is_none());
    }
}
