//! The RPC client: synchronous calls with retransmission.
//!
//! A [`RpcClient`] issues one call at a time against a fixed server
//! endpoint. Retransmissions reuse the call id, so together with the
//! server's duplicate suppression the protocol gives **at-most-once**
//! execution (the Birrell & Nelson design the paper's stubs assume).

use std::time::Duration;

use simnet::{Ctx, Endpoint, Message};
use wire::Value;

use crate::error::RpcError;
use crate::proto::{Oneway, Packet, Request};

/// Retransmission policy for a client.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// How long to wait for the first reply.
    pub timeout: Duration,
    /// Total attempts (first send plus retransmissions).
    pub max_attempts: u32,
    /// Multiplier applied to the timeout after each attempt
    /// (1.0 = fixed interval, 2.0 = exponential backoff).
    pub backoff: f64,
}

impl RetryPolicy {
    /// A policy that never retransmits: one attempt with the given timeout.
    pub fn no_retry(timeout: Duration) -> RetryPolicy {
        RetryPolicy {
            timeout,
            max_attempts: 1,
            backoff: 1.0,
        }
    }

    /// Fixed-interval retransmission.
    pub fn fixed(timeout: Duration, max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            timeout,
            max_attempts,
            backoff: 1.0,
        }
    }

    /// Exponential backoff with factor 2.
    pub fn exponential(timeout: Duration, max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            timeout,
            max_attempts,
            backoff: 2.0,
        }
    }

    pub(crate) fn attempt_timeout(&self, attempt: u32) -> Duration {
        let factor = self.backoff.powi(attempt as i32);
        Duration::from_nanos((self.timeout.as_nanos() as f64 * factor) as u64)
    }
}

impl Default for RetryPolicy {
    /// 10ms initial timeout, 4 attempts, exponential backoff — sized for
    /// the default LAN profile (500µs one-way latency).
    fn default() -> RetryPolicy {
        RetryPolicy::exponential(Duration::from_millis(10), 4)
    }
}

/// Counters accumulated by a client across calls.
///
/// Canonical definition lives in the `obs` crate; each client keeps its
/// own copy here, and the simulation-wide [`obs::MetricsRegistry`]
/// aggregates the same counters across every client.
pub use obs::CallStats;

/// A synchronous RPC client bound to one server endpoint.
///
/// One call may be outstanding at a time (calls are blocking). Replies are
/// matched on `(server endpoint, call id)`.
#[derive(Debug)]
pub struct RpcClient {
    server: Endpoint,
    policy: RetryPolicy,
    /// Counters (readable by experiment harnesses).
    pub stats: CallStats,
}

impl RpcClient {
    /// Creates a client for `server` with the default [`RetryPolicy`].
    pub fn new(server: Endpoint) -> RpcClient {
        RpcClient::with_policy(server, RetryPolicy::default())
    }

    /// Creates a client with an explicit policy.
    pub fn with_policy(server: Endpoint, policy: RetryPolicy) -> RpcClient {
        RpcClient {
            server,
            policy,
            stats: CallStats::default(),
        }
    }

    /// The server endpoint this client calls.
    pub fn server(&self) -> Endpoint {
        self.server
    }

    /// Repoints the client at a new server endpoint (after a migration
    /// or rebind). In-flight duplicate replies from the old server are
    /// filtered out by the source check.
    pub fn rebind(&mut self, server: Endpoint) {
        self.server = server;
    }

    /// Calls `op` on the server's default object.
    ///
    /// # Errors
    ///
    /// See [`RpcClient::call_object`].
    pub fn call(&mut self, ctx: &mut Ctx, op: &str, args: Value) -> Result<Value, RpcError> {
        self.call_object(ctx, "", op, args)
    }

    /// Calls `op` on a named object in the server context.
    ///
    /// # Errors
    ///
    /// * [`RpcError::Timeout`] — no reply within the retry budget.
    /// * [`RpcError::Remote`] — the server executed and reported failure.
    /// * [`RpcError::Stopped`] — simulation shutdown.
    pub fn call_object(
        &mut self,
        ctx: &mut Ctx,
        object: &str,
        op: &str,
        args: Value,
    ) -> Result<Value, RpcError> {
        self.call_with_strays(ctx, object, op, args, |_, _| StrayVerdict::Drop)
    }

    /// Like [`RpcClient::call_object`], but non-reply datagrams that
    /// arrive while waiting are offered to `on_stray` (smart proxies use
    /// this to process invalidations without losing them).
    ///
    /// # Errors
    ///
    /// See [`RpcClient::call_object`].
    pub fn call_with_strays(
        &mut self,
        ctx: &mut Ctx,
        object: &str,
        op: &str,
        args: Value,
        mut on_stray: impl FnMut(&mut Ctx, Stray<'_>) -> StrayVerdict,
    ) -> Result<Value, RpcError> {
        // Call ids come from the per-process counter so every client
        // object in a process shares one id space: the server's
        // duplicate-suppression window (keyed by our endpoint) then
        // sees strictly increasing fresh ids.
        let call_id = ctx.next_seq();
        self.stats.calls += 1;
        ctx.obs().on_call();

        // The request inherits the caller's active span. It is encoded
        // exactly once, so every retransmission below carries the same
        // span by construction.
        let span = ctx.current_span();
        let request = Request {
            call_id,
            reply_to: ctx.endpoint(),
            object: object.to_owned(),
            op: op.to_owned(),
            args,
            span: span.raw(),
        };
        let datagram = request.to_bytes();

        for attempt in 0..self.policy.max_attempts {
            if attempt > 0 {
                self.stats.retries += 1;
                ctx.obs().on_retry();
                ctx.obs().span_retransmit_at(span, ctx.now().as_nanos());
                ctx.trace(simnet::TraceEvent::Retransmit {
                    src: ctx.endpoint(),
                    dst: self.server,
                    span,
                    attempt,
                });
            }
            ctx.send_traced(self.server, datagram.clone(), span);
            let deadline = ctx.now() + self.policy.attempt_timeout(attempt);
            // Drain replies until the attempt deadline; a `None` recv
            // means the attempt timed out and we retransmit.
            while let Some(msg) = ctx.recv_deadline(deadline)? {
                match Packet::from_frame(&msg.payload) {
                    Ok(Packet::Reply(rep)) => {
                        ctx.obs().span_reply(rep.span, ctx.now().as_nanos());
                        if rep.call_id == call_id && msg.src == self.server {
                            return rep.result.map_err(RpcError::Remote);
                        }
                        self.stats.stale_replies += 1;
                        ctx.obs().on_stale_reply();
                    }
                    Ok(Packet::Oneway(o)) => match on_stray(ctx, Stray::Oneway(&o, &msg)) {
                        StrayVerdict::Consumed => {}
                        StrayVerdict::Drop => {
                            self.stats.strays_dropped += 1;
                            ctx.obs().on_stray_dropped();
                        }
                    },
                    Ok(Packet::Request(r)) => match on_stray(ctx, Stray::Request(&r, &msg)) {
                        StrayVerdict::Consumed => {}
                        StrayVerdict::Drop => {
                            self.stats.strays_dropped += 1;
                            ctx.obs().on_stray_dropped();
                        }
                    },
                    Ok(Packet::Batch(_)) => {
                        // A synchronous client never batches, so batched
                        // replies cannot be addressed to it.
                        self.stats.strays_dropped += 1;
                        ctx.obs().on_stray_dropped();
                    }
                    Err(_) => {
                        self.stats.strays_dropped += 1;
                        ctx.obs().on_stray_dropped();
                    }
                }
            }
        }
        self.stats.timeouts += 1;
        ctx.obs().on_timeout();
        Err(RpcError::Timeout {
            attempts: self.policy.max_attempts,
        })
    }

    /// Sends a one-way notification to the server (no reply, no retry).
    /// Stamped with the caller's active span and recorded as an
    /// immediately-closed one-way span parented to it.
    pub fn notify(&self, ctx: &Ctx, op: &str, args: Value) {
        send_oneway(ctx, self.server, op, args);
    }
}

/// A non-reply datagram observed while a call was waiting.
#[derive(Debug)]
pub enum Stray<'a> {
    /// A one-way notification (e.g. a cache invalidation).
    Oneway(&'a Oneway, &'a Message),
    /// A request addressed to this process (e.g. callback traffic).
    Request(&'a Request, &'a Message),
}

/// What the stray handler did with the datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrayVerdict {
    /// The handler processed it.
    Consumed,
    /// Not interesting; count it as dropped.
    Drop,
}

/// Sends a one-way notification outside any client (helper for servers
/// pushing invalidations or replication traffic). The notification
/// carries the caller's active span and is recorded as an
/// immediately-closed one-way span parented to it, which is how
/// invalidations and recalls stay causally attributable to the write
/// that triggered them.
pub fn send_oneway(ctx: &Ctx, to: Endpoint, op: &str, args: Value) {
    let parent = ctx.current_span();
    let span = note_oneway_span(ctx, parent, op, &args);
    let msg = Oneway {
        from: ctx.endpoint(),
        op: op.to_owned(),
        args,
        span: span.raw(),
    };
    ctx.send_traced(to, msg.to_bytes(), span);
}

/// Sends a one-way notification from a specific bound source endpoint.
pub fn send_oneway_from(ctx: &Ctx, from: Endpoint, to: Endpoint, op: &str, args: Value) {
    let parent = ctx.current_span();
    let span = note_oneway_span(ctx, parent, op, &args);
    let msg = Oneway {
        from,
        op: op.to_owned(),
        args,
        span: span.raw(),
    };
    ctx.send_from_traced(from, to, msg.to_bytes(), span);
}

/// Records a one-way span for a notification. The service label comes
/// from the body's `"svc"` field when present (invalidate/recall bodies
/// carry it), falling back to the sending process's name.
fn note_oneway_span(ctx: &Ctx, parent: obs::SpanId, op: &str, args: &Value) -> obs::SpanId {
    let service = args.get_str("svc").unwrap_or(ctx.name()).to_owned();
    ctx.obs()
        .note_oneway(parent, &service, op, ctx.now().as_nanos())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_backoff_grows() {
        let p = RetryPolicy::exponential(Duration::from_millis(10), 4);
        assert_eq!(p.attempt_timeout(0), Duration::from_millis(10));
        assert_eq!(p.attempt_timeout(1), Duration::from_millis(20));
        assert_eq!(p.attempt_timeout(2), Duration::from_millis(40));
    }

    #[test]
    fn policy_fixed_is_flat() {
        let p = RetryPolicy::fixed(Duration::from_millis(5), 3);
        assert_eq!(p.attempt_timeout(0), p.attempt_timeout(2));
    }

    #[test]
    fn no_retry_is_single_attempt() {
        let p = RetryPolicy::no_retry(Duration::from_millis(1));
        assert_eq!(p.max_attempts, 1);
    }
}
