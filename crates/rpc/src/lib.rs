//! # rpc — at-most-once request/response over simnet
//!
//! The transport layer the proxy principle builds on: a Birrell &
//! Nelson-style RPC protocol with call ids, retransmission, and
//! server-side duplicate suppression, giving **at-most-once** execution
//! under message loss and duplication.
//!
//! A plain RPC *stub* — the degenerate proxy of the paper — is simply an
//! [`RpcClient`] plus marshalling; the smart proxies in `proxy-core`
//! layer caching, replication and migration strategies on top of this
//! same machinery.
//!
//! ## Example
//!
//! ```
//! use simnet::{Simulation, NetworkConfig, NodeId, PortId};
//! use rpc::{RpcClient, RpcServer, RemoteError, ErrorCode};
//! use wire::Value;
//!
//! let mut sim = Simulation::new(NetworkConfig::lan(), 1);
//! let server = sim.spawn_at("adder", NodeId(0), PortId(10), |ctx| {
//!     let mut srv = RpcServer::new();
//!     srv.serve(ctx, |_ctx, req| match req.op.as_str() {
//!         "add" => {
//!             let a = req.args.get_u64("a").map_err(|_| RemoteError::new(ErrorCode::BadArgs, "a"))?;
//!             let b = req.args.get_u64("b").map_err(|_| RemoteError::new(ErrorCode::BadArgs, "b"))?;
//!             Ok(Value::U64(a + b))
//!         }
//!         _ => Err(RemoteError::new(ErrorCode::NoSuchOp, req.op.clone())),
//!     }, |_ctx, _oneway| {});
//! });
//! sim.spawn("client", NodeId(1), move |ctx| {
//!     let mut client = RpcClient::new(server);
//!     let sum = client
//!         .call(ctx, "add", Value::record([("a", Value::U64(2)), ("b", Value::U64(3))]))
//!         .unwrap();
//!     assert_eq!(sum, Value::U64(5));
//! });
//! sim.run();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod channel;
mod client;
mod error;
mod proto;
mod server;

pub use channel::{CallHandle, Channel, ChannelConfig, ChannelStats};
pub use client::{
    send_oneway, send_oneway_from, CallStats, RetryPolicy, RpcClient, Stray, StrayVerdict,
};
pub use error::{ErrorCode, RemoteError, RpcError};
pub use proto::{endpoint_from_value, endpoint_to_value, Batch, Oneway, Packet, Reply, Request};
pub use server::{RpcServer, ServeStats, Served};
