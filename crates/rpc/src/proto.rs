//! The RPC wire protocol: requests, replies and one-way notifications.
//!
//! Every datagram is a framed [`Value`] record whose `"t"` field
//! discriminates the envelope kind: `"req"`, `"rep"` or `"msg"`.

use bytes::Bytes;
use simnet::{Endpoint, NodeId, PortId};
use wire::{frame, unframe, Value, WireError};

use crate::error::{ErrorCode, RemoteError};

/// Encodes an endpoint as a wire value.
pub fn endpoint_to_value(ep: Endpoint) -> Value {
    Value::record([
        ("n", Value::U64(ep.node.0.into())),
        ("p", Value::U64(ep.port.0.into())),
    ])
}

/// Decodes an endpoint from a wire value.
///
/// # Errors
///
/// Returns a [`WireError`] if fields are missing or out of range.
pub fn endpoint_from_value(v: &Value) -> Result<Endpoint, WireError> {
    let node = u32::try_from(v.get_u64("n")?).map_err(|_| WireError::TooLong(u64::MAX))?;
    let port = u32::try_from(v.get_u64("p")?).map_err(|_| WireError::TooLong(u64::MAX))?;
    Ok(Endpoint::new(NodeId(node), PortId(port)))
}

/// An RPC request envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-assigned identifier, monotonic per client endpoint.
    /// Retransmissions reuse the id so the server can suppress duplicates.
    pub call_id: u64,
    /// Where the reply should be sent.
    pub reply_to: Endpoint,
    /// Target object within the server context (services may host many).
    /// Empty string addresses the context's default object.
    pub object: String,
    /// Operation name.
    pub op: String,
    /// Operation arguments.
    pub args: Value,
    /// Causal span this request belongs to (raw [`obs::SpanId`]), or 0
    /// when sent outside any tracked invocation. Retransmissions reuse
    /// the encoded datagram, so they share the span by construction.
    pub span: u64,
}

impl Request {
    /// Encodes this request into a framed datagram payload.
    pub fn to_bytes(&self) -> Bytes {
        let mut fields = vec![
            ("t", Value::str("req")),
            ("id", Value::U64(self.call_id)),
            ("rt", endpoint_to_value(self.reply_to)),
            ("obj", Value::str(self.object.clone())),
            ("op", Value::str(self.op.clone())),
            ("args", self.args.clone()),
        ];
        if self.span != 0 {
            fields.push(("sp", Value::U64(self.span)));
        }
        frame(&Value::record(fields))
    }

    fn from_value(v: &Value) -> Result<Request, WireError> {
        Ok(Request {
            call_id: v.get_u64("id")?,
            reply_to: endpoint_from_value(v.get("rt").ok_or(WireError::MissingField("rt"))?)?,
            object: v.get_str("obj")?.to_owned(),
            op: v.get_str("op")?.to_owned(),
            args: v.get("args").cloned().unwrap_or(Value::Null),
            span: v.get_u64("sp").unwrap_or(0),
        })
    }
}

/// An RPC reply envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// Echoes the request's `call_id`.
    pub call_id: u64,
    /// Success value or remote failure.
    pub result: Result<Value, RemoteError>,
    /// Echoes the request's causal span (0 for untracked traffic), so a
    /// client can correlate the reply with the invocation that caused it.
    pub span: u64,
}

impl Reply {
    /// Encodes this reply into a framed datagram payload.
    pub fn to_bytes(&self) -> Bytes {
        let mut fields = match &self.result {
            Ok(v) => vec![
                ("t", Value::str("rep")),
                ("id", Value::U64(self.call_id)),
                ("ok", v.clone()),
            ],
            Err(e) => vec![
                ("t", Value::str("rep")),
                ("id", Value::U64(self.call_id)),
                ("err", Value::str(e.code.as_str())),
                ("msg", Value::str(e.message.clone())),
                ("data", e.data.clone()),
            ],
        };
        if self.span != 0 {
            fields.push(("sp", Value::U64(self.span)));
        }
        frame(&Value::record(fields))
    }

    fn from_value(v: &Value) -> Result<Reply, WireError> {
        let call_id = v.get_u64("id")?;
        let result = if let Some(ok) = v.get("ok") {
            Ok(ok.clone())
        } else {
            Err(RemoteError {
                code: ErrorCode::from_str_loose(v.get_str("err")?),
                message: v.get_str("msg")?.to_owned(),
                data: v.get("data").cloned().unwrap_or(Value::Null),
            })
        };
        Ok(Reply {
            call_id,
            result,
            span: v.get_u64("sp").unwrap_or(0),
        })
    }
}

/// A one-way notification (no reply expected): cache invalidations,
/// callbacks, replication traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct Oneway {
    /// Sender endpoint (for follow-up contact).
    pub from: Endpoint,
    /// Notification kind.
    pub op: String,
    /// Notification body.
    pub args: Value,
    /// Causal span of the work that triggered this notification (e.g.
    /// the dispatch whose write broadcast an invalidation), or 0.
    pub span: u64,
}

impl Oneway {
    /// Encodes this notification into a framed datagram payload.
    pub fn to_bytes(&self) -> Bytes {
        let mut fields = vec![
            ("t", Value::str("msg")),
            ("from", endpoint_to_value(self.from)),
            ("op", Value::str(self.op.clone())),
            ("args", self.args.clone()),
        ];
        if self.span != 0 {
            fields.push(("sp", Value::U64(self.span)));
        }
        frame(&Value::record(fields))
    }

    fn from_value(v: &Value) -> Result<Oneway, WireError> {
        Ok(Oneway {
            from: endpoint_from_value(v.get("from").ok_or(WireError::MissingField("from"))?)?,
            op: v.get_str("op")?.to_owned(),
            args: v.get("args").cloned().unwrap_or(Value::Null),
            span: v.get_u64("sp").unwrap_or(0),
        })
    }
}

/// Any decoded RPC datagram.
#[derive(Debug, Clone, PartialEq)]
pub enum Packet {
    /// A request expecting a reply.
    Request(Request),
    /// A reply to an earlier request.
    Reply(Reply),
    /// A one-way notification.
    Oneway(Oneway),
}

impl Packet {
    /// Decodes a framed datagram payload.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] for malformed frames or unknown envelope
    /// kinds.
    pub fn from_bytes(bytes: &[u8]) -> Result<Packet, WireError> {
        let v = unframe(bytes)?;
        match v.get_str("t")? {
            "req" => Ok(Packet::Request(Request::from_value(&v)?)),
            "rep" => Ok(Packet::Reply(Reply::from_value(&v)?)),
            "msg" => Ok(Packet::Oneway(Oneway::from_value(&v)?)),
            _ => Err(WireError::WrongKind {
                expected: "req|rep|msg",
                actual: "unknown envelope",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(n: u32, p: u32) -> Endpoint {
        Endpoint::new(NodeId(n), PortId(p))
    }

    #[test]
    fn request_roundtrip() {
        let req = Request {
            call_id: 42,
            reply_to: ep(1, 70000),
            object: "kv0".into(),
            op: "get".into(),
            args: Value::record([("key", Value::str("color"))]),
            span: 9,
        };
        match Packet::from_bytes(&req.to_bytes()).unwrap() {
            Packet::Request(r) => assert_eq!(r, req),
            other => panic!("wrong packet {other:?}"),
        }
    }

    #[test]
    fn reply_ok_roundtrip() {
        let rep = Reply {
            call_id: 7,
            result: Ok(Value::str("blue")),
            span: 9,
        };
        match Packet::from_bytes(&rep.to_bytes()).unwrap() {
            Packet::Reply(r) => assert_eq!(r, rep),
            other => panic!("wrong packet {other:?}"),
        }
    }

    #[test]
    fn reply_err_roundtrip_with_data() {
        let rep = Reply {
            call_id: 8,
            result: Err(RemoteError::with_data(
                ErrorCode::Moved,
                "object moved",
                endpoint_to_value(ep(3, 12)),
            )),
            span: 0,
        };
        match Packet::from_bytes(&rep.to_bytes()).unwrap() {
            Packet::Reply(r) => {
                let e = r.result.unwrap_err();
                assert_eq!(e.code, ErrorCode::Moved);
                assert_eq!(endpoint_from_value(&e.data).unwrap(), ep(3, 12));
            }
            other => panic!("wrong packet {other:?}"),
        }
    }

    #[test]
    fn oneway_roundtrip() {
        let m = Oneway {
            from: ep(2, 5),
            op: "invalidate".into(),
            args: Value::str("key1"),
            span: 3,
        };
        match Packet::from_bytes(&m.to_bytes()).unwrap() {
            Packet::Oneway(o) => assert_eq!(o, m),
            other => panic!("wrong packet {other:?}"),
        }
    }

    #[test]
    fn span_is_optional_on_the_wire() {
        // A spanless packet encodes no "sp" field at all and decodes
        // back to span 0, so pre-span peers interoperate unchanged.
        let req = Request {
            call_id: 1,
            reply_to: ep(1, 2),
            object: String::new(),
            op: "get".into(),
            args: Value::Null,
            span: 0,
        };
        let v = wire::unframe(&req.to_bytes()).unwrap();
        assert!(v.get("sp").is_none());
        match Packet::from_bytes(&req.to_bytes()).unwrap() {
            Packet::Request(r) => assert_eq!(r.span, 0),
            other => panic!("wrong packet {other:?}"),
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(Packet::from_bytes(b"not a frame").is_err());
    }

    #[test]
    fn endpoint_value_roundtrip() {
        let e = ep(9, 65537);
        assert_eq!(endpoint_from_value(&endpoint_to_value(e)).unwrap(), e);
    }
}
