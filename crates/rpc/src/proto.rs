//! The RPC wire protocol: requests, replies, one-way notifications and
//! batches.
//!
//! Every datagram is a framed [`Value`] record whose `"t"` field
//! discriminates the envelope kind: `"req"`, `"rep"`, `"msg"` or
//! `"bat"`. A batch coalesces several small envelopes (requests on the
//! way out, replies on the way back) into one datagram so a pipelined
//! channel pays one network traversal for many calls; batches never
//! nest.

use std::cell::RefCell;

use bytes::Bytes;
use simnet::{Endpoint, NodeId, PortId};
use wire::{unframe, unframe_bytes, Encoder, Value, ValueWriter, WireError};

use crate::error::{ErrorCode, RemoteError};

thread_local! {
    /// Per-thread pooled encoder: every `to_bytes` in this module reuses
    /// one scratch buffer instead of allocating a fresh one per message.
    /// (Each simulated process is an OS thread, so there is no
    /// contention and no sharing of buffers across processes.)
    static ENCODER: RefCell<Encoder> = RefCell::new(Encoder::with_capacity(256));
}

/// Runs `f` with this thread's pooled [`Encoder`].
pub fn with_encoder<R>(f: impl FnOnce(&mut Encoder) -> R) -> R {
    ENCODER.with(|e| f(&mut e.borrow_mut()))
}

/// Encodes an endpoint as a wire value.
pub fn endpoint_to_value(ep: Endpoint) -> Value {
    Value::record([
        ("n", Value::U64(ep.node.0.into())),
        ("p", Value::U64(ep.port.0.into())),
    ])
}

/// Writes an endpoint through a [`ValueWriter`] (the no-clone twin of
/// [`endpoint_to_value`]).
fn write_endpoint(w: &mut ValueWriter<'_>, ep: Endpoint) {
    w.begin_record(2);
    w.key("n");
    w.u64(ep.node.0.into());
    w.key("p");
    w.u64(ep.port.0.into());
}

/// Decodes an endpoint from a wire value.
///
/// # Errors
///
/// Returns a [`WireError`] if fields are missing or out of range.
pub fn endpoint_from_value(v: &Value) -> Result<Endpoint, WireError> {
    let node = u32::try_from(v.get_u64("n")?).map_err(|_| WireError::TooLong(u64::MAX))?;
    let port = u32::try_from(v.get_u64("p")?).map_err(|_| WireError::TooLong(u64::MAX))?;
    Ok(Endpoint::new(NodeId(node), PortId(port)))
}

/// An RPC request envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-assigned identifier, monotonic per client endpoint.
    /// Retransmissions reuse the id so the server can suppress duplicates.
    pub call_id: u64,
    /// Where the reply should be sent.
    pub reply_to: Endpoint,
    /// Target object within the server context (services may host many).
    /// Empty string addresses the context's default object.
    pub object: String,
    /// Operation name.
    pub op: String,
    /// Operation arguments.
    pub args: Value,
    /// Causal span this request belongs to (raw [`obs::SpanId`]), or 0
    /// when sent outside any tracked invocation. Retransmissions reuse
    /// the encoded datagram, so they share the span by construction.
    pub span: u64,
}

impl Request {
    /// Encodes this request as a wire value (the unframed form batches
    /// embed).
    pub fn to_value(&self) -> Value {
        let mut fields = vec![
            ("t", Value::str("req")),
            ("id", Value::U64(self.call_id)),
            ("rt", endpoint_to_value(self.reply_to)),
            ("obj", Value::str(self.object.clone())),
            ("op", Value::str(self.op.clone())),
            ("args", self.args.clone()),
        ];
        if self.span != 0 {
            fields.push(("sp", Value::U64(self.span)));
        }
        Value::record(fields)
    }

    /// Writes this request's record through a [`ValueWriter`] without
    /// cloning the object name, op name or args.
    pub(crate) fn write_into(&self, w: &mut ValueWriter<'_>) {
        let count = if self.span != 0 { 7 } else { 6 };
        w.begin_record(count);
        w.key("t");
        w.str("req");
        w.key("id");
        w.u64(self.call_id);
        w.key("rt");
        write_endpoint(w, self.reply_to);
        w.key("obj");
        w.str(&self.object);
        w.key("op");
        w.str(&self.op);
        w.key("args");
        w.value(&self.args);
        if self.span != 0 {
            w.key("sp");
            w.u64(self.span);
        }
    }

    /// Encodes this request into a framed datagram payload (pooled,
    /// borrow-based: no intermediate `Value` tree).
    pub fn to_bytes(&self) -> Bytes {
        let _p = obs::scope("rpc;encode");
        with_encoder(|e| e.frame_with(|w| self.write_into(w)))
    }

    fn from_value(v: &Value) -> Result<Request, WireError> {
        Ok(Request {
            call_id: v.get_u64("id")?,
            reply_to: endpoint_from_value(v.get("rt").ok_or(WireError::MissingField("rt"))?)?,
            object: v.get_str("obj")?.to_owned(),
            op: v.get_str("op")?.to_owned(),
            args: v.get("args").cloned().unwrap_or(Value::Null),
            span: v.get_u64("sp").unwrap_or(0),
        })
    }
}

/// An RPC reply envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// Echoes the request's `call_id`.
    pub call_id: u64,
    /// Success value or remote failure.
    pub result: Result<Value, RemoteError>,
    /// Echoes the request's causal span (0 for untracked traffic), so a
    /// client can correlate the reply with the invocation that caused it.
    pub span: u64,
}

impl Reply {
    /// Encodes this reply as a wire value (the unframed form batches
    /// embed).
    pub fn to_value(&self) -> Value {
        let mut fields = match &self.result {
            Ok(v) => vec![
                ("t", Value::str("rep")),
                ("id", Value::U64(self.call_id)),
                ("ok", v.clone()),
            ],
            Err(e) => vec![
                ("t", Value::str("rep")),
                ("id", Value::U64(self.call_id)),
                ("err", Value::str(e.code.as_str())),
                ("msg", Value::str(e.message.clone())),
                ("data", e.data.clone()),
            ],
        };
        if self.span != 0 {
            fields.push(("sp", Value::U64(self.span)));
        }
        Value::record(fields)
    }

    /// Writes this reply's record through a [`ValueWriter`] without
    /// cloning the result payload or error strings.
    fn write_into(&self, w: &mut ValueWriter<'_>) {
        let span_extra = usize::from(self.span != 0);
        match &self.result {
            Ok(v) => {
                w.begin_record(3 + span_extra);
                w.key("t");
                w.str("rep");
                w.key("id");
                w.u64(self.call_id);
                w.key("ok");
                w.value(v);
            }
            Err(e) => {
                w.begin_record(5 + span_extra);
                w.key("t");
                w.str("rep");
                w.key("id");
                w.u64(self.call_id);
                w.key("err");
                w.str(e.code.as_str());
                w.key("msg");
                w.str(&e.message);
                w.key("data");
                w.value(&e.data);
            }
        }
        if self.span != 0 {
            w.key("sp");
            w.u64(self.span);
        }
    }

    /// Encodes this reply into a framed datagram payload (pooled,
    /// borrow-based: no intermediate `Value` tree).
    pub fn to_bytes(&self) -> Bytes {
        let _p = obs::scope("rpc;encode");
        with_encoder(|e| e.frame_with(|w| self.write_into(w)))
    }

    fn from_value(v: &Value) -> Result<Reply, WireError> {
        let call_id = v.get_u64("id")?;
        let result = if let Some(ok) = v.get("ok") {
            Ok(ok.clone())
        } else {
            Err(RemoteError {
                code: ErrorCode::from_str_loose(v.get_str("err")?),
                message: v.get_str("msg")?.to_owned(),
                data: v.get("data").cloned().unwrap_or(Value::Null),
            })
        };
        Ok(Reply {
            call_id,
            result,
            span: v.get_u64("sp").unwrap_or(0),
        })
    }
}

/// A one-way notification (no reply expected): cache invalidations,
/// callbacks, replication traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct Oneway {
    /// Sender endpoint (for follow-up contact).
    pub from: Endpoint,
    /// Notification kind.
    pub op: String,
    /// Notification body.
    pub args: Value,
    /// Causal span of the work that triggered this notification (e.g.
    /// the dispatch whose write broadcast an invalidation), or 0.
    pub span: u64,
}

impl Oneway {
    /// Encodes this notification as a wire value (the unframed form
    /// batches embed).
    pub fn to_value(&self) -> Value {
        let mut fields = vec![
            ("t", Value::str("msg")),
            ("from", endpoint_to_value(self.from)),
            ("op", Value::str(self.op.clone())),
            ("args", self.args.clone()),
        ];
        if self.span != 0 {
            fields.push(("sp", Value::U64(self.span)));
        }
        Value::record(fields)
    }

    /// Writes this notification's record through a [`ValueWriter`]
    /// without cloning the op name or args.
    fn write_into(&self, w: &mut ValueWriter<'_>) {
        let count = if self.span != 0 { 5 } else { 4 };
        w.begin_record(count);
        w.key("t");
        w.str("msg");
        w.key("from");
        write_endpoint(w, self.from);
        w.key("op");
        w.str(&self.op);
        w.key("args");
        w.value(&self.args);
        if self.span != 0 {
            w.key("sp");
            w.u64(self.span);
        }
    }

    /// Encodes this notification into a framed datagram payload (pooled,
    /// borrow-based: no intermediate `Value` tree).
    pub fn to_bytes(&self) -> Bytes {
        let _p = obs::scope("rpc;encode");
        with_encoder(|e| e.frame_with(|w| self.write_into(w)))
    }

    fn from_value(v: &Value) -> Result<Oneway, WireError> {
        Ok(Oneway {
            from: endpoint_from_value(v.get("from").ok_or(WireError::MissingField("from"))?)?,
            op: v.get_str("op")?.to_owned(),
            args: v.get("args").cloned().unwrap_or(Value::Null),
            span: v.get_u64("sp").unwrap_or(0),
        })
    }
}

/// A batch of coalesced envelopes sent as one datagram.
///
/// A pipelined channel stages several small requests to the same server
/// and ships them in one frame; the server answers with a batch of
/// replies to the same client. Items are flat — a batch inside a batch
/// is a wire error — and one-way notifications never batch (they are
/// fire-and-forget and latency-insensitive).
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// The coalesced envelopes, in send order.
    pub items: Vec<Packet>,
}

impl Batch {
    /// Encodes this batch into a framed datagram payload. Each item is
    /// written straight into the shared scratch buffer — one frame, one
    /// checksum, no per-item intermediate trees or clones.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if an item is itself a batch.
    pub fn to_bytes(&self) -> Bytes {
        let _p = obs::scope("rpc;encode");
        with_encoder(|e| {
            e.frame_with(|w| {
                w.begin_record(2);
                w.key("t");
                w.str("bat");
                w.key("items");
                w.begin_list(self.items.len());
                for p in &self.items {
                    match p {
                        Packet::Request(r) => r.write_into(w),
                        Packet::Reply(r) => r.write_into(w),
                        Packet::Oneway(o) => o.write_into(w),
                        Packet::Batch(_) => {
                            debug_assert!(false, "batches do not nest");
                            w.null();
                        }
                    }
                }
            })
        })
    }

    fn from_value(v: &Value) -> Result<Batch, WireError> {
        let mut items = Vec::new();
        for item in v.get_list("items")? {
            match item.get_str("t")? {
                "req" => items.push(Packet::Request(Request::from_value(item)?)),
                "rep" => items.push(Packet::Reply(Reply::from_value(item)?)),
                "msg" => items.push(Packet::Oneway(Oneway::from_value(item)?)),
                _ => {
                    return Err(WireError::WrongKind {
                        expected: "req|rep|msg",
                        actual: "nested or unknown batch item",
                    })
                }
            }
        }
        Ok(Batch { items })
    }
}

/// Encodes a batch of *borrowed* requests into one framed datagram —
/// the zero-clone path a pipelined channel uses to coalesce its staged
/// calls (building a [`Batch`] would clone every request first).
/// Byte-identical to `Batch { items }.to_bytes()` over the same
/// requests.
pub(crate) fn encode_request_batch<'a>(
    requests: impl ExactSizeIterator<Item = &'a Request>,
) -> Bytes {
    let _p = obs::scope("rpc;encode");
    with_encoder(|e| {
        e.frame_with(|w| {
            w.begin_record(2);
            w.key("t");
            w.str("bat");
            w.key("items");
            w.begin_list(requests.len());
            for r in requests {
                r.write_into(w);
            }
        })
    })
}

/// Any decoded RPC datagram.
#[derive(Debug, Clone, PartialEq)]
pub enum Packet {
    /// A request expecting a reply.
    Request(Request),
    /// A reply to an earlier request.
    Reply(Reply),
    /// A one-way notification.
    Oneway(Oneway),
    /// A batch of coalesced requests or replies.
    Batch(Batch),
}

impl Packet {
    /// Decodes a framed datagram payload.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] for malformed frames or unknown envelope
    /// kinds.
    pub fn from_bytes(bytes: &[u8]) -> Result<Packet, WireError> {
        let _p = obs::scope("rpc;decode");
        Packet::from_unframed(unframe(bytes)?)
    }

    /// Decodes a framed datagram payload zero-copy: blob arguments and
    /// reply payloads inside the resulting packet alias the datagram's
    /// refcounted buffer instead of being copied out of it. Preferred
    /// over [`Packet::from_bytes`] whenever the payload is an owned
    /// [`Bytes`] (as simulated datagrams are).
    ///
    /// # Errors
    ///
    /// As for [`Packet::from_bytes`].
    pub fn from_frame(bytes: &Bytes) -> Result<Packet, WireError> {
        let _p = obs::scope("rpc;decode");
        Packet::from_unframed(unframe_bytes(bytes)?)
    }

    fn from_unframed(v: Value) -> Result<Packet, WireError> {
        match v.get_str("t")? {
            "req" => Ok(Packet::Request(Request::from_value(&v)?)),
            "rep" => Ok(Packet::Reply(Reply::from_value(&v)?)),
            "msg" => Ok(Packet::Oneway(Oneway::from_value(&v)?)),
            "bat" => Ok(Packet::Batch(Batch::from_value(&v)?)),
            _ => Err(WireError::WrongKind {
                expected: "req|rep|msg|bat",
                actual: "unknown envelope",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire::frame;

    fn ep(n: u32, p: u32) -> Endpoint {
        Endpoint::new(NodeId(n), PortId(p))
    }

    #[test]
    fn request_roundtrip() {
        let req = Request {
            call_id: 42,
            reply_to: ep(1, 70000),
            object: "kv0".into(),
            op: "get".into(),
            args: Value::record([("key", Value::str("color"))]),
            span: 9,
        };
        match Packet::from_bytes(&req.to_bytes()).unwrap() {
            Packet::Request(r) => assert_eq!(r, req),
            other => panic!("wrong packet {other:?}"),
        }
    }

    #[test]
    fn reply_ok_roundtrip() {
        let rep = Reply {
            call_id: 7,
            result: Ok(Value::str("blue")),
            span: 9,
        };
        match Packet::from_bytes(&rep.to_bytes()).unwrap() {
            Packet::Reply(r) => assert_eq!(r, rep),
            other => panic!("wrong packet {other:?}"),
        }
    }

    #[test]
    fn reply_err_roundtrip_with_data() {
        let rep = Reply {
            call_id: 8,
            result: Err(RemoteError::with_data(
                ErrorCode::Moved,
                "object moved",
                endpoint_to_value(ep(3, 12)),
            )),
            span: 0,
        };
        match Packet::from_bytes(&rep.to_bytes()).unwrap() {
            Packet::Reply(r) => {
                let e = r.result.unwrap_err();
                assert_eq!(e.code, ErrorCode::Moved);
                assert_eq!(endpoint_from_value(&e.data).unwrap(), ep(3, 12));
            }
            other => panic!("wrong packet {other:?}"),
        }
    }

    #[test]
    fn oneway_roundtrip() {
        let m = Oneway {
            from: ep(2, 5),
            op: "invalidate".into(),
            args: Value::str("key1"),
            span: 3,
        };
        match Packet::from_bytes(&m.to_bytes()).unwrap() {
            Packet::Oneway(o) => assert_eq!(o, m),
            other => panic!("wrong packet {other:?}"),
        }
    }

    #[test]
    fn span_is_optional_on_the_wire() {
        // A spanless packet encodes no "sp" field at all and decodes
        // back to span 0, so pre-span peers interoperate unchanged.
        let req = Request {
            call_id: 1,
            reply_to: ep(1, 2),
            object: String::new(),
            op: "get".into(),
            args: Value::Null,
            span: 0,
        };
        let v = wire::unframe(&req.to_bytes()).unwrap();
        assert!(v.get("sp").is_none());
        match Packet::from_bytes(&req.to_bytes()).unwrap() {
            Packet::Request(r) => assert_eq!(r.span, 0),
            other => panic!("wrong packet {other:?}"),
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(Packet::from_bytes(b"not a frame").is_err());
    }

    #[test]
    fn batch_roundtrip_preserves_order_and_spans() {
        let batch = Batch {
            items: (1..=4u64)
                .map(|i| {
                    Packet::Request(Request {
                        call_id: i,
                        reply_to: ep(1, 70000),
                        object: String::new(),
                        op: "inc".into(),
                        args: Value::U64(i * 10),
                        span: 100 + i,
                    })
                })
                .collect(),
        };
        match Packet::from_bytes(&batch.to_bytes()).unwrap() {
            Packet::Batch(b) => assert_eq!(b, batch),
            other => panic!("wrong packet {other:?}"),
        }
    }

    #[test]
    fn batch_of_replies_roundtrips() {
        let batch = Batch {
            items: vec![
                Packet::Reply(Reply {
                    call_id: 1,
                    result: Ok(Value::str("a")),
                    span: 7,
                }),
                Packet::Reply(Reply {
                    call_id: 2,
                    result: Err(RemoteError::new(ErrorCode::App, "nope")),
                    span: 8,
                }),
            ],
        };
        match Packet::from_bytes(&batch.to_bytes()).unwrap() {
            Packet::Batch(b) => assert_eq!(b.items.len(), 2),
            other => panic!("wrong packet {other:?}"),
        }
    }

    #[test]
    fn nested_batches_rejected() {
        // Hand-build a batch whose item claims to be a batch.
        let inner = Value::record([("t", Value::str("bat")), ("items", Value::List(vec![]))]);
        let outer = frame(&Value::record([
            ("t", Value::str("bat")),
            ("items", Value::List(vec![inner])),
        ]));
        assert!(Packet::from_bytes(&outer).is_err());
    }

    #[test]
    fn empty_batch_roundtrips() {
        let batch = Batch { items: vec![] };
        match Packet::from_bytes(&batch.to_bytes()).unwrap() {
            Packet::Batch(b) => assert!(b.items.is_empty()),
            other => panic!("wrong packet {other:?}"),
        }
    }

    #[test]
    fn endpoint_value_roundtrip() {
        let e = ep(9, 65537);
        assert_eq!(endpoint_from_value(&endpoint_to_value(e)).unwrap(), e);
    }

    #[test]
    fn writer_encoding_is_byte_identical_to_tree_encoding() {
        // The borrow-based write_into paths must emit exactly the bytes
        // frame(&to_value()) used to: retransmission dedup and checksums
        // rely on stable encodings.
        let req = Request {
            call_id: 42,
            reply_to: ep(1, 70000),
            object: "kv0".into(),
            op: "get".into(),
            args: Value::record([("key", Value::str("color"))]),
            span: 9,
        };
        assert_eq!(req.to_bytes(), frame(&req.to_value()));
        let spanless = Request {
            span: 0,
            ..req.clone()
        };
        assert_eq!(spanless.to_bytes(), frame(&spanless.to_value()));

        let ok = Reply {
            call_id: 7,
            result: Ok(Value::str("blue")),
            span: 9,
        };
        assert_eq!(ok.to_bytes(), frame(&ok.to_value()));
        let err = Reply {
            call_id: 8,
            result: Err(RemoteError::with_data(
                ErrorCode::Moved,
                "object moved",
                endpoint_to_value(ep(3, 12)),
            )),
            span: 0,
        };
        assert_eq!(err.to_bytes(), frame(&err.to_value()));

        let msg = Oneway {
            from: ep(2, 5),
            op: "invalidate".into(),
            args: Value::str("key1"),
            span: 3,
        };
        assert_eq!(msg.to_bytes(), frame(&msg.to_value()));

        let batch = Batch {
            items: vec![Packet::Request(req.clone()), Packet::Reply(ok.clone())],
        };
        let tree = frame(&Value::record([
            ("t", Value::str("bat")),
            ("items", Value::List(vec![req.to_value(), ok.to_value()])),
        ]));
        assert_eq!(batch.to_bytes(), tree);
    }

    #[test]
    fn from_frame_matches_from_bytes() {
        let req = Request {
            call_id: 5,
            reply_to: ep(4, 2),
            object: String::new(),
            op: "put".into(),
            args: Value::record([("blob", Value::blob(vec![7u8; 256]))]),
            span: 0,
        };
        let bytes = req.to_bytes();
        let a = Packet::from_bytes(&bytes).unwrap();
        let b = Packet::from_frame(&bytes).unwrap();
        assert_eq!(a, b);
        // And the zero-copy path aliases the datagram.
        if let Packet::Request(r) = b {
            let blob = r.args.get_blob("blob").unwrap().clone();
            let f_ptr = bytes.as_ref().as_ptr() as usize;
            let b_ptr = blob.as_ref().as_ptr() as usize;
            assert!(b_ptr >= f_ptr && b_ptr + blob.len() <= f_ptr + bytes.len());
        } else {
            panic!("wrong packet kind");
        }
    }
}
