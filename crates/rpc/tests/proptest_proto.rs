//! Property-based tests of the RPC protocol encoding.

use proptest::prelude::*;
use rpc::{endpoint_to_value, ErrorCode, Oneway, Packet, RemoteError, Reply, Request};
use simnet::{Endpoint, NodeId, PortId};
use wire::Value;

fn arb_endpoint() -> impl Strategy<Value = Endpoint> {
    (any::<u32>(), any::<u32>()).prop_map(|(n, p)| Endpoint::new(NodeId(n), PortId(p)))
}

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<u64>().prop_map(Value::U64),
        any::<i64>().prop_map(Value::I64),
        "[a-zA-Z0-9 _./-]{0,16}".prop_map(Value::str),
        proptest::collection::vec(any::<u8>(), 0..32).prop_map(Value::blob),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::List),
            proptest::collection::vec(("[a-z]{1,6}", inner), 0..4)
                .prop_map(|fields: Vec<(String, Value)>| Value::record(fields)),
        ]
    })
}

fn arb_code() -> impl Strategy<Value = ErrorCode> {
    prop_oneof![
        Just(ErrorCode::NoSuchOp),
        Just(ErrorCode::NoSuchObject),
        Just(ErrorCode::BadArgs),
        Just(ErrorCode::Moved),
        Just(ErrorCode::Unavailable),
        Just(ErrorCode::NotPrimary),
        Just(ErrorCode::App),
    ]
}

proptest! {
    #[test]
    fn request_roundtrips(
        call_id in any::<u64>(),
        reply_to in arb_endpoint(),
        object in "[a-z0-9]{0,8}",
        op in "[a-z_]{1,12}",
        args in arb_value(),
    ) {
        let req = Request { call_id, reply_to, object, op, args, span: 0 };
        match Packet::from_bytes(&req.to_bytes()).unwrap() {
            Packet::Request(r) => prop_assert_eq!(r, req),
            other => prop_assert!(false, "wrong packet {:?}", other),
        }
    }

    #[test]
    fn reply_ok_roundtrips(call_id in any::<u64>(), v in arb_value()) {
        let rep = Reply { call_id, result: Ok(v), span: 0 };
        match Packet::from_bytes(&rep.to_bytes()).unwrap() {
            Packet::Reply(r) => prop_assert_eq!(r, rep),
            other => prop_assert!(false, "wrong packet {:?}", other),
        }
    }

    #[test]
    fn reply_err_roundtrips(
        call_id in any::<u64>(),
        code in arb_code(),
        msg in ".{0,40}",
        data in arb_value(),
    ) {
        let rep = Reply {
            call_id,
            result: Err(RemoteError { code, message: msg, data }),
            span: 0,
        };
        match Packet::from_bytes(&rep.to_bytes()).unwrap() {
            Packet::Reply(r) => prop_assert_eq!(r, rep),
            other => prop_assert!(false, "wrong packet {:?}", other),
        }
    }

    #[test]
    fn oneway_roundtrips(from in arb_endpoint(), op in "[a-z_]{1,12}", args in arb_value()) {
        let m = Oneway { from, op, args, span: 0 };
        match Packet::from_bytes(&m.to_bytes()).unwrap() {
            Packet::Oneway(o) => prop_assert_eq!(o, m),
            other => prop_assert!(false, "wrong packet {:?}", other),
        }
    }

    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = Packet::from_bytes(&bytes); // must return, never panic
    }

    #[test]
    fn envelope_kinds_never_confused(
        call_id in any::<u64>(),
        reply_to in arb_endpoint(),
        op in "[a-z]{1,8}",
        args in arb_value(),
    ) {
        // A request and a reply with identical ids/payloads must decode
        // to their own kinds (the "t" discriminator does its job).
        let req = Request { call_id, reply_to, object: String::new(), op: op.clone(), args: args.clone(), span: 0 };
        let rep = Reply { call_id, result: Ok(args.clone()), span: 0 };
        let one = Oneway { from: reply_to, op, args, span: 0 };
        prop_assert!(matches!(Packet::from_bytes(&req.to_bytes()).unwrap(), Packet::Request(_)));
        prop_assert!(matches!(Packet::from_bytes(&rep.to_bytes()).unwrap(), Packet::Reply(_)));
        prop_assert!(matches!(Packet::from_bytes(&one.to_bytes()).unwrap(), Packet::Oneway(_)));
    }

    #[test]
    fn endpoint_encoding_roundtrips(ep in arb_endpoint()) {
        let v = endpoint_to_value(ep);
        prop_assert_eq!(rpc::endpoint_from_value(&v).unwrap(), ep);
    }
}
