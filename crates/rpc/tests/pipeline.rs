//! End-to-end tests of the pipelined [`Channel`]: multiple outstanding
//! calls, out-of-order completion, batching, and — the property that
//! must survive all of it — at-most-once execution under loss and
//! duplication.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rpc::{Channel, ChannelConfig, ErrorCode, RemoteError, RetryPolicy, RpcClient, RpcError};
use simnet::{NetworkConfig, NodeId, PortId, Simulation};
use wire::Value;

/// Spawns a counter server whose `inc` op is deliberately
/// non-idempotent; `echo` returns its argument. Returns the shared
/// execution counter.
fn spawn_counter(
    sim: &Simulation,
    node: NodeId,
    port: PortId,
) -> (simnet::Endpoint, Arc<AtomicU64>) {
    let execs = Arc::new(AtomicU64::new(0));
    let e = Arc::clone(&execs);
    let ep = sim.spawn_at("counter", node, port, move |ctx| {
        let mut srv = rpc::RpcServer::new();
        srv.serve(
            ctx,
            |_ctx, req| match req.op.as_str() {
                "inc" => Ok(Value::U64(e.fetch_add(1, Ordering::SeqCst) + 1)),
                "echo" => Ok(req.args.clone()),
                other => Err(RemoteError::new(ErrorCode::NoSuchOp, other.to_owned())),
            },
            |_, _| {},
        );
    });
    (ep, execs)
}

#[test]
fn pipelined_calls_all_succeed() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 1);
    let (server, _) = spawn_counter(&sim, NodeId(0), PortId(1));
    let done = Arc::new(AtomicU64::new(0));
    let d2 = Arc::clone(&done);
    sim.spawn("client", NodeId(1), move |ctx| {
        let mut ch = Channel::new("counter", server, ChannelConfig::with_depth(8));
        let handles: Vec<_> = (0..64u64)
            .map(|i| ch.begin_call(ctx, "echo", Value::U64(i)))
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let v = ch.wait(ctx, h).unwrap();
            assert_eq!(v, Value::U64(i as u64), "reply matched to wrong call");
        }
        assert_eq!(ch.stats.completed, 64);
        assert_eq!(ch.stats.timeouts, 0);
        d2.store(1, Ordering::SeqCst);
    });
    sim.run();
    assert_eq!(done.load(Ordering::SeqCst), 1);
}

#[test]
fn results_claimable_in_any_order() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 2);
    let (server, _) = spawn_counter(&sim, NodeId(0), PortId(1));
    sim.spawn("client", NodeId(1), move |ctx| {
        let mut ch = Channel::new("counter", server, ChannelConfig::with_depth(4));
        let handles: Vec<_> = (0..4u64)
            .map(|i| ch.begin_call(ctx, "echo", Value::U64(i)))
            .collect();
        ch.wait_all(ctx).unwrap();
        // Claim in reverse: results must stay addressable by handle.
        for (i, h) in handles.into_iter().enumerate().rev() {
            assert_eq!(ch.wait(ctx, h).unwrap(), Value::U64(i as u64));
        }
    });
    sim.run();
}

#[test]
fn pipelining_overlaps_round_trips() {
    // 64 calls at depth 8 must finish in far less wall-clock (simulated)
    // time than 64 synchronous round trips on the same network.
    fn run_depth(depth: usize) -> Duration {
        let mut sim = Simulation::new(NetworkConfig::lan(), 3);
        let (server, _) = spawn_counter(&sim, NodeId(0), PortId(1));
        let elapsed = Arc::new(Mutex::new(Duration::ZERO));
        let e2 = Arc::clone(&elapsed);
        sim.spawn("client", NodeId(1), move |ctx| {
            let t0 = ctx.now();
            let mut ch = Channel::new("counter", server, ChannelConfig::with_depth(depth));
            let handles: Vec<_> = (0..64u64)
                .map(|i| ch.begin_call(ctx, "echo", Value::U64(i)))
                .collect();
            for h in handles {
                ch.wait(ctx, h).unwrap();
            }
            *e2.lock().unwrap() = ctx.now() - t0;
        });
        sim.run();
        let d = *elapsed.lock().unwrap();
        d
    }
    let serial = run_depth(1);
    let deep = run_depth(8);
    assert!(
        deep < serial / 4,
        "depth 8 should be >=4x faster than depth 1: {deep:?} vs {serial:?}"
    );
}

#[test]
fn pipelining_under_loss_and_duplication_never_over_executes() {
    // The at-most-once property must survive out-of-order completion:
    // with 30% loss and 30% duplication, retransmitted ids complete in
    // arbitrary order and the server's window must still suppress every
    // duplicate of an executed call.
    let cfg = NetworkConfig::lan().with_loss(0.30).with_duplicate(0.30);
    let mut sim = Simulation::new(cfg, 7);
    let (server, execs) = spawn_counter(&sim, NodeId(0), PortId(1));
    let out = Arc::new(Mutex::new((0u64, 0u64, 0u64)));
    let o2 = Arc::clone(&out);
    sim.spawn("client", NodeId(1), move |ctx| {
        let cfg = ChannelConfig::with_depth(8)
            .with_policy(RetryPolicy::exponential(Duration::from_millis(4), 10));
        let mut ch = Channel::new("counter", server, cfg);
        let handles: Vec<_> = (0..200u64)
            .map(|_| ch.begin_call(ctx, "inc", Value::Null))
            .collect();
        let mut ok = 0u64;
        for h in handles {
            match ch.wait(ctx, h) {
                Ok(_) => ok += 1,
                Err(RpcError::Timeout { .. }) => {}
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        *o2.lock().unwrap() = (ok, ch.stats.timeouts, ch.stats.retries);
    });
    sim.run();
    let (ok, timeouts, retries) = *out.lock().unwrap();
    let e = execs.load(Ordering::SeqCst);
    assert!(retries > 0, "30% loss must cause retransmissions");
    assert!(e >= ok, "every success executed: {e} execs, {ok} ok");
    assert!(
        e <= ok + timeouts,
        "over-execution: {e} execs for {ok} ok + {timeouts} timeouts"
    );
}

#[test]
fn batching_reduces_datagrams() {
    fn msgs_for(max_batch: usize) -> (u64, u64) {
        let mut sim = Simulation::new(NetworkConfig::lan(), 5);
        let (server, _) = spawn_counter(&sim, NodeId(0), PortId(1));
        let batches = Arc::new(AtomicU64::new(0));
        let b2 = Arc::clone(&batches);
        sim.spawn("client", NodeId(1), move |ctx| {
            let mut ch = Channel::new(
                "counter",
                server,
                ChannelConfig::with_depth(64).batched(max_batch),
            );
            let handles: Vec<_> = (0..64u64)
                .map(|i| ch.begin_call(ctx, "echo", Value::U64(i)))
                .collect();
            for (i, h) in handles.into_iter().enumerate() {
                assert_eq!(ch.wait(ctx, h).unwrap(), Value::U64(i as u64));
            }
            b2.store(ch.stats.batches_sent, Ordering::SeqCst);
        });
        let report = sim.run();
        (report.metrics.msgs_sent, batches.load(Ordering::SeqCst))
    }
    let (unbatched, b0) = msgs_for(1);
    let (batched, b8) = msgs_for(8);
    assert_eq!(b0, 0, "max_batch=1 must not batch");
    assert!(b8 > 0, "max_batch=8 must batch");
    assert!(
        batched * 2 <= unbatched,
        "batch 8 must at least halve messages/op: {batched} vs {unbatched}"
    );
}

#[test]
fn batched_calls_execute_exactly_once() {
    // Batched requests go through the same dedup window: the counter
    // must advance exactly once per call even when requests share
    // datagrams (and 30% duplication re-delivers whole batches).
    let mut sim = Simulation::new(NetworkConfig::lan().with_duplicate(0.30), 11);
    let (server, execs) = spawn_counter(&sim, NodeId(0), PortId(1));
    sim.spawn("client", NodeId(1), move |ctx| {
        let mut ch = Channel::new("counter", server, ChannelConfig::with_depth(16).batched(4));
        let handles: Vec<_> = (0..80u64)
            .map(|_| ch.begin_call(ctx, "inc", Value::Null))
            .collect();
        let mut results: Vec<u64> = handles
            .into_iter()
            .map(|h| match ch.wait(ctx, h).unwrap() {
                Value::U64(n) => n,
                other => panic!("bad reply {other:?}"),
            })
            .collect();
        // Each call saw a distinct counter value: no double-execution
        // leaked into any reply.
        results.sort_unstable();
        results.dedup();
        assert_eq!(results.len(), 80, "duplicate counter values in replies");
    });
    sim.run();
    assert_eq!(execs.load(Ordering::SeqCst), 80);
}

#[test]
fn channel_and_sync_client_share_id_space_safely() {
    // A process may hold both a Channel and a plain RpcClient against
    // the same server; call ids come from one per-process counter so the
    // server window never confuses them.
    let mut sim = Simulation::new(NetworkConfig::lan(), 13);
    let (server, execs) = spawn_counter(&sim, NodeId(0), PortId(1));
    sim.spawn("client", NodeId(1), move |ctx| {
        let mut ch = Channel::new("counter", server, ChannelConfig::with_depth(4));
        let mut sync = RpcClient::new(server);
        for round in 0..10u64 {
            let h = ch.begin_call(ctx, "inc", Value::Null);
            let _ = sync.call(ctx, "inc", Value::Null).unwrap();
            ch.wait(ctx, h).unwrap();
            let _ = round;
        }
    });
    sim.run();
    assert_eq!(execs.load(Ordering::SeqCst), 20);
}

#[test]
fn remote_errors_settle_per_call() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 17);
    let (server, _) = spawn_counter(&sim, NodeId(0), PortId(1));
    sim.spawn("client", NodeId(1), move |ctx| {
        let mut ch = Channel::new("counter", server, ChannelConfig::with_depth(4).batched(2));
        let good = ch.begin_call(ctx, "echo", Value::U64(1));
        let bad = ch.begin_call(ctx, "frobnicate", Value::Null);
        assert_eq!(ch.wait(ctx, good).unwrap(), Value::U64(1));
        match ch.wait(ctx, bad) {
            Err(RpcError::Remote(e)) => assert_eq!(e.code, ErrorCode::NoSuchOp),
            other => panic!("expected remote error, got {other:?}"),
        }
    });
    sim.run();
}
