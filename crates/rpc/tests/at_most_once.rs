//! End-to-end protocol tests: at-most-once execution under loss,
//! duplication and reordering (the property experiment E7 measures).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rpc::{ErrorCode, RemoteError, RetryPolicy, RpcClient, RpcError, RpcServer};
use simnet::{NetworkConfig, NodeId, PortId, Simulation};
use wire::Value;

/// Spawns a counter server whose `inc` op is deliberately non-idempotent;
/// returns the shared execution counter.
fn spawn_counter(
    sim: &Simulation,
    node: NodeId,
    port: PortId,
) -> (simnet::Endpoint, Arc<AtomicU64>) {
    let execs = Arc::new(AtomicU64::new(0));
    let e = Arc::clone(&execs);
    let ep = sim.spawn_at("counter", node, port, move |ctx| {
        let mut srv = RpcServer::new();
        srv.serve(
            ctx,
            |_ctx, req| match req.op.as_str() {
                "inc" => {
                    let v = e.fetch_add(1, Ordering::SeqCst) + 1;
                    Ok(Value::U64(v))
                }
                "get" => Ok(Value::U64(e.load(Ordering::SeqCst))),
                _ => Err(RemoteError::new(ErrorCode::NoSuchOp, req.op.clone())),
            },
            |_, _| {},
        );
    });
    (ep, execs)
}

#[test]
fn calls_execute_exactly_once_on_clean_network() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 1);
    let (server, execs) = spawn_counter(&sim, NodeId(0), PortId(1));
    let ok = Arc::new(AtomicU64::new(0));
    let ok2 = Arc::clone(&ok);
    sim.spawn("client", NodeId(1), move |ctx| {
        let mut c = RpcClient::new(server);
        for i in 1..=50u64 {
            let v = c.call(ctx, "inc", Value::Null).unwrap();
            assert_eq!(v, Value::U64(i));
        }
        assert_eq!(c.stats.retries, 0);
        ok2.store(1, Ordering::SeqCst);
    });
    sim.run();
    assert_eq!(ok.load(Ordering::SeqCst), 1);
    assert_eq!(execs.load(Ordering::SeqCst), 50);
}

#[test]
fn lossy_network_retries_but_never_double_executes() {
    // 20% loss: retransmissions happen, yet the non-idempotent counter
    // must advance exactly once per successful call.
    let mut sim = Simulation::new(NetworkConfig::lan().with_loss(0.20), 7);
    let (server, execs) = spawn_counter(&sim, NodeId(0), PortId(1));
    let successes = Arc::new(AtomicU64::new(0));
    let retries = Arc::new(AtomicU64::new(0));
    let (s2, r2) = (Arc::clone(&successes), Arc::clone(&retries));
    sim.spawn("client", NodeId(1), move |ctx| {
        let mut c = RpcClient::with_policy(
            server,
            RetryPolicy::exponential(Duration::from_millis(5), 8),
        );
        for _ in 0..100 {
            match c.call(ctx, "inc", Value::Null) {
                Ok(_) => {
                    s2.fetch_add(1, Ordering::SeqCst);
                }
                Err(RpcError::Timeout { .. }) => {}
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        r2.store(c.stats.retries, Ordering::SeqCst);
    });
    sim.run();
    let s = successes.load(Ordering::SeqCst);
    let e = execs.load(Ordering::SeqCst);
    assert!(
        retries.load(Ordering::SeqCst) > 0,
        "20% loss must cause retries"
    );
    // Every success executed at least once; duplicates never re-executed.
    // Executions can exceed successes only for calls whose replies were
    // all lost (client timed out after server executed) — never for
    // retransmissions of an acknowledged call.
    assert!(e >= s, "executions {e} < successes {s}");
    let timeouts = 100 - s;
    assert!(
        e <= s + timeouts,
        "over-execution: {e} executions for {s} successes + {timeouts} timeouts"
    );
}

#[test]
fn duplicating_network_never_double_executes() {
    // 50% duplication: the server sees many duplicate datagrams but must
    // suppress every one of them.
    let mut sim = Simulation::new(NetworkConfig::lan().with_duplicate(0.5), 11);
    let (server, execs) = spawn_counter(&sim, NodeId(0), PortId(1));
    sim.spawn("client", NodeId(1), move |ctx| {
        let mut c = RpcClient::new(server);
        for i in 1..=100u64 {
            let v = c.call(ctx, "inc", Value::Null).unwrap();
            assert_eq!(v, Value::U64(i), "duplicate executed!");
        }
    });
    sim.run();
    assert_eq!(execs.load(Ordering::SeqCst), 100);
}

#[test]
fn reordering_network_preserves_exactly_once() {
    let cfg = NetworkConfig::lan()
        .with_duplicate(0.3)
        .with_reorder_window(Duration::from_millis(2));
    let mut sim = Simulation::new(cfg, 13);
    let (server, execs) = spawn_counter(&sim, NodeId(0), PortId(1));
    sim.spawn("client", NodeId(1), move |ctx| {
        let mut c = RpcClient::with_policy(server, RetryPolicy::fixed(Duration::from_millis(8), 6));
        for i in 1..=60u64 {
            let v = c.call(ctx, "inc", Value::Null).unwrap();
            assert_eq!(v, Value::U64(i));
        }
    });
    sim.run();
    assert_eq!(execs.load(Ordering::SeqCst), 60);
}

#[test]
fn total_partition_times_out() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 3);
    let (server, execs) = spawn_counter(&sim, NodeId(0), PortId(1));
    let outcome = Arc::new(AtomicU64::new(0));
    let o2 = Arc::clone(&outcome);
    sim.spawn("client", NodeId(1), move |ctx| {
        ctx.net().partition(NodeId(0), NodeId(1));
        let mut c = RpcClient::with_policy(server, RetryPolicy::fixed(Duration::from_millis(2), 3));
        match c.call(ctx, "inc", Value::Null) {
            Err(RpcError::Timeout { attempts: 3 }) => o2.store(1, Ordering::SeqCst),
            other => panic!("expected timeout, got {other:?}"),
        }
    });
    sim.run();
    assert_eq!(outcome.load(Ordering::SeqCst), 1);
    assert_eq!(execs.load(Ordering::SeqCst), 0);
}

#[test]
fn remote_errors_propagate() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 5);
    let (server, _execs) = spawn_counter(&sim, NodeId(0), PortId(1));
    sim.spawn("client", NodeId(1), move |ctx| {
        let mut c = RpcClient::new(server);
        match c.call(ctx, "frobnicate", Value::Null) {
            Err(RpcError::Remote(e)) => {
                assert_eq!(e.code, ErrorCode::NoSuchOp);
                assert_eq!(e.message, "frobnicate");
            }
            other => panic!("expected remote error, got {other:?}"),
        }
    });
    sim.run();
}

#[test]
fn two_clients_do_not_cross_replies() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 9);
    let (server_a, _) = spawn_counter(&sim, NodeId(0), PortId(1));
    let echo = sim.spawn_at("echo", NodeId(0), PortId(2), |ctx| {
        let mut srv = RpcServer::new();
        srv.serve(ctx, |_c, req| Ok(req.args.clone()), |_, _| {});
    });
    sim.spawn("client", NodeId(1), move |ctx| {
        // Two RpcClients in the same process with overlapping call-id
        // spaces; source matching must keep replies straight.
        let mut a = RpcClient::new(server_a);
        let mut b = RpcClient::new(echo);
        for i in 1..=20u64 {
            assert_eq!(a.call(ctx, "inc", Value::Null).unwrap(), Value::U64(i));
            assert_eq!(
                b.call(ctx, "echo", Value::U64(i * 100)).unwrap(),
                Value::U64(i * 100)
            );
        }
    });
    sim.run();
}

#[test]
fn retry_cost_grows_with_loss_rate() {
    // Ablation seed for E7: higher loss must strictly increase the number
    // of messages needed per successful call.
    fn messages_per_call(loss: f64) -> f64 {
        let mut sim = Simulation::new(NetworkConfig::lan().with_loss(loss), 21);
        let (server, _) = spawn_counter(&sim, NodeId(0), PortId(1));
        sim.spawn("client", NodeId(1), move |ctx| {
            let mut c = RpcClient::with_policy(
                server,
                RetryPolicy::exponential(Duration::from_millis(4), 10),
            );
            for _ in 0..80 {
                let _ = c.call(ctx, "inc", Value::Null);
            }
        });
        let report = sim.run();
        report.metrics.msgs_sent as f64 / 80.0
    }
    let clean = messages_per_call(0.0);
    let lossy = messages_per_call(0.25);
    assert!(
        (2.0..2.2).contains(&clean),
        "clean network ~2 msgs/call, got {clean}"
    );
    assert!(
        lossy > clean * 1.2,
        "loss must raise message cost: {lossy} vs {clean}"
    );
}
