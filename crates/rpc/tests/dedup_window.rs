//! Duplicate-suppression window edge cases: cache hits, evictions, and
//! very late duplicates.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use rpc::{ErrorCode, Packet, RemoteError, Reply, Request, RpcServer, Served};
use simnet::{Endpoint, NetworkConfig, NodeId, PortId, Simulation};
use wire::Value;

/// Hand-crafts a raw request datagram (bypassing RpcClient) so tests can
/// control call ids exactly.
fn raw_request(call_id: u64, reply_to: Endpoint, op: &str) -> Bytes {
    Request {
        call_id,
        reply_to,
        object: String::new(),
        op: op.to_owned(),
        args: Value::Null,
        span: 0,
    }
    .to_bytes()
}

fn decode_reply(payload: &[u8]) -> Reply {
    match Packet::from_bytes(payload).unwrap() {
        Packet::Reply(r) => r,
        other => panic!("expected reply, got {other:?}"),
    }
}

#[test]
fn retransmission_served_from_cache_without_reexecution() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 1);
    let execs = Arc::new(AtomicU64::new(0));
    let e2 = Arc::clone(&execs);
    let server = sim.spawn_at("srv", NodeId(0), PortId(1), move |ctx| {
        let mut rpc = RpcServer::new();
        while let Ok(msg) = ctx.recv() {
            rpc.handle(ctx, &msg, |_c, _req| {
                Ok(Value::U64(e2.fetch_add(1, Ordering::SeqCst) + 1))
            });
        }
    });
    sim.spawn("client", NodeId(1), move |ctx| {
        let me = ctx.endpoint();
        // Send call 1 twice, manually.
        ctx.send(server, raw_request(1, me, "inc"));
        ctx.send(server, raw_request(1, me, "inc"));
        let a = decode_reply(&ctx.recv().unwrap().payload);
        let b = decode_reply(&ctx.recv().unwrap().payload);
        assert_eq!(a, b, "cached reply must be byte-identical");
        assert_eq!(a.result.unwrap(), Value::U64(1));
    });
    sim.run();
    assert_eq!(execs.load(Ordering::SeqCst), 1);
}

#[test]
fn evicted_duplicate_is_dropped_not_reexecuted() {
    // Push the client's window past its capacity (32), then replay call
    // id 1: it is older than the window, so it must be *dropped* — never
    // re-executed, and no reply sent.
    let mut sim = Simulation::new(NetworkConfig::lan(), 2);
    let execs = Arc::new(AtomicU64::new(0));
    let dropped = Arc::new(AtomicU64::new(0));
    let (e2, d2) = (Arc::clone(&execs), Arc::clone(&dropped));
    let server = sim.spawn_at("srv", NodeId(0), PortId(1), move |ctx| {
        let mut rpc = RpcServer::new();
        while let Ok(msg) = ctx.recv() {
            let served = rpc.handle(ctx, &msg, |_c, _req| {
                Ok(Value::U64(e2.fetch_add(1, Ordering::SeqCst) + 1))
            });
            if matches!(served, Served::DuplicateDropped) {
                d2.fetch_add(1, Ordering::SeqCst);
            }
        }
    });
    sim.spawn("client", NodeId(1), move |ctx| {
        let me = ctx.endpoint();
        for id in 1..=40u64 {
            ctx.send(server, raw_request(id, me, "inc"));
            let _ = ctx.recv().unwrap();
        }
        // Very late duplicate of the long-evicted call 1.
        ctx.send(server, raw_request(1, me, "inc"));
        // No reply should come back for it.
        let silent = ctx
            .recv_timeout(std::time::Duration::from_millis(20))
            .unwrap();
        assert!(silent.is_none(), "evicted duplicate got a reply");
    });
    sim.run();
    assert_eq!(
        execs.load(Ordering::SeqCst),
        40,
        "late duplicate re-executed"
    );
    assert_eq!(dropped.load(Ordering::SeqCst), 1);
}

#[test]
fn undecodable_datagrams_are_counted_and_ignored() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 3);
    let stats = Arc::new(AtomicU64::new(0));
    let s2 = Arc::clone(&stats);
    let server = sim.spawn_at("srv", NodeId(0), PortId(1), move |ctx| {
        let mut rpc = RpcServer::new();
        while let Ok(msg) = ctx.recv() {
            rpc.handle(ctx, &msg, |_c, _req| Ok(Value::Null));
            s2.store(rpc.stats.undecodable, Ordering::SeqCst);
        }
    });
    sim.spawn("client", NodeId(1), move |ctx| {
        ctx.send(server, Bytes::from_static(b"complete garbage"));
        // A valid call afterwards still works.
        ctx.send(server, raw_request(1, ctx.endpoint(), "x"));
        let rep = decode_reply(&ctx.recv().unwrap().payload);
        assert!(rep.result.is_ok());
    });
    sim.run();
    assert_eq!(stats.load(Ordering::SeqCst), 1);
}

#[test]
fn handler_errors_are_cached_like_successes() {
    // At-most-once applies to failures too: a retransmitted failing call
    // must get the *cached* error, not a second execution.
    let mut sim = Simulation::new(NetworkConfig::lan(), 4);
    let execs = Arc::new(AtomicU64::new(0));
    let e2 = Arc::clone(&execs);
    let server = sim.spawn_at("srv", NodeId(0), PortId(1), move |ctx| {
        let mut rpc = RpcServer::new();
        while let Ok(msg) = ctx.recv() {
            rpc.handle(ctx, &msg, |_c, _req| {
                e2.fetch_add(1, Ordering::SeqCst);
                Err(RemoteError::new(ErrorCode::App, "always fails"))
            });
        }
    });
    sim.spawn("client", NodeId(1), move |ctx| {
        let me = ctx.endpoint();
        ctx.send(server, raw_request(7, me, "boom"));
        ctx.send(server, raw_request(7, me, "boom"));
        let a = decode_reply(&ctx.recv().unwrap().payload);
        let b = decode_reply(&ctx.recv().unwrap().payload);
        assert_eq!(a, b);
        assert_eq!(a.result.unwrap_err().code, ErrorCode::App);
    });
    sim.run();
    assert_eq!(execs.load(Ordering::SeqCst), 1);
}
