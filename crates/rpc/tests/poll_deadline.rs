//! Regression tests for the poll-driven channel's retransmit-deadline
//! arming: a parked client's only lifeline is the timer wake armed from
//! [`Channel::next_deadline`], so a stale or missing deadline is a lost
//! wakeup, not a slowdown.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rpc::{Channel, ChannelConfig, ErrorCode, RemoteError, RpcError};
use simnet::{Endpoint, NetworkConfig, NodeId, Poll, PortId, Simulation};
use wire::Value;

/// With 100% loss nothing is ever delivered, so the *only* thing that
/// can advance the client is the retransmit timer it arms before
/// parking — and every one of those wakes lands exactly ON the deadline
/// instant (the scheduler dispatches the timeout at `deadline`, and
/// `expire` treats `deadline <= now` as due). The call must burn its
/// whole retry budget and settle as a timeout; if the boundary were
/// treated as "not yet due", the machine would re-park with the same
/// deadline and the simulation would spin or stall forever.
#[test]
fn deadline_boundary_wake_drives_call_to_timeout() {
    let mut sim = Simulation::new(NetworkConfig::lan().with_loss(1.0), 3);
    let server = Endpoint::new(NodeId(0), PortId(1));
    let outcome = Arc::new(AtomicU64::new(0));
    let o = Arc::clone(&outcome);

    let mut chan: Option<Channel> = None;
    let mut call = None;
    sim.spawn_poll("client", NodeId(1), move |cx: &mut simnet::ProcCx| {
        if cx.ctx().is_stopped() {
            return Poll::Ready(());
        }
        let ch =
            chan.get_or_insert_with(|| Channel::new("echo", server, ChannelConfig::with_depth(1)));
        let h = *call.get_or_insert_with(|| {
            let ctx = cx.ctx();
            ch.begin_call(ctx, "echo", Value::U64(7))
        });
        match ch.poll_wait(cx, h) {
            Poll::Pending => Poll::Pending,
            Poll::Ready(Err(RpcError::Timeout { .. })) => {
                o.store(1, Ordering::SeqCst);
                Poll::Ready(())
            }
            Poll::Ready(other) => panic!("expected timeout, got {other:?}"),
        }
    });
    let report = sim.run();
    assert_eq!(
        outcome.load(Ordering::SeqCst),
        1,
        "call must settle as timeout"
    );
    assert_eq!(report.alive, 0, "client must not be left parked");
}

/// The stale-deadline lost-wakeup: calls A and B share one pipelined
/// channel; the server answers exactly one request and exits, so A
/// settles normally while B's packets blackhole against the unbound
/// endpoint and no reply will ever come. The client awaits A, then
/// parks *without polling B in that pass* — the natural shape of
/// sequential awaits interleaved with other work. The pass in which A
/// settles must still arm B's retransmit deadline; if `poll_wait` armed
/// the timer only on `Pending`, A's completion would consume the poll
/// and leave B with no timer, parking the client forever.
#[test]
fn sibling_deadline_survives_settled_call() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 4);
    // A one-shot server: replies to the first request, then returns, so
    // its endpoint unbinds and everything later sent to it blackholes.
    let server = sim.spawn_at("oneshot", NodeId(0), PortId(1), |ctx| {
        let mut srv = rpc::RpcServer::new();
        if let Ok(m) = ctx.recv() {
            srv.handle(ctx, &m, |_ctx, req| match req.op.as_str() {
                "echo" => Ok(req.args.clone()),
                other => Err(RemoteError::new(ErrorCode::NoSuchOp, other.to_owned())),
            });
        }
    });
    let stage = Arc::new(AtomicU64::new(0));
    let s = Arc::clone(&stage);

    let mut chan: Option<Channel> = None;
    let mut handles = None;
    sim.spawn_poll("client", NodeId(1), move |cx: &mut simnet::ProcCx| {
        if cx.ctx().is_stopped() {
            return Poll::Ready(());
        }
        let ch =
            chan.get_or_insert_with(|| Channel::new("echo", server, ChannelConfig::with_depth(2)));
        let (a, b) = *handles.get_or_insert_with(|| {
            let ctx = cx.ctx();
            let a = ch.begin_call(ctx, "echo", Value::U64(1));
            let b = ch.begin_call(ctx, "echo", Value::U64(2));
            (a, b)
        });
        if s.load(Ordering::SeqCst) == 0 {
            match ch.poll_wait(cx, a) {
                Poll::Pending => return Poll::Pending,
                Poll::Ready(r) => {
                    r.expect("call A should echo back");
                    s.store(1, Ordering::SeqCst);
                    // Park WITHOUT polling B and without arming any
                    // wake of our own. Only the deadline armed during
                    // A's final poll_wait can wake us again.
                    return Poll::Pending;
                }
            }
        }
        s.store(2, Ordering::SeqCst);
        match ch.poll_wait(cx, b) {
            Poll::Pending => Poll::Pending,
            Poll::Ready(Err(RpcError::Timeout { .. })) => {
                s.store(3, Ordering::SeqCst);
                Poll::Ready(())
            }
            Poll::Ready(other) => panic!("expected timeout for B, got {other:?}"),
        }
    });
    let report = sim.run();
    assert_eq!(
        stage.load(Ordering::SeqCst),
        3,
        "client must be woken by B's deadline after A settled (stage tells how far it got)"
    );
    assert_eq!(report.alive, 0, "client must not be left parked");
}
