//! Critical-path analysis over a [`CausalTrace`].
//!
//! The proxy principle's price is indirection: a single local call may
//! hide queueing, wire time, server execution, retransmission waits,
//! forwarding hops and migrations. This module decomposes each root
//! request span into exactly those components.
//!
//! The decomposition is a state machine over the request's event
//! timeline: the span's `[start, end]` interval is partitioned at every
//! event instant, and each sub-interval is attributed to the phase the
//! preceding event put the request in (after a send → wire; after a
//! drop → waiting for retransmission; after delivery at the server →
//! server execution; after delivery back at the client → client-side
//! queueing/processing). Because the sub-intervals tile the span, the
//! components **sum to the span's measured duration exactly** — the
//! invariant `tracectl` asserts and CI smoke-checks.

use std::collections::{BTreeMap, HashMap};

use crate::trace::{CausalTrace, Loc, NetEventKind};
use crate::{SpanId, SpanKind};

/// Which phase a request is in between two timeline events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Client-side: building the request, processing the reply, or
    /// local proxy work (cache hits never leave this phase).
    Queue,
    /// A datagram is in flight.
    Wire,
    /// The server owns the request.
    Server,
    /// The request was lost; the client is waiting out its timeout.
    RetransmitWait,
}

/// One entry of a request's reconstructed timeline.
#[derive(Debug, Clone)]
pub struct TimelineEntry {
    /// When (simulated nanoseconds).
    pub at_ns: u64,
    /// The span the event carried.
    pub span: SpanId,
    /// Human-readable description.
    pub label: String,
}

/// The decomposed cost of one root request.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// The root invoke span.
    pub span: SpanId,
    /// Service the client invoked.
    pub service: String,
    /// Operation.
    pub op: String,
    /// Whether the invocation succeeded.
    pub ok: Option<bool>,
    /// Span open instant.
    pub start_ns: u64,
    /// Measured span duration.
    pub total_ns: u64,
    /// Client-side queueing/processing time.
    pub queue_ns: u64,
    /// Time with a datagram in flight.
    pub wire_ns: u64,
    /// Time the server owned the request.
    pub server_ns: u64,
    /// Time spent waiting out lost datagrams.
    pub retransmit_ns: u64,
    /// Retransmissions across the root span and its dispatches.
    pub retransmissions: u64,
    /// Datagrams lost (dropped + blackholed) on this request's behalf.
    pub drops: u64,
    /// The request's event timeline, in order.
    pub timeline: Vec<TimelineEntry>,
}

impl CriticalPath {
    /// Sum of the four components. Equals [`CriticalPath::total_ns`] by
    /// construction; exposed so callers can *check* rather than trust.
    pub fn components_ns(&self) -> u64 {
        self.queue_ns + self.wire_ns + self.server_ns + self.retransmit_ns
    }

    /// The dominant component, as a stable label.
    pub fn dominant(&self) -> &'static str {
        let parts = [
            (self.queue_ns, "queue"),
            (self.wire_ns, "wire"),
            (self.server_ns, "server"),
            (self.retransmit_ns, "retransmit"),
        ];
        parts
            .iter()
            .max_by_key(|(ns, _)| *ns)
            .map(|&(_, name)| name)
            .unwrap_or("queue")
    }
}

fn describe(kind: &NetEventKind) -> String {
    match kind {
        NetEventKind::Sent { src, dst, bytes } => format!("sent {src} -> {dst} ({bytes}B)"),
        NetEventKind::Delivered { src, dst, bytes } => {
            format!("delivered {src} -> {dst} ({bytes}B)")
        }
        NetEventKind::Dropped { src, dst } => format!("dropped {src} -> {dst}"),
        NetEventKind::Blackholed { src, dst } => format!("blackholed {src} -> {dst}"),
        NetEventKind::Batched { src, dst, count } => {
            format!("batched x{count} {src} -> {dst}")
        }
        NetEventKind::Retransmit { src, dst, attempt } => {
            format!("retransmit #{attempt} {src} -> {dst}")
        }
        NetEventKind::ServerExecute {
            service,
            op,
            dur_ns,
        } => format!("server {service} executed {op} in {dur_ns}ns"),
        NetEventKind::ProxyCacheHit { service, op } => format!("cache hit {service}/{op}"),
        NetEventKind::ProxyCacheMiss { service, op } => format!("cache miss {service}/{op}"),
        NetEventKind::Forwarded { from, to } => format!("forwarded at {from} -> {to}"),
        NetEventKind::Migrated { service, from, to } => {
            format!("migrated {service} {from} -> {to}")
        }
    }
}

/// Computes the critical-path decomposition for every closed root
/// request span in the trace, slowest first.
pub fn critical_paths(trace: &CausalTrace) -> Vec<CriticalPath> {
    let index = trace.span_index();

    // Map every span to its root, and total up per-root retransmissions
    // (the root's own plus its dispatch children's).
    let parents: HashMap<SpanId, SpanId> = index.iter().map(|(&id, s)| (id, s.parent)).collect();
    let root_of = |id: SpanId| -> SpanId {
        let mut cur = id;
        let mut hops = 0;
        while let Some(&p) = parents.get(&cur) {
            if !p.is_some() || hops > 64 {
                break;
            }
            cur = p;
            hops += 1;
        }
        cur
    };

    let roots = trace.root_requests();
    let mut paths: HashMap<SpanId, CriticalPath> = roots
        .iter()
        .map(|s| {
            (
                s.id,
                CriticalPath {
                    span: s.id,
                    service: s.service.clone(),
                    op: s.op.clone(),
                    ok: s.ok,
                    start_ns: s.start_ns,
                    total_ns: s.duration_ns().unwrap_or(0),
                    queue_ns: 0,
                    wire_ns: 0,
                    server_ns: 0,
                    retransmit_ns: 0,
                    retransmissions: s.retransmissions,
                    drops: 0,
                    timeline: Vec::new(),
                },
            )
        })
        .collect();
    for s in trace.spans() {
        if s.kind == SpanKind::Dispatch {
            let r = root_of(s.id);
            if r != s.id {
                if let Some(p) = paths.get_mut(&r) {
                    p.retransmissions += s.retransmissions;
                }
            }
        }
    }

    // Attach each network event to its root request. One-way spans
    // (invalidations, replication fan-out) are deliberately excluded:
    // their traffic runs concurrently with the request and would
    // corrupt the phase attribution.
    let mut events_by_root: HashMap<SpanId, Vec<(u64, &NetEventKind, SpanId)>> = HashMap::new();
    for e in trace.net_events() {
        if !e.span.is_some() {
            continue;
        }
        if let Some(rec) = index.get(&e.span) {
            if rec.kind == SpanKind::Oneway {
                continue;
            }
        }
        let root = root_of(e.span);
        events_by_root
            .entry(root)
            .or_default()
            .push((e.at_ns, &e.kind, e.span));
    }

    for (root, mut events) in events_by_root {
        let Some(path) = paths.get_mut(&root) else {
            continue;
        };
        events.sort_by_key(|(at, _, _)| *at);
        let start = path.start_ns;
        let end = start + path.total_ns;

        // The client's location: the source of the request's first send.
        let client: Option<Loc> = events.iter().find_map(|(_, kind, _)| match kind {
            NetEventKind::Sent { src, .. } => Some(*src),
            _ => None,
        });

        let mut phase = Phase::Queue;
        let mut cursor = start;
        for (at, kind, span) in &events {
            path.timeline.push(TimelineEntry {
                at_ns: *at,
                span: *span,
                label: describe(kind),
            });
            if let NetEventKind::Dropped { .. } | NetEventKind::Blackholed { .. } = kind {
                path.drops += 1;
            }
            // Late events (duplicate replies after close) narrate the
            // timeline but cannot shift in-span attribution.
            if *at < start || *at > end {
                continue;
            }
            let slice = at - cursor;
            match phase {
                Phase::Queue => path.queue_ns += slice,
                Phase::Wire => path.wire_ns += slice,
                Phase::Server => path.server_ns += slice,
                Phase::RetransmitWait => path.retransmit_ns += slice,
            }
            cursor = *at;
            phase = match kind {
                NetEventKind::Sent { .. }
                | NetEventKind::Retransmit { .. }
                | NetEventKind::Batched { .. } => Phase::Wire,
                NetEventKind::Delivered { dst, .. } => {
                    if Some(*dst) == client {
                        Phase::Queue
                    } else {
                        Phase::Server
                    }
                }
                NetEventKind::Dropped { .. } | NetEventKind::Blackholed { .. } => {
                    Phase::RetransmitWait
                }
                NetEventKind::ServerExecute { .. }
                | NetEventKind::Forwarded { .. }
                | NetEventKind::Migrated { .. } => Phase::Server,
                NetEventKind::ProxyCacheHit { .. } | NetEventKind::ProxyCacheMiss { .. } => {
                    Phase::Queue
                }
            };
        }
        let tail = end - cursor;
        match phase {
            Phase::Queue => path.queue_ns += tail,
            Phase::Wire => path.wire_ns += tail,
            Phase::Server => path.server_ns += tail,
            Phase::RetransmitWait => path.retransmit_ns += tail,
        }
    }

    // Requests with no attributable events are pure client-side work.
    let mut out: Vec<CriticalPath> = paths
        .into_values()
        .map(|mut p| {
            if p.timeline.is_empty() {
                p.queue_ns = p.total_ns;
            }
            p
        })
        .collect();
    out.sort_by(|a, b| {
        b.total_ns
            .cmp(&a.total_ns)
            .then_with(|| a.span.cmp(&b.span))
    });
    out
}

/// The `k` slowest requests.
pub fn top_k_slowest(trace: &CausalTrace, k: usize) -> Vec<CriticalPath> {
    let mut paths = critical_paths(trace);
    paths.truncate(k);
    paths
}

/// Loss/retransmission accounting for one directed node pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Datagrams handed to the network.
    pub sent: u64,
    /// Datagrams delivered.
    pub delivered: u64,
    /// Datagrams dropped by the loss model.
    pub dropped: u64,
    /// Datagrams swallowed by partitions/unbound endpoints.
    pub blackholed: u64,
    /// Retransmissions crossing the link.
    pub retransmits: u64,
}

impl LinkStats {
    /// Fraction of sends that were lost (dropped + blackholed).
    pub fn loss_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            (self.dropped + self.blackholed) as f64 / self.sent as f64
        }
    }
}

/// Aggregates drop/retransmit counts per directed `(src node, dst
/// node)` link, so chaos experiments can name the links that hurt.
pub fn link_attribution(trace: &CausalTrace) -> BTreeMap<(u32, u32), LinkStats> {
    type Field = fn(&mut LinkStats) -> &mut u64;
    let mut links: BTreeMap<(u32, u32), LinkStats> = BTreeMap::new();
    for e in trace.net_events() {
        let (key, field): ((u32, u32), Field) = match &e.kind {
            NetEventKind::Sent { src, dst, .. } => ((src.node, dst.node), |s| &mut s.sent),
            NetEventKind::Delivered { src, dst, .. } => {
                ((src.node, dst.node), |s| &mut s.delivered)
            }
            NetEventKind::Dropped { src, dst } => ((src.node, dst.node), |s| &mut s.dropped),
            NetEventKind::Blackholed { src, dst } => ((src.node, dst.node), |s| &mut s.blackholed),
            NetEventKind::Retransmit { src, dst, .. } => {
                ((src.node, dst.node), |s| &mut s.retransmits)
            }
            _ => continue,
        };
        *field(links.entry(key).or_default()) += 1;
    }
    links
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{NetEvent, TraceSink};
    use crate::{SpanId, SpanRecord};

    fn push_lossy_request(sink: &mut TraceSink) {
        let client = Loc::new(0, 70_000);
        let server = Loc::new(1, 10);
        sink.push_span(SpanRecord {
            id: SpanId(1),
            parent: SpanId::NONE,
            kind: SpanKind::Invoke,
            service: "kv".into(),
            op: "get".into(),
            start_ns: 0,
            end_ns: Some(10_000),
            ok: Some(true),
            retransmissions: 1,
            replies: 1,
        });
        sink.push_span(SpanRecord {
            id: SpanId(2),
            parent: SpanId(1),
            kind: SpanKind::Dispatch,
            service: "kv-server".into(),
            op: "get".into(),
            start_ns: 5_600,
            end_ns: Some(5_800),
            ok: Some(true),
            retransmissions: 0,
            replies: 0,
        });
        let events = [
            (
                100,
                1,
                NetEventKind::Sent {
                    src: client,
                    dst: server,
                    bytes: 64,
                },
            ),
            (
                100,
                1,
                NetEventKind::Dropped {
                    src: client,
                    dst: server,
                },
            ),
            (
                5_000,
                1,
                NetEventKind::Retransmit {
                    src: client,
                    dst: server,
                    attempt: 1,
                },
            ),
            (
                5_000,
                1,
                NetEventKind::Sent {
                    src: client,
                    dst: server,
                    bytes: 64,
                },
            ),
            (
                5_600,
                1,
                NetEventKind::Delivered {
                    src: client,
                    dst: server,
                    bytes: 64,
                },
            ),
            (
                5_800,
                2,
                NetEventKind::ServerExecute {
                    service: "kv-server".into(),
                    op: "get".into(),
                    dur_ns: 200,
                },
            ),
            (
                5_800,
                1,
                NetEventKind::Sent {
                    src: server,
                    dst: client,
                    bytes: 32,
                },
            ),
            (
                6_400,
                1,
                NetEventKind::Delivered {
                    src: server,
                    dst: client,
                    bytes: 32,
                },
            ),
        ];
        for (at, span, kind) in events {
            sink.push_net(NetEvent {
                at_ns: at,
                span: SpanId(span),
                kind,
            });
        }
    }

    #[test]
    fn components_tile_the_span_exactly() {
        let mut sink = TraceSink::new();
        push_lossy_request(&mut sink);
        let trace = sink.build();
        let paths = critical_paths(&trace);
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.total_ns, 10_000);
        assert_eq!(p.components_ns(), p.total_ns, "phases tile the span");
        // Walk the expected state machine:
        //   queue   [0, 100)       = 100
        //   wire    [100, 100)     = 0       (send whose fate is decided instantly)
        //   retx    [100, 5000)    = 4900    (waiting out the loss)
        //   wire    [5000, 5600)   = 600     (request in flight)
        //   server  [5600, 5800)   = 200     (execution)
        //   wire    [5800, 6400)   = 600     (reply in flight)
        //   queue   [6400, 10000]  = 3600    (client post-processing)
        assert_eq!(p.queue_ns, 3_700);
        assert_eq!(p.retransmit_ns, 4_900);
        assert_eq!(p.wire_ns, 1_200);
        assert_eq!(p.server_ns, 200);
        assert_eq!(p.drops, 1);
        assert_eq!(p.retransmissions, 1);
        assert_eq!(p.dominant(), "retransmit");
        assert_eq!(p.timeline.len(), 8);
    }

    #[test]
    fn oneway_traffic_does_not_pollute_requests() {
        let mut sink = TraceSink::new();
        push_lossy_request(&mut sink);
        // An invalidation fan-out parented to the request: its traffic
        // must not flip the request into Wire phase.
        sink.push_span(SpanRecord {
            id: SpanId(3),
            parent: SpanId(1),
            kind: SpanKind::Oneway,
            service: "kv".into(),
            op: "invalidate".into(),
            start_ns: 7_000,
            end_ns: Some(7_000),
            ok: Some(true),
            retransmissions: 0,
            replies: 0,
        });
        sink.push_net(NetEvent {
            at_ns: 7_000,
            span: SpanId(3),
            kind: NetEventKind::Sent {
                src: Loc::new(1, 10),
                dst: Loc::new(2, 11),
                bytes: 16,
            },
        });
        let trace = sink.build();
        let p = &critical_paths(&trace)[0];
        assert_eq!(p.components_ns(), p.total_ns);
        assert_eq!(p.queue_ns, 3_700, "oneway send did not open a wire phase");
    }

    #[test]
    fn requests_without_events_are_pure_queue() {
        let mut sink = TraceSink::new();
        sink.push_span(SpanRecord {
            id: SpanId(9),
            parent: SpanId::NONE,
            kind: SpanKind::Invoke,
            service: "kv".into(),
            op: "get".into(),
            start_ns: 50,
            end_ns: Some(80),
            ok: Some(true),
            retransmissions: 0,
            replies: 0,
        });
        let trace = sink.build();
        let p = &critical_paths(&trace)[0];
        assert_eq!(p.total_ns, 30);
        assert_eq!(p.queue_ns, 30);
        assert_eq!(p.components_ns(), p.total_ns);
    }

    #[test]
    fn link_attribution_counts_per_directed_pair() {
        let mut sink = TraceSink::new();
        push_lossy_request(&mut sink);
        let trace = sink.build();
        let links = link_attribution(&trace);
        let up = links.get(&(0, 1)).unwrap();
        assert_eq!(up.sent, 2);
        assert_eq!(up.dropped, 1);
        assert_eq!(up.delivered, 1);
        assert_eq!(up.retransmits, 1);
        assert!(up.loss_rate() > 0.49 && up.loss_rate() < 0.51);
        let down = links.get(&(1, 0)).unwrap();
        assert_eq!(down.sent, 1);
        assert_eq!(down.delivered, 1);
    }

    #[test]
    fn top_k_truncates_sorted_output() {
        let mut sink = TraceSink::new();
        for i in 0..5u64 {
            sink.push_span(SpanRecord {
                id: SpanId(i + 1),
                parent: SpanId::NONE,
                kind: SpanKind::Invoke,
                service: "kv".into(),
                op: "get".into(),
                start_ns: 0,
                end_ns: Some((i + 1) * 1_000),
                ok: Some(true),
                retransmissions: 0,
                replies: 1,
            });
        }
        let trace = sink.build();
        let top = top_k_slowest(&trace, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].total_ns, 5_000);
        assert_eq!(top[1].total_ns, 4_000);
    }
}
