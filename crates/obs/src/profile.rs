//! Continuous wall-time profiler: folded-stack attribution with a
//! deterministic shape.
//!
//! The proxy principle makes every distribution decision the system's
//! private business — so only the observability plane can say where
//! *host* time actually goes. This module adds that capability without
//! breaking the repo's core invariant (byte-identical runs across
//! thread counts):
//!
//! * **RAII scope guards** ([`scope`]) push a frame name onto a
//!   thread-local stack and, on drop, fold the semicolon-joined path
//!   into the calling writer lane's bounded frame table as
//!   `{calls, wall_ns}`.
//! * **Deterministic by construction**: frame *paths and call counts*
//!   depend only on simulated execution, which is byte-identical across
//!   `with_threads` (proptested in `simnet/tests/profile_determinism.rs`).
//!   Only `wall_ns` is host-dependent; consumers must treat it as
//!   *reported, not judged* — perfgate skips wall metrics across hosts,
//!   and the determinism tests compare paths/calls with wall excluded.
//! * **Counted, never silent, evictions**: the per-lane table is
//!   bounded; once full, folds into *new* paths are dropped and counted
//!   in `frames_evicted` (existing paths keep accumulating).
//! * **Relaxed-atomic off-switch**: like the flight recorder, the
//!   disabled fast path of [`scope`] is a single relaxed atomic load of
//!   a global "any profiler armed" counter — no thread-local access, no
//!   allocation, no clock read.
//!
//! Profilers are per-[`MetricsRegistry`]; threads declare which
//! registry they profile into with [`set_ambient_profiler`] (the
//! simulator does this for its driver, worker and process threads).
//! The registry folds per writer lane — the same lane striping the rest
//! of the plane uses — and [`MetricsRegistry::profile_report`] merges
//! lanes key-ordered, so the merged frame table is byte-identical for
//! any thread count.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::MetricsRegistry;

/// How many registries currently have profiling enabled, across the
/// whole process. The [`scope`] fast path is one relaxed load of this:
/// zero means every guard is inert.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

pub(crate) fn active_inc() {
    ACTIVE.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn active_dec() {
    ACTIVE.fetch_sub(1, Ordering::Relaxed);
}

/// Thread-local profiler state: the ambient registry and the open-frame
/// stack in one cell, so an armed scope touches thread-local storage
/// exactly once at open and once at close.
struct ProfTls {
    /// The registry this thread's scopes fold into (None = inert).
    reg: Option<Arc<MetricsRegistry>>,
    /// The thread's open-frame stack (names of live scopes, outermost
    /// first).
    stack: Vec<&'static str>,
}

thread_local! {
    static PROF_TLS: RefCell<ProfTls> = const {
        RefCell::new(ProfTls {
            reg: None,
            stack: Vec::new(),
        })
    };
}

/// Declares which registry the calling thread's [`scope`] guards fold
/// into (`None` disarms the thread). The simulator sets this on every
/// thread that executes simulated work — the driver at `run`, worker
/// threads at pool start, simulated-process threads at spawn — mirroring
/// [`crate::set_ambient_lane`].
pub fn set_ambient_profiler(reg: Option<Arc<MetricsRegistry>>) {
    PROF_TLS.with(|t| t.borrow_mut().reg = reg);
}

/// Opens a profiling scope named `name`. Returns a guard that, when
/// dropped, folds the full semicolon-joined frame path (every enclosing
/// scope plus `name`) into the ambient registry with the scope's
/// wall-clock duration.
///
/// When no profiler in the process is enabled this is one relaxed
/// atomic load and an inert guard. Frame names become folded-stack
/// frames verbatim; a name may itself contain `;` to pre-split into a
/// fixed sub-hierarchy (e.g. `"rpc;encode"`).
#[inline]
#[must_use = "the scope is measured from creation to drop"]
pub fn scope(name: &'static str) -> ScopeGuard {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return ScopeGuard { t0: None };
    }
    scope_slow(name)
}

#[cold]
fn scope_slow(name: &'static str) -> ScopeGuard {
    PROF_TLS.with(|t| {
        let mut t = t.borrow_mut();
        // The guard deliberately does NOT hold the registry: it re-reads
        // the thread-local at drop, so an armed scope costs zero Arc
        // refcount traffic.
        let armed = matches!(&t.reg, Some(reg) if reg.profile_enabled());
        if !armed {
            return ScopeGuard { t0: None };
        }
        t.stack.push(name);
        ScopeGuard {
            t0: Some(Instant::now()),
        }
    })
}

/// RAII guard returned by [`scope`]; folds the frame on drop.
#[derive(Debug)]
pub struct ScopeGuard {
    t0: Option<Instant>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if let Some(t0) = self.t0.take() {
            // One clock read closes the scope *and* opens the fold's
            // self-measurement bracket.
            let t1 = Instant::now();
            let wall_ns = t1.saturating_duration_since(t0).as_nanos() as u64;
            PROF_TLS.with(|t| {
                let mut t = t.borrow_mut();
                let t = &mut *t;
                let Some(name) = t.stack.pop() else { return };
                let Some(reg) = &t.reg else { return };
                if t.stack.is_empty() {
                    // Top-level scope (the common hot-path case): the
                    // path is the frame name itself, so skip the join
                    // allocation entirely.
                    reg.prof_fold_at(t1, name, 1, wall_ns);
                } else {
                    let mut path = t.stack.join(";");
                    path.push(';');
                    path.push_str(name);
                    reg.prof_fold_at(t1, &path, 1, wall_ns);
                }
            });
        }
    }
}

/// Accumulated statistics for one frame path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameStat {
    /// Times the path was folded (deterministic across thread counts).
    pub calls: u64,
    /// Total wall-clock nanoseconds attributed to the path
    /// (host-dependent: reported, never judged).
    pub wall_ns: u64,
}

/// FNV-1a hasher for the frame table. Frame paths are short strings
/// from a tiny, compile-time-known set (scope names, not attacker
/// input), so there is no DoS surface to defend and SipHash's setup
/// cost is pure overhead on a per-fold hot path.
#[derive(Debug)]
struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

type FnvBuild = std::hash::BuildHasherDefault<FnvHasher>;

/// One writer lane's slice of the profiler: a bounded folded-stack
/// table plus its eviction count.
#[derive(Debug)]
pub(crate) struct ProfileLane {
    frames: HashMap<String, FrameStat, FnvBuild>,
    evicted: u64,
    max_frames: usize,
}

impl ProfileLane {
    pub(crate) fn new(max_frames: usize) -> ProfileLane {
        ProfileLane {
            frames: HashMap::default(),
            evicted: 0,
            max_frames: max_frames.max(1),
        }
    }

    fn fold(&mut self, path: &str, calls: u64, wall_ns: u64) {
        if let Some(st) = self.frames.get_mut(path) {
            st.calls += calls;
            st.wall_ns += wall_ns;
        } else if self.frames.len() < self.max_frames {
            self.frames
                .insert(path.to_string(), FrameStat { calls, wall_ns });
        } else {
            // Table full and the path is new: drop the sample but count
            // it — the report never pretends coverage it doesn't have.
            self.evicted += calls;
        }
    }
}

/// The merged profiler section of a [`crate::RunReport`]: the folded
/// frame table plus honesty counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Folded frame paths → accumulated stats, key-ordered (merged
    /// across writer lanes; byte-identical for any thread count).
    pub frames: BTreeMap<String, FrameStat>,
    /// Distinct paths resident after the merge (== `frames.len()`).
    pub frames_resident: u64,
    /// Folds dropped because a lane's table was full (summed over
    /// lanes). Zero means the table saw everything.
    pub frames_evicted: u64,
    /// Wall time the profiler spent folding, in nanoseconds (its own
    /// overhead, measured the same way it measures everyone else).
    pub self_ns: u64,
    /// Folds performed.
    pub self_calls: u64,
}

impl ProfileReport {
    /// The deterministic shape of the profile: one `path calls` line
    /// per frame, key-ordered, `wall_ns` excluded. Two runs of the same
    /// seed at different thread counts must produce byte-identical
    /// canonical frames.
    pub fn canonical_frames(&self) -> String {
        let mut out = String::new();
        for (path, st) in &self.frames {
            out.push_str(path);
            out.push(' ');
            out.push_str(&st.calls.to_string());
            out.push('\n');
        }
        out
    }
}

impl MetricsRegistry {
    /// Turns on the profiler with at most `max_frames` distinct frame
    /// paths *per writer lane* (clamped to ≥ 1). Resets any existing
    /// recording. Scopes only fold from threads that also declared this
    /// registry ambient via [`set_ambient_profiler`].
    pub fn enable_profile(&self, max_frames: usize) {
        for lane in self.lanes.iter() {
            let mut p = lane.profile.lock().unwrap_or_else(|e| e.into_inner());
            *p = Some(ProfileLane::new(max_frames));
        }
        self.prof_max_frames
            .store(max_frames.max(1) as u64, Ordering::Relaxed);
        if !self.prof_enabled.swap(true, Ordering::Relaxed) {
            active_inc();
        }
    }

    /// Turns the profiler off again (recording stops; the accumulated
    /// report stays readable).
    pub fn disable_profile(&self) {
        if self.prof_enabled.swap(false, Ordering::Relaxed) {
            active_dec();
        }
    }

    /// True when this registry's profiler is armed: one relaxed load,
    /// the same fast-path discipline as
    /// [`MetricsRegistry::timeseries_enabled`].
    #[inline]
    pub fn profile_enabled(&self) -> bool {
        self.prof_enabled.load(Ordering::Relaxed)
    }

    /// Folds `calls`/`wall_ns` into `path` in the calling lane's table.
    /// This is the direct API for call sites that already measured a
    /// duration themselves (the scheduler's round phases, obs
    /// self-measurement piggybacking); [`scope`] guards route here too.
    /// No-op while the profiler is off.
    pub fn profile_add(&self, path: &str, calls: u64, wall_ns: u64) {
        if !self.profile_enabled() {
            return;
        }
        self.prof_fold(path, calls, wall_ns);
    }

    /// The fold itself, bracketed by the profiler's own overhead
    /// measurement (accumulated into `self_ns`/`self_calls` — the
    /// profiler bills itself with the same clock it bills everyone
    /// else).
    pub(crate) fn prof_fold(&self, path: &str, calls: u64, wall_ns: u64) {
        self.prof_fold_at(Instant::now(), path, calls, wall_ns);
    }

    /// [`Self::prof_fold`] for callers that already hold a fresh
    /// timestamp (a scope guard reuses its own end-of-scope reading),
    /// saving one clock read per fold on the hot path.
    pub(crate) fn prof_fold_at(&self, t0: Instant, path: &str, calls: u64, wall_ns: u64) {
        {
            let mut guard = self
                .lane()
                .profile
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if let Some(lane) = guard.as_mut() {
                lane.fold(path, calls, wall_ns);
            }
        }
        self.prof_self_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.prof_self_calls.fetch_add(1, Ordering::Relaxed);
    }

    /// Re-arms freshly rebuilt lanes after
    /// [`MetricsRegistry::set_writer_lanes`] (the enable flag and the
    /// process-wide ACTIVE count are untouched — only the lane tables
    /// are recreated).
    pub(crate) fn prof_rearm_lanes(&self) {
        if !self.profile_enabled() {
            return;
        }
        let max = self.prof_max_frames.load(Ordering::Relaxed) as usize;
        for lane in self.lanes.iter() {
            let mut p = lane.profile.lock().unwrap_or_else(|e| e.into_inner());
            *p = Some(ProfileLane::new(max));
        }
    }

    /// Snapshot of the profile, if the profiler is armed: lanes merged
    /// key-ordered (per-path stats summed), eviction counts summed.
    /// Byte-identical output for any lane interleaving of the same
    /// simulated execution.
    pub fn profile_report(&self) -> Option<ProfileReport> {
        if !self.profile_enabled() {
            return None;
        }
        let mut frames: BTreeMap<String, FrameStat> = BTreeMap::new();
        let mut evicted = 0u64;
        for lane in self.lanes.iter() {
            let guard = lane.profile.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(p) = guard.as_ref() {
                evicted += p.evicted;
                for (path, st) in &p.frames {
                    let e = frames.entry(path.clone()).or_default();
                    e.calls += st.calls;
                    e.wall_ns += st.wall_ns;
                }
            }
        }
        Some(ProfileReport {
            frames_resident: frames.len() as u64,
            frames_evicted: evicted,
            self_ns: self.prof_self_ns.load(Ordering::Relaxed),
            self_calls: self.prof_self_calls.load(Ordering::Relaxed),
            frames,
        })
    }
}

// ---------------------------------------------------------------------------
// Collapsed-flamegraph (folded) export
// ---------------------------------------------------------------------------

/// Renders a [`ProfileReport`] in the standard collapsed-flamegraph
/// format: one `frame;frame;frame value` line per path, key-ordered,
/// with `wall_ns` as the value. The output is canonical — parsing and
/// re-emitting it is byte-identical (see [`validate_folded`]) — and
/// feeds any stock flamegraph renderer.
pub fn profile_to_folded(report: &ProfileReport) -> String {
    let mut out = String::new();
    for (path, st) in &report.frames {
        out.push_str(path);
        out.push(' ');
        out.push_str(&st.wall_ns.to_string());
        out.push('\n');
    }
    out
}

/// Shape summary returned by [`validate_folded`], in the style of
/// [`crate::TimeSeriesCsvSummary`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FoldedSummary {
    /// Stack lines in the artifact.
    pub lines: usize,
    /// Deepest stack, in frames.
    pub max_depth: usize,
    /// Distinct root frames.
    pub roots: usize,
    /// Sum of all values.
    pub total_value: u64,
}

/// Validates a collapsed-flamegraph artifact: every line must be
/// `frame(;frame)* value` with a `u64` value and no empty frames, lines
/// must be strictly sorted by stack (so the artifact is unique and
/// canonical), and re-emitting the parse must reproduce the input
/// byte-for-byte.
pub fn validate_folded(text: &str) -> Result<FoldedSummary, String> {
    if text.is_empty() {
        return Err("folded artifact is empty".into());
    }
    let mut summary = FoldedSummary::default();
    let mut prev_stack: Option<&str> = None;
    let mut roots: Vec<&str> = Vec::new();
    let mut canonical = String::with_capacity(text.len());
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        let Some((stack, value)) = line.rsplit_once(' ') else {
            return Err(format!("line {n}: no `stack value` separator"));
        };
        let value: u64 = value
            .parse()
            .map_err(|_| format!("line {n}: value {value:?} is not a u64"))?;
        if stack.is_empty() {
            return Err(format!("line {n}: empty stack"));
        }
        if stack.contains(' ') {
            return Err(format!(
                "line {n}: stack {stack:?} contains a space (the value separator)"
            ));
        }
        let frames: Vec<&str> = stack.split(';').collect();
        if frames.iter().any(|f| f.is_empty()) {
            return Err(format!("line {n}: empty frame in {stack:?}"));
        }
        if let Some(prev) = prev_stack {
            if stack <= prev {
                return Err(format!(
                    "line {n}: stacks not strictly sorted ({prev:?} then {stack:?})"
                ));
            }
        }
        prev_stack = Some(stack);
        if !roots.contains(&frames[0]) {
            roots.push(frames[0]);
        }
        summary.lines += 1;
        summary.max_depth = summary.max_depth.max(frames.len());
        summary.total_value += value;
        canonical.push_str(stack);
        canonical.push(' ');
        canonical.push_str(&value.to_string());
        canonical.push('\n');
    }
    if summary.lines == 0 {
        return Err("folded artifact has no stack lines".into());
    }
    if canonical != text {
        return Err("canonical re-emit differs from input (non-canonical artifact)".into());
    }
    summary.roots = roots.len();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn armed_registry() -> Arc<MetricsRegistry> {
        let reg = Arc::new(MetricsRegistry::new());
        reg.enable_profile(64);
        reg
    }

    #[test]
    fn disabled_scope_is_inert() {
        set_ambient_profiler(None);
        let g = scope("never");
        drop(g);
        let reg = MetricsRegistry::new();
        assert!(reg.profile_report().is_none());
    }

    #[test]
    fn scopes_fold_nested_paths() {
        let reg = armed_registry();
        set_ambient_profiler(Some(Arc::clone(&reg)));
        {
            let _a = scope("outer");
            {
                let _b = scope("inner");
            }
            {
                let _b = scope("inner");
            }
        }
        set_ambient_profiler(None);
        let rep = reg.profile_report().unwrap();
        assert_eq!(rep.frames["outer"].calls, 1);
        assert_eq!(rep.frames["outer;inner"].calls, 2);
        assert_eq!(rep.frames_resident, 2);
        assert_eq!(rep.frames_evicted, 0);
        assert!(rep.self_calls >= 3);
    }

    #[test]
    fn bounded_table_counts_evictions() {
        let reg = MetricsRegistry::new();
        reg.enable_profile(2);
        reg.profile_add("a", 1, 10);
        reg.profile_add("b", 1, 10);
        reg.profile_add("c", 1, 10); // table full: dropped, counted
        reg.profile_add("a", 1, 5); // existing path still accumulates
        let rep = reg.profile_report().unwrap();
        assert_eq!(rep.frames_resident, 2);
        assert_eq!(rep.frames_evicted, 1);
        assert_eq!(
            rep.frames["a"],
            FrameStat {
                calls: 2,
                wall_ns: 15
            }
        );
        assert!(!rep.frames.contains_key("c"));
    }

    #[test]
    fn profile_add_is_inert_when_off() {
        let reg = MetricsRegistry::new();
        reg.profile_add("a", 1, 10);
        assert!(reg.profile_report().is_none());
        assert_eq!(reg.prof_self_calls.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn report_merges_lanes_key_ordered() {
        let mut reg = MetricsRegistry::new();
        reg.enable_profile(64);
        reg.set_writer_lanes(4);
        let reg = Arc::new(reg);
        for lane in 0..4 {
            crate::set_ambient_lane(lane);
            reg.profile_add("shared", 1, lane as u64 + 1);
            reg.profile_add(&format!("lane{lane}"), 1, 7);
        }
        crate::set_ambient_lane(0);
        let rep = reg.profile_report().unwrap();
        assert_eq!(rep.frames["shared"].calls, 4);
        assert_eq!(rep.frames["shared"].wall_ns, 1 + 2 + 3 + 4);
        assert_eq!(rep.frames_resident, 5);
        let keys: Vec<&String> = rep.frames.keys().collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn set_writer_lanes_preserves_profiler() {
        let mut reg = MetricsRegistry::new();
        reg.enable_profile(32);
        reg.set_writer_lanes(3);
        assert!(reg.profile_enabled());
        reg.profile_add("x", 1, 1);
        let rep = reg.profile_report().unwrap();
        assert_eq!(rep.frames_resident, 1);
    }

    #[test]
    fn canonical_frames_exclude_wall() {
        let reg = MetricsRegistry::new();
        reg.enable_profile(8);
        reg.profile_add("b", 2, 999);
        reg.profile_add("a;x", 1, 1);
        let rep = reg.profile_report().unwrap();
        assert_eq!(rep.canonical_frames(), "a;x 1\nb 2\n");
    }

    #[test]
    fn folded_round_trip_is_canonical() {
        let reg = MetricsRegistry::new();
        reg.enable_profile(8);
        reg.profile_add("sched;round;exec", 3, 300);
        reg.profile_add("rpc;encode", 5, 50);
        let rep = reg.profile_report().unwrap();
        let folded = profile_to_folded(&rep);
        assert_eq!(folded, "rpc;encode 50\nsched;round;exec 300\n");
        let summary = validate_folded(&folded).unwrap();
        assert_eq!(summary.lines, 2);
        assert_eq!(summary.max_depth, 3);
        assert_eq!(summary.roots, 2);
        assert_eq!(summary.total_value, 350);
    }

    #[test]
    fn validate_folded_rejects_malformed() {
        assert!(validate_folded("").is_err());
        assert!(validate_folded("noseparator\n").is_err());
        assert!(validate_folded("a notanumber\n").is_err());
        assert!(validate_folded("a;;b 1\n").is_err());
        assert!(validate_folded(";a 1\n").is_err());
        assert!(validate_folded("b 1\na 1\n").is_err());
        assert!(validate_folded("a 1\na 1\n").is_err());
        // Non-canonical spacing fails the round trip.
        assert!(validate_folded("a  1\n").is_err());
    }
}
