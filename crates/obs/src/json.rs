//! A minimal JSON value model, parser and string escaper.
//!
//! The workspace deliberately carries no `serde_json`; reports are
//! written with hand-rolled emitters. The trace pipeline also needs to
//! *read* JSON back (re-analyzing an exported JSONL trace, validating a
//! Chrome trace file in CI), so this module provides the small
//! recursive-descent parser those paths share. It accepts exactly the
//! JSON this crate emits plus ordinary standard JSON; it is not meant
//! to be a pathological-input fuzzing target.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (kept as f64; u64s up to 2^53 round-trip exactly,
    /// which covers every id and nanosecond this crate emits).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is normalized (BTreeMap) — none of our
    /// formats are order-sensitive.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// `get(key)` narrowed to `u64`, for the common "required numeric
    /// field" pattern in importers.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Json::as_u64)
    }

    /// `get(key)` narrowed to `&str`.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }
}

/// A parse failure, with the byte offset where parsing stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// garbage is an error.
///
/// # Errors
///
/// Returns a [`JsonError`] locating the first malformed byte.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Appends `s` to `out` with JSON string escaping (no surrounding quotes).
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// `escape_into` with quotes, returning a fresh string.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(s, &mut out);
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(map)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs: only decode the well-formed
                        // \uD800-\uDBFF + \uDC00-\uDFFF sequence.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if self.bytes[self.pos..].starts_with(b"\\u") {
                                self.pos += 2;
                                let lo = self.hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                return Err(self.err("lone high surrogate"));
                            }
                        } else {
                            char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences byte-wise: the
                    // input is a &str so the bytes are valid UTF-8.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = start + width;
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a') as u32 + 10,
                Some(b @ b'A'..=b'F') => (b - b'A') as u32 + 10,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            cp = (cp << 4) | d;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":"c"}],"d":{"e":null}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].str_field("b"), Some("c"));
        assert_eq!(v.get("d").unwrap().get("e"), Some(&Json::Null));
    }

    #[test]
    fn escape_round_trips() {
        let original = "a\"b\\c\nd\te\u{1}π𝄞";
        let quoted = quote(original);
        assert_eq!(parse(&quoted).unwrap().as_str(), Some(original));
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            parse(r#""\u0041\ud834\udd1e""#).unwrap().as_str(),
            Some("A𝄞")
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"\\q\"").is_err());
    }

    #[test]
    fn u64_round_trip_through_f64() {
        // Every id/time we emit is < 2^53, so f64 is lossless.
        let v = parse("9007199254740992").unwrap();
        assert_eq!(v.as_u64(), Some(1u64 << 53));
    }
}
