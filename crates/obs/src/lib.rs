//! Unified observability layer for proxide.
//!
//! This crate is the single home for everything the workspace measures:
//!
//! * **Causal call spans** — a [`SpanId`] is allocated when a proxy
//!   invocation starts, travels inside the RPC packet header, and is
//!   stamped onto server dispatches, retransmissions, one-way
//!   notifications and replies. Spans let a test assert end-to-end
//!   causality: every reply correlates with a span that was opened by a
//!   client, and every retransmission shares the span of its original
//!   request.
//! * **Latency histograms** — a dependency-free log₂-bucket
//!   [`Histogram`] records per-service/per-op invocation latency in
//!   simulated time and answers p50/p95/p99 queries.
//! * **A single [`MetricsRegistry`]** — the network counters
//!   ([`MetricsSnapshot`]), RPC counters ([`CallStats`], [`ServeStats`])
//!   and proxy/server counters ([`ProxyStats`], [`ServerStats`]) all
//!   land in one registry, which renders them as one serializable
//!   [`RunReport`].
//!
//! The counter structs are *defined* here and re-exported by the crates
//! that populate them (`simnet`, `rpc`, `proxy-core`), so a report is a
//! plain aggregate with no cross-crate mirroring.
//!
//! On top of the registry sits the **causal trace pipeline**: the
//! simulator feeds span records and network events (in the neutral
//! [`NetEvent`] form) into a [`TraceSink`], which merges them into one
//! time-ordered [`CausalTrace`]; [`export`] renders it as Chrome Trace
//! Format JSON or a JSONL log, and [`analysis`] decomposes every
//! request into queueing/wire/server/retransmit components.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

pub mod analysis;
pub mod export;
pub mod json;
pub mod profile;
pub mod timeseries;
pub mod trace;

pub use analysis::{critical_paths, link_attribution, top_k_slowest, CriticalPath, LinkStats};
pub use export::{
    from_jsonl, timeseries_to_csv, to_chrome_json, to_jsonl, validate_chrome, validate_report,
    validate_timeseries_csv, ChromeSummary, ReportSummary, TimeSeriesCsvSummary,
};
pub use profile::{
    profile_to_folded, scope, set_ambient_profiler, validate_folded, FoldedSummary, FrameStat,
    ProfileReport, ScopeGuard,
};
pub use timeseries::{GaugeStat, TimeSeries, TimeSeriesReport, WindowReport};
pub use trace::{CausalEvent, CausalTrace, Loc, NetEvent, NetEventKind, TraceSink};

// ---------------------------------------------------------------------------
// Span identifiers
// ---------------------------------------------------------------------------

/// Identifier of one causal call span.
///
/// Span ids are allocated by [`MetricsRegistry::open_span`] starting at 1;
/// the value 0 ([`SpanId::NONE`]) means "no span" and is what a packet
/// carries when it was sent outside any tracked invocation (e.g. name
/// service traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The absent span (wire value 0).
    pub const NONE: SpanId = SpanId(0);

    /// Raw wire representation.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Builds a span id back from its wire representation.
    pub fn from_raw(raw: u64) -> SpanId {
        SpanId(raw)
    }

    /// True if this is a real span (not [`SpanId::NONE`]).
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

impl std::fmt::Display for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 == 0 {
            write!(f, "sp:-")
        } else {
            write!(f, "sp:{}", self.0)
        }
    }
}

/// What kind of work a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// A client-side proxy invocation (opened by the client runtime).
    Invoke,
    /// A server-side dispatch of one request (child of an `Invoke`).
    Dispatch,
    /// A one-way notification (invalidate / recall / custom message).
    Oneway,
}

impl SpanKind {
    /// Short lowercase label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Invoke => "invoke",
            SpanKind::Dispatch => "dispatch",
            SpanKind::Oneway => "oneway",
        }
    }
}

/// One recorded span. All times are simulated nanoseconds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpanRecord {
    /// This span's id.
    pub id: SpanId,
    /// Parent span, or [`SpanId::NONE`] for roots.
    pub parent: SpanId,
    /// What the span covers.
    pub kind: SpanKind,
    /// Service name (client view for invokes, process name for dispatches).
    pub service: String,
    /// Operation name.
    pub op: String,
    /// When the span was opened.
    pub start_ns: u64,
    /// When the span was closed; `None` while still open.
    pub end_ns: Option<u64>,
    /// `Some(true)` if the spanned work succeeded, `Some(false)` if it
    /// failed, `None` while open.
    pub ok: Option<bool>,
    /// Number of retransmissions that reused this span's request.
    pub retransmissions: u64,
    /// Number of replies observed for this span (matched + late).
    pub replies: u64,
}

impl SpanRecord {
    /// Span duration, if closed.
    pub fn duration_ns(&self) -> Option<u64> {
        self.end_ns.map(|e| e.saturating_sub(self.start_ns))
    }
}

// ---------------------------------------------------------------------------
// Counter structs (canonical definitions, re-exported by their producers)
// ---------------------------------------------------------------------------

/// Counters maintained by the network simulator.
///
/// Produced by `simnet::Metrics::snapshot`; a [`RunReport`] embeds the
/// snapshot taken when the report was built.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Messages handed to the network.
    pub msgs_sent: u64,
    /// Messages delivered to a mailbox.
    pub msgs_delivered: u64,
    /// Messages dropped by loss or partitions.
    pub msgs_dropped: u64,
    /// Extra deliveries injected by duplication.
    pub msgs_duplicated: u64,
    /// Messages silently discarded by a blackhole rule.
    pub msgs_blackholed: u64,
    /// Total payload bytes handed to the network.
    pub bytes_sent: u64,
    /// Scheduler events dispatched.
    pub events_dispatched: u64,
    /// Simulated processes spawned over the run (threads and poll-driven
    /// state machines alike).
    pub processes_spawned: u64,
    /// High-water mark of simultaneously live processes — the number
    /// backing E16's memory-boundedness claim (peak × per-process state).
    ///
    /// This is a **gauge**, not a counter: [`MetricsSnapshot::since`]
    /// carries the later snapshot's level through instead of diffing it.
    pub processes_peak: u64,
    /// Events popped with a timestamp behind their domain's clock. A
    /// scheduler that respects causality never produces one; any nonzero
    /// value means the conservative-lookahead bound was violated (or a
    /// bug reordered the heap) and the run's timing data is suspect.
    pub sched_time_inversions: u64,
}

impl MetricsSnapshot {
    /// Difference between two snapshots (`self` minus the `earlier` one),
    /// saturating at zero per counter field. Gauge fields are not
    /// differences: `processes_peak` reports the later snapshot's level
    /// (the peak *as of* the window's end), because diffing a
    /// high-water mark like a counter yields 0 for any window where the
    /// peak did not rise.
    ///
    /// Destructures exhaustively so that adding a counter to the struct
    /// is a compile error here until the diff handles it too.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let MetricsSnapshot {
            msgs_sent,
            msgs_delivered,
            msgs_dropped,
            msgs_duplicated,
            msgs_blackholed,
            bytes_sent,
            events_dispatched,
            processes_spawned,
            processes_peak,
            sched_time_inversions,
        } = *self;
        let MetricsSnapshot {
            msgs_sent: e_sent,
            msgs_delivered: e_delivered,
            msgs_dropped: e_dropped,
            msgs_duplicated: e_duplicated,
            msgs_blackholed: e_blackholed,
            bytes_sent: e_bytes,
            events_dispatched: e_events,
            processes_spawned: e_spawned,
            processes_peak: _,
            sched_time_inversions: e_inversions,
        } = *earlier;
        MetricsSnapshot {
            msgs_sent: msgs_sent.saturating_sub(e_sent),
            msgs_delivered: msgs_delivered.saturating_sub(e_delivered),
            msgs_dropped: msgs_dropped.saturating_sub(e_dropped),
            msgs_duplicated: msgs_duplicated.saturating_sub(e_duplicated),
            msgs_blackholed: msgs_blackholed.saturating_sub(e_blackholed),
            bytes_sent: bytes_sent.saturating_sub(e_bytes),
            events_dispatched: events_dispatched.saturating_sub(e_events),
            processes_spawned: processes_spawned.saturating_sub(e_spawned),
            // Gauge: the peak as of the later snapshot, not a diff.
            processes_peak,
            sched_time_inversions: sched_time_inversions.saturating_sub(e_inversions),
        }
    }
}

/// Client-side RPC counters (at-most-once caller).
///
/// Canonical definition; `rpc` re-exports it and each `RpcClient` keeps
/// its own copy, while the registry aggregates across all clients.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallStats {
    /// Calls issued.
    pub calls: u64,
    /// Retransmissions (attempts beyond the first).
    pub retries: u64,
    /// Calls that exhausted every attempt.
    pub timeouts: u64,
    /// Replies that matched an already-completed call id.
    pub stale_replies: u64,
    /// Non-reply packets discarded while waiting.
    pub strays_dropped: u64,
}

impl CallStats {
    /// Field-wise sum.
    pub fn merge(&mut self, other: &CallStats) {
        let CallStats {
            calls,
            retries,
            timeouts,
            stale_replies,
            strays_dropped,
        } = *other;
        self.calls += calls;
        self.retries += retries;
        self.timeouts += timeouts;
        self.stale_replies += stale_replies;
        self.strays_dropped += strays_dropped;
    }
}

/// Server-side RPC counters (at-most-once executor).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Requests executed for the first time.
    pub executed: u64,
    /// Duplicate requests answered from the reply cache.
    pub duplicates_suppressed: u64,
    /// Duplicate requests dropped (already acknowledged).
    pub duplicates_dropped: u64,
    /// One-way messages received.
    pub oneways: u64,
    /// Packets that failed to decode.
    pub undecodable: u64,
}

impl ServeStats {
    /// Field-wise sum.
    pub fn merge(&mut self, other: &ServeStats) {
        let ServeStats {
            executed,
            duplicates_suppressed,
            duplicates_dropped,
            oneways,
            undecodable,
        } = *other;
        self.executed += executed;
        self.duplicates_suppressed += duplicates_suppressed;
        self.duplicates_dropped += duplicates_dropped;
        self.oneways += oneways;
        self.undecodable += undecodable;
    }
}

/// Per-proxy counters maintained by the client runtime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProxyStats {
    /// Invocations routed through the proxy.
    pub invocations: u64,
    /// Invocations satisfied locally (cache hit, checked-out object...).
    pub local_hits: u64,
    /// Invocations that crossed the network.
    pub remote_calls: u64,
    /// Invalidation notifications received.
    pub invalidations_rx: u64,
    /// Times the object migrated to this client.
    pub migrations: u64,
    /// Times the object was checked back in.
    pub checkins: u64,
    /// Times the proxy re-bound after losing its server.
    pub rebinds: u64,
    /// Times an adaptive proxy switched strategy.
    pub strategy_switches: u64,
    /// Datagrams the proxy received but could not service (callback
    /// requests, late duplicate replies, undecodable frames). Non-zero
    /// values flag traffic that used to vanish silently.
    pub datagrams_discarded: u64,
    /// Payloads the bulk data plane spilled to a blob store and shipped
    /// by reference instead of inline on the RPC path.
    pub bulk_spills: u64,
    /// Out-of-band references the proxy resolved (fetched chunked from a
    /// blob store) on behalf of its client.
    pub bulk_resolves: u64,
}

/// Per-service counters maintained by the service server.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Operations dispatched to the service object.
    pub dispatched: u64,
    /// Dispatches that mutated state.
    pub writes: u64,
    /// Invalidation notifications sent to subscribers.
    pub invalidations_sent: u64,
    /// Successful checkouts (migrations away).
    pub checkouts: u64,
    /// Successful checkins (migrations back).
    pub checkins: u64,
    /// Recall notifications sent to the current holder.
    pub recalls_sent: u64,
    /// Requests refused because the object was checked out.
    pub unavailable: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
}

// ---------------------------------------------------------------------------
// Log2-bucket histogram
// ---------------------------------------------------------------------------

/// Number of buckets: bucket `i` holds values whose bit length is `i`,
/// i.e. value 0 in bucket 0, values `[2^(i-1), 2^i)` in bucket `i`.
const BUCKETS: usize = 65;

/// A fixed-size log₂-bucket histogram of `u64` samples.
///
/// Recording is O(1) and allocation-free after construction; percentile
/// queries interpolate linearly inside the winning bucket, which keeps
/// the error within the bucket's factor-of-two width. That resolution is
/// plenty for latency distributions where the interesting differences
/// are multiples, not percents.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples, or 0 if empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Value at quantile `q` in `[0, 1]`, linearly interpolated inside
    /// the winning log₂ bucket and clamped to the observed min/max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the sample we want, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        // The top-ranked sample IS the observed maximum; interpolation
        // inside the winning bucket would undershoot it (it estimates
        // the bucket's (n-1)/n position, never the upper edge).
        if rank >= self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                let hi = if i == 0 {
                    0
                } else {
                    (1u64 << (i - 1)).saturating_mul(2).saturating_sub(1)
                };
                // Position of the wanted rank inside this bucket.
                let within = (rank - seen - 1) as f64 / n as f64;
                let est = lo as f64 + within * (hi.saturating_sub(lo)) as f64;
                return (est as u64).clamp(self.min(), self.max);
            }
            seen += n;
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Summarizes the histogram for a report.
    pub fn summary(&self) -> OpLatency {
        OpLatency {
            count: self.count(),
            min_ns: self.min(),
            max_ns: self.max(),
            mean_ns: self.mean(),
            p50_ns: self.p50(),
            p95_ns: self.p95(),
            p99_ns: self.p99(),
        }
    }
}

/// Latency summary for one `(service, op)` pair, in simulated nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpLatency {
    /// Samples recorded.
    pub count: u64,
    /// Fastest sample.
    pub min_ns: u64,
    /// Slowest sample.
    pub max_ns: u64,
    /// Mean.
    pub mean_ns: u64,
    /// Median estimate.
    pub p50_ns: u64,
    /// 95th percentile estimate.
    pub p95_ns: u64,
    /// 99th percentile estimate.
    pub p99_ns: u64,
}

// ---------------------------------------------------------------------------
// Slow-call watchdog
// ---------------------------------------------------------------------------

/// Configuration of the slow-call watchdog.
///
/// When enabled, every closing `Invoke` span is compared against a
/// threshold and pinned as an [`Exemplar`] when it exceeds it. The
/// threshold is the *lower* of the two triggers that apply:
///
/// * `multiplier × rolling p99` of the span's `(service, op)` histogram,
///   armed only once the histogram holds at least `min_samples` samples
///   (the p99 of three calls is noise, not a baseline);
/// * an absolute SLO in nanoseconds, if one is set.
///
/// The rolling p99 is computed *before* the closing span's own sample is
/// recorded, so an outlier cannot raise the bar it is judged against.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WatchdogConfig {
    /// Trigger factor over the rolling p99 (e.g. 3.0).
    pub multiplier: f64,
    /// Absolute latency SLO in nanoseconds, if any.
    pub slo_ns: Option<u64>,
    /// Samples the `(service, op)` histogram must hold before the
    /// relative trigger arms.
    pub min_samples: u64,
    /// Exemplar capacity; once full, further slow calls only bump
    /// [`RunReport::exemplars_suppressed`].
    pub max_exemplars: usize,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            multiplier: 3.0,
            slo_ns: None,
            min_samples: 32,
            max_exemplars: 16,
        }
    }
}

/// Queue/wire/server/retransmit decomposition of an exemplar's span,
/// copied from [`analysis::critical_paths`]. The four components tile
/// the span exactly: they sum to the exemplar's `latency_ns`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExemplarBreakdown {
    /// Time spent queued client-side before hitting the wire.
    pub queue_ns: u64,
    /// Time on the wire (requests and replies).
    pub wire_ns: u64,
    /// Time executing server-side.
    pub server_ns: u64,
    /// Time lost to retransmission gaps.
    pub retransmit_ns: u64,
    /// Retransmissions on the span's critical path.
    pub retransmissions: u64,
    /// Datagram drops attributed to the span.
    pub drops: u64,
}

/// One slow call pinned by the watchdog: the span, why it tripped, and
/// (once [`RunReport::attach_exemplars`] has run) where the time went.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Exemplar {
    /// The offending invoke span.
    pub span: SpanId,
    /// Service the call targeted.
    pub service: String,
    /// Operation invoked.
    pub op: String,
    /// When the call started (simulated nanoseconds).
    pub start_ns: u64,
    /// Observed end-to-end latency.
    pub latency_ns: u64,
    /// The threshold the call exceeded.
    pub threshold_ns: u64,
    /// Rolling p99 at trip time (0 if the relative trigger was unarmed).
    pub p99_ns: u64,
    /// Which trigger tripped: `"p99"` or `"slo"`.
    pub trigger: &'static str,
    /// Whether the call ultimately succeeded.
    pub ok: bool,
    /// Causal decomposition; `None` until attached from a trace.
    pub breakdown: Option<ExemplarBreakdown>,
}

/// Provenance of a run, stamped into [`RunReport`] and `BENCH_*.json`
/// artifacts so tooling can refuse to compare incomparable runs.
/// Everything is optional: fields the harness cannot know stay absent
/// rather than inventing values.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunMeta {
    /// RNG seed the simulation ran with.
    pub seed: Option<u64>,
    /// Workload mode label (e.g. `"full"` / `"smoke"`).
    pub mode: Option<String>,
    /// Hash of the workload configuration.
    pub config_hash: Option<String>,
    /// Git revision of the tree, when available.
    pub git_rev: Option<String>,
    /// ISO date supplied by the harness, when available.
    pub date: Option<String>,
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// How a reply related to the span it carried when it was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyKind {
    /// Reply for a span that was still open — the normal case.
    Matched,
    /// Reply for a span that had already closed (duplicate or stale).
    Late,
    /// Reply carried a span id the registry never allocated.
    UnknownSpan,
    /// Reply carried no span (sent outside any tracked invocation).
    Untracked,
}

/// Per-`(service, op)` fold of retired spans.
///
/// When span retirement is on ([`MetricsRegistry::enable_retirement`]),
/// a closed span is evicted from the table and everything the report
/// still needs from it lands here, so the totals in [`SpanReport`] are
/// exact even though the records themselves are gone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct RetiredAgg {
    /// Invoke spans folded in.
    invokes: u64,
    /// Dispatch spans folded in.
    dispatches: u64,
    /// One-way spans folded in.
    oneways: u64,
    /// Retransmissions the folded spans had accumulated at close time.
    retransmissions: u64,
}

/// One statistics stripe. Every `(service, op)` key lives wholly in one
/// stripe (picked by key hash), so per-key state — the latency
/// histogram the watchdog judges against and the retired-span
/// aggregate — never needs cross-stripe merging and the report merge
/// stays deterministic for any stripe count.
#[derive(Debug, Default)]
struct StatStripe {
    /// Per `(service, op)` latency histograms.
    hists: HashMap<(String, String), Histogram>,
    /// Per `(service, op)` folds of retired spans.
    retired: HashMap<(String, String), RetiredAgg>,
}

/// One stripe of the hot RPC counters. Cache-line aligned so stripes on
/// different cores never false-share; every field is a relaxed atomic
/// because the counters are pure sums with no cross-field invariants.
#[derive(Debug, Default)]
#[repr(align(128))]
struct CounterCell {
    calls: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    stale_replies: AtomicU64,
    strays_dropped: AtomicU64,
    executed: AtomicU64,
    duplicates_suppressed: AtomicU64,
    duplicates_dropped: AtomicU64,
    oneways: AtomicU64,
    undecodable: AtomicU64,
    replies_matched: AtomicU64,
    replies_late: AtomicU64,
    replies_unknown_span: AtomicU64,
    replies_untracked: AtomicU64,
}

/// Cold, rarely-written registry state behind a single mutex: published
/// snapshots, the flight recorder, the watchdog and its exemplars, and
/// run provenance. Nothing on the per-call hot path touches this lock
/// unless the corresponding feature is armed.
#[derive(Debug, Default)]
struct MiscInner {
    /// Last published per-proxy stats, keyed `service@owner`.
    proxies: BTreeMap<String, ProxyStats>,
    /// Last published per-service server stats, keyed by service name.
    servers: BTreeMap<String, ServerStats>,
    /// Slow-call watchdog, when enabled.
    watchdog: Option<WatchdogConfig>,
    /// Exemplars the watchdog has pinned so far.
    exemplars: Vec<Exemplar>,
    /// Slow calls seen after the exemplar buffer filled.
    exemplars_suppressed: u64,
    /// Run provenance stamped by the harness.
    meta: RunMeta,
}

/// Self-measurement of the observability plane: what the plane itself
/// costs, reported as first-class gauges inside the report it produces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsPlaneReport {
    /// Closed spans folded into per-`(service, op)` aggregates and
    /// evicted from the span table.
    pub spans_retired: u64,
    /// Closed spans the retirement sampler kept resident (exemplars for
    /// the flight recorder and critical-path analysis).
    pub spans_sampled: u64,
    /// Spans resident in the table at report time (open + sampled).
    pub spans_resident: u64,
    /// High-water mark of resident spans over the run.
    pub spans_resident_peak: u64,
    /// Estimated resident span-table bytes at report time (record
    /// struct plus its service/op string payloads).
    pub span_table_bytes: u64,
    /// High-water mark of the span-table byte estimate.
    pub span_table_bytes_peak: u64,
    /// Wall-clock nanoseconds spent inside registry calls while
    /// self-measurement was on (0 when it never was).
    pub self_ns: u64,
    /// Registry calls timed by self-measurement.
    pub self_calls: u64,
}

/// Default number of span-table shards.
const DEFAULT_SPAN_SHARDS: usize = 16;
/// Default number of `(service, op)` statistic stripes.
const DEFAULT_STAT_STRIPES: usize = 8;
/// Number of hot-counter stripes (fixed; must be a power of two).
const COUNTER_STRIPES: usize = 8;

/// FNV-1a over a `(service, op)` key, for stripe selection.
fn key_hash(service: &str, op: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(service.as_bytes());
    eat(&[0xff]);
    eat(op.as_bytes());
    h
}

/// Byte estimate of one resident span record: the struct itself plus
/// its heap-owned string payloads. Deliberately `len`-based (not
/// capacity) so the estimate is identical across shard counts.
fn span_bytes(rec: &SpanRecord) -> u64 {
    (std::mem::size_of::<SpanRecord>() + rec.service.len() + rec.op.len()) as u64
}

/// The process-wide sink for spans, histograms and counters.
///
/// One registry is shared by every process of a simulation (it hangs off
/// the scheduler's shared state), so a single [`RunReport`] covers the
/// whole run. All methods take `&self`; interior mutability keeps the
/// call sites free of plumbing.
///
/// Internally the registry is sharded so a million-client run can leave
/// it on: span records live in id-keyed shards, per-`(service, op)`
/// statistics (histograms, retirement aggregates, the watchdog's
/// rolling p99) live in key-hashed stripes, and the hot RPC counters
/// are striped relaxed atomics. [`MetricsRegistry::report`] merges all
/// of it deterministically: every per-key statistic lives wholly in one
/// stripe, every cross-shard sum is commutative, and map output is
/// key-ordered — so the report is byte-identical for any shard or
/// stripe count.
#[derive(Debug)]
pub struct MetricsRegistry {
    /// High-water mark of allocated span ids (ids are lane-striped, so
    /// this is a watermark, not a count — see [`MetricsRegistry::span_count`]
    /// for the count). Used by the reply/retransmit plausibility checks:
    /// any id above the watermark was certainly never allocated.
    next_span: AtomicU64,
    /// Mirrors "the flight recorder is on" so hot paths can skip the
    /// lane lock (and the series-name formatting feeding it) with a
    /// single relaxed load when the recorder is off.
    ts_enabled: AtomicBool,
    /// Mirrors `misc.watchdog.is_some()` for the same reason.
    wd_enabled: AtomicBool,
    /// Master switch: when off the whole plane is inert — `open_span`
    /// returns [`SpanId::NONE`] and every recording call is a no-op.
    enabled: AtomicBool,
    // -- retirement --
    retire_enabled: AtomicBool,
    /// Keep every nth closed span resident (0 = keep none).
    retire_keep_every: AtomicU64,
    retired: AtomicU64,
    sampled_kept: AtomicU64,
    /// Retransmissions noted for spans already retired (attributable to
    /// the run but no longer to a record).
    retired_retransmissions: AtomicU64,
    // -- self-measurement --
    sm_enabled: AtomicBool,
    self_ns: AtomicU64,
    self_calls: AtomicU64,
    // -- continuous profiler (see [`profile`]) --
    /// Mirrors "the profiler is on" for the hot-path relaxed-load check
    /// ([`MetricsRegistry::profile_enabled`]), like `ts_enabled`.
    prof_enabled: AtomicBool,
    /// Per-lane frame-table bound, preserved across `set_writer_lanes`.
    prof_max_frames: AtomicU64,
    /// Wall time the profiler spent folding (its own overhead).
    prof_self_ns: AtomicU64,
    prof_self_calls: AtomicU64,
    // -- writer lanes --
    /// Per-lane sequenced state. Each concurrent deterministic writer
    /// (a scheduler domain) owns one lane, selected by the thread's
    /// ambient lane ([`set_ambient_lane`]): span-id striping, the
    /// retirement sampler's close sequence, residency gauges, and the
    /// flight recorder all advance per lane so parallel domains never
    /// interleave on order-sensitive state. One lane (the default)
    /// reproduces the unstriped behavior exactly. Unlike the shard /
    /// stripe layout, the lane count is part of the run configuration:
    /// it changes span ids and sampling decisions, the way a different
    /// seed would.
    lanes: Box<[WriterLane]>,
    // -- sharded state --
    span_shards: Box<[Mutex<HashMap<u64, SpanRecord>>]>,
    stripes: Box<[Mutex<StatStripe>]>,
    counters: Box<[CounterCell]>,
    misc: Mutex<MiscInner>,
}

/// Per-writer-lane sequenced state (see [`MetricsRegistry::lanes`]).
#[derive(Debug, Default)]
struct WriterLane {
    /// Spans this lane has opened; span id = `count * nlanes + lane + 1`.
    spans_opened: AtomicU64,
    /// Lane-local close sequence driving the keep-every-nth retirement
    /// sampler (lane-local so the decision is independent of how the
    /// other lanes interleave; still independent of the shard count).
    closed_seq: AtomicU64,
    // Residency gauges. A span is opened, closed and retired by the
    // same simulated process, hence the same lane, so lane-local
    // current values are exact; the cross-lane peak is reported as the
    // sum of lane peaks — a deterministic upper bound on the true
    // concurrent peak (exact with one lane).
    resident: AtomicU64,
    resident_peak: AtomicU64,
    table_bytes: AtomicU64,
    table_bytes_peak: AtomicU64,
    /// This lane's slice of the flight recorder, when enabled. Reports
    /// merge the lanes deterministically (see [`TimeSeries::merged`]).
    timeseries: Mutex<Option<TimeSeries>>,
    /// This lane's slice of the continuous profiler, when enabled
    /// (bounded folded-stack table; see [`profile::ProfileLane`]).
    profile: Mutex<Option<profile::ProfileLane>>,
}

thread_local! {
    /// The lane this thread writes to; see [`set_ambient_lane`].
    static AMBIENT_LANE: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Declares which writer lane the calling thread records into (clamped
/// modulo the registry's lane count at use). The simulator sets this on
/// every thread that executes a scheduler domain — worker threads before
/// each domain round, simulated-process threads once at spawn — so that
/// all order-sensitive observability state advances deterministically
/// per domain. Threads that never call this write to lane 0.
pub fn set_ambient_lane(lane: usize) {
    AMBIENT_LANE.with(|l| l.set(lane));
}

/// The calling thread's current writer lane (unclamped).
pub fn ambient_lane() -> usize {
    AMBIENT_LANE.with(|l| l.get())
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::with_layout(DEFAULT_SPAN_SHARDS, DEFAULT_STAT_STRIPES)
    }
}

impl Drop for MetricsRegistry {
    fn drop(&mut self) {
        // Keep the process-wide "any profiler armed" fast-path count
        // balanced when an armed registry goes away (see `profile`).
        if self.prof_enabled.load(Ordering::Relaxed) {
            profile::active_dec();
        }
    }
}

/// What `close_span` carries out of the span-shard phase into the
/// stripe phase.
struct ClosedSpan {
    kind: SpanKind,
    start_ns: u64,
    service: String,
    op: String,
    /// `Some(retransmissions)` when the record was retired and must be
    /// folded into the stripe's aggregate.
    fold_retransmissions: Option<u64>,
}

impl MetricsRegistry {
    /// A fresh registry with the default shard layout.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// A registry with an explicit shard layout (rounded up to powers
    /// of two, clamped to at least 1). The layout affects contention and
    /// memory granularity only — never the report: byte-identical
    /// output for any layout is a tested invariant.
    pub fn with_layout(span_shards: usize, stat_stripes: usize) -> MetricsRegistry {
        let span_shards = span_shards.clamp(1, 1 << 16).next_power_of_two();
        let stat_stripes = stat_stripes.clamp(1, 1 << 16).next_power_of_two();
        MetricsRegistry {
            next_span: AtomicU64::new(0),
            ts_enabled: AtomicBool::new(false),
            wd_enabled: AtomicBool::new(false),
            enabled: AtomicBool::new(true),
            retire_enabled: AtomicBool::new(false),
            retire_keep_every: AtomicU64::new(0),
            retired: AtomicU64::new(0),
            sampled_kept: AtomicU64::new(0),
            retired_retransmissions: AtomicU64::new(0),
            sm_enabled: AtomicBool::new(false),
            self_ns: AtomicU64::new(0),
            self_calls: AtomicU64::new(0),
            prof_enabled: AtomicBool::new(false),
            prof_max_frames: AtomicU64::new(0),
            prof_self_ns: AtomicU64::new(0),
            prof_self_calls: AtomicU64::new(0),
            lanes: (0..1).map(|_| WriterLane::default()).collect(),
            span_shards: (0..span_shards)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            stripes: (0..stat_stripes)
                .map(|_| Mutex::new(StatStripe::default()))
                .collect(),
            counters: (0..COUNTER_STRIPES)
                .map(|_| CounterCell::default())
                .collect(),
            misc: Mutex::new(MiscInner::default()),
        }
    }

    /// Sets the number of writer lanes (clamped to ≥ 1). One lane per
    /// concurrent deterministic writer — the simulator calls this with
    /// its domain count before any span opens. Unlike the shard/stripe
    /// layout this is run *configuration*: span ids are striped across
    /// lanes and the retirement sampler advances per lane, so a
    /// different lane count is a different (equally valid) run. Must be
    /// called before recording starts — it resets lane-sequenced state.
    pub fn set_writer_lanes(&mut self, n: usize) {
        let n = n.max(1);
        let recorder = self.lanes[0]
            .timeseries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(|ts| (ts.width_ns(), ts.capacity()));
        self.lanes = (0..n).map(|_| WriterLane::default()).collect();
        if let Some((width, cap)) = recorder {
            self.enable_timeseries(width, cap);
        }
        self.prof_rearm_lanes();
    }

    /// How many writer lanes the registry has.
    pub fn writer_lanes(&self) -> usize {
        self.lanes.len()
    }

    #[inline]
    fn on(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn shard(&self, id: u64) -> std::sync::MutexGuard<'_, HashMap<u64, SpanRecord>> {
        let idx = (id as usize).wrapping_sub(1) & (self.span_shards.len() - 1);
        self.span_shards[idx]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    fn stripe(&self, service: &str, op: &str) -> std::sync::MutexGuard<'_, StatStripe> {
        let idx = (key_hash(service, op) as usize) & (self.stripes.len() - 1);
        self.stripes[idx].lock().unwrap_or_else(|e| e.into_inner())
    }

    fn misc(&self) -> std::sync::MutexGuard<'_, MiscInner> {
        self.misc.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The calling thread's writer-lane index.
    #[inline]
    fn lane_idx(&self) -> usize {
        ambient_lane() % self.lanes.len()
    }

    /// The calling thread's writer lane.
    #[inline]
    fn lane(&self) -> &WriterLane {
        &self.lanes[self.lane_idx()]
    }

    /// The calling thread's counter stripe. Threads are assigned
    /// round-robin on first use; the report sums all stripes, so the
    /// assignment never shows in the output.
    fn cell(&self) -> &CounterCell {
        use std::cell::Cell;
        use std::sync::atomic::AtomicUsize;
        thread_local! {
            static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
        }
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let idx = STRIPE.with(|s| {
            let mut i = s.get();
            if i == usize::MAX {
                i = NEXT.fetch_add(1, Ordering::Relaxed);
                s.set(i);
            }
            i
        });
        &self.counters[idx & (COUNTER_STRIPES - 1)]
    }

    #[inline]
    fn sm_start(&self) -> Option<std::time::Instant> {
        if self.sm_enabled.load(Ordering::Relaxed) {
            Some(std::time::Instant::now())
        } else {
            None
        }
    }

    #[inline]
    fn sm_end(&self, t0: Option<std::time::Instant>) {
        if let Some(t0) = t0 {
            let ns = t0.elapsed().as_nanos() as u64;
            self.self_ns.fetch_add(ns, Ordering::Relaxed);
            self.self_calls.fetch_add(1, Ordering::Relaxed);
            // Piggyback the already-measured duration into the profiler
            // (zero extra clock reads for the measured section itself).
            if self.profile_enabled() {
                self.prof_fold("obs;self_measure", 1, ns);
            }
        }
    }

    /// Bookkeeping for a record leaving the table. Retire happens on
    /// the same lane that opened the span (same simulated process), so
    /// the lane-local residency gauges stay exact.
    fn note_evicted(&self, rec: &SpanRecord) {
        let lane = self.lane();
        self.retired.fetch_add(1, Ordering::Relaxed);
        lane.resident.fetch_sub(1, Ordering::Relaxed);
        lane.table_bytes
            .fetch_sub(span_bytes(rec), Ordering::Relaxed);
    }

    /// The keep-every-nth retirement sampling decision for the next
    /// closed span (also advances the calling lane's close sequence;
    /// lane-local so the decision is independent of how concurrent
    /// lanes interleave, and of the shard count as before).
    fn retire_keeps(&self) -> bool {
        let seq = self.lane().closed_seq.fetch_add(1, Ordering::Relaxed) + 1;
        match self.retire_keep_every.load(Ordering::Relaxed) {
            0 => false,
            n => seq.is_multiple_of(n),
        }
    }

    // -- switches ----------------------------------------------------------

    /// Master switch for the whole plane. When off, `open_span` returns
    /// [`SpanId::NONE`] (which makes every downstream span call a no-op)
    /// and counters stop accumulating — the obs-off leg of overhead
    /// experiments. On by default.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// True when the plane is recording (the default).
    pub fn is_enabled(&self) -> bool {
        self.on()
    }

    /// Arms span retirement: closed `Invoke`/`Dispatch`/`Oneway` spans
    /// fold into per-`(service, op)` aggregates and are evicted from the
    /// table, keeping the resident working set O(open spans + sampled
    /// exemplars) instead of O(total calls). `keep_every = n` keeps
    /// every nth closed span resident as a sampled exemplar for traces
    /// (`0` keeps none). Off by default — without retirement every span
    /// stays resident, the pre-retirement behavior.
    pub fn enable_retirement(&self, keep_every: u64) {
        self.retire_keep_every.store(keep_every, Ordering::Relaxed);
        self.retire_enabled.store(true, Ordering::Relaxed);
    }

    /// True when span retirement is armed.
    pub fn retirement_enabled(&self) -> bool {
        self.retire_enabled.load(Ordering::Relaxed)
    }

    /// Arms self-measurement: every registry call is timed with a
    /// monotonic clock and accumulated into the `self_ns`/`self_calls`
    /// gauges of [`ObsPlaneReport`]. Off by default (two clock reads
    /// per call are not free — that is the point of measuring).
    pub fn enable_self_measure(&self) {
        self.sm_enabled.store(true, Ordering::Relaxed);
    }

    // -- spans ------------------------------------------------------------

    /// Opens a span and returns its id (never [`SpanId::NONE`] while the
    /// plane is enabled; always [`SpanId::NONE`] when disabled).
    pub fn open_span(
        &self,
        kind: SpanKind,
        parent: SpanId,
        service: &str,
        op: &str,
        now_ns: u64,
    ) -> SpanId {
        if !self.on() {
            return SpanId::NONE;
        }
        let t0 = self.sm_start();
        // Ids are striped across writer lanes: lane `l` of `n` allocates
        // `count*n + l + 1`, so concurrent lanes never contend and every
        // lane's sequence is deterministic. One lane degenerates to the
        // dense `count + 1` sequence. `next_span` tracks the high-water
        // mark for the plausibility checks.
        let li = self.lane_idx();
        let lane = &self.lanes[li];
        let nlanes = self.lanes.len() as u64;
        let count = lane.spans_opened.fetch_add(1, Ordering::Relaxed);
        let id = SpanId(count * nlanes + li as u64 + 1);
        self.next_span.fetch_max(id.0, Ordering::Relaxed);
        let rec = SpanRecord {
            id,
            parent,
            kind,
            service: service.to_string(),
            op: op.to_string(),
            start_ns: now_ns,
            end_ns: None,
            ok: None,
            retransmissions: 0,
            replies: 0,
        };
        let bytes = span_bytes(&rec);
        self.shard(id.0).insert(id.0, rec);
        let resident = lane.resident.fetch_add(1, Ordering::Relaxed) + 1;
        lane.resident_peak.fetch_max(resident, Ordering::Relaxed);
        let total = lane.table_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        lane.table_bytes_peak.fetch_max(total, Ordering::Relaxed);
        self.sm_end(t0);
        id
    }

    /// Closes a span and, for `Invoke` and `Dispatch` spans, records its
    /// duration into the `(service, op)` histogram. Closing
    /// [`SpanId::NONE`] or an already-closed span is a no-op. When
    /// retirement is armed the closed record folds into its stripe's
    /// aggregate and leaves the table (unless the sampler keeps it).
    pub fn close_span(&self, id: SpanId, now_ns: u64, ok: bool) {
        if !id.is_some() || !self.on() {
            return;
        }
        let t0 = self.sm_start();
        // Phase 1 — span shard: close the record, decide retirement.
        let closed: ClosedSpan = {
            let mut shard = self.shard(id.0);
            let retire;
            let kind;
            let start_ns;
            {
                let Some(rec) = shard.get_mut(&id.0) else {
                    self.sm_end(t0);
                    return;
                };
                if rec.end_ns.is_some() {
                    self.sm_end(t0);
                    return;
                }
                rec.end_ns = Some(now_ns);
                rec.ok = Some(ok);
                kind = rec.kind;
                start_ns = rec.start_ns;
                retire = self.retire_enabled.load(Ordering::Relaxed)
                    && matches!(kind, SpanKind::Invoke | SpanKind::Dispatch);
            }
            if retire && !self.retire_keeps() {
                let rec = shard.remove(&id.0).expect("record just closed");
                self.note_evicted(&rec);
                ClosedSpan {
                    kind,
                    start_ns,
                    service: rec.service,
                    op: rec.op,
                    fold_retransmissions: Some(rec.retransmissions),
                }
            } else {
                if retire {
                    self.sampled_kept.fetch_add(1, Ordering::Relaxed);
                }
                let rec = shard.get(&id.0).expect("record just closed");
                ClosedSpan {
                    kind,
                    start_ns,
                    service: rec.service.clone(),
                    op: rec.op.clone(),
                    fold_retransmissions: None,
                }
            }
        };
        let dur = now_ns.saturating_sub(closed.start_ns);
        // The watchdog judges the closing call against the p99 of the
        // calls *before* it, so the outlier cannot raise its own bar.
        let wd = if closed.kind == SpanKind::Invoke && self.wd_enabled.load(Ordering::Relaxed) {
            self.misc().watchdog
        } else {
            None
        };
        // Phase 2 — stat stripe: watchdog judgment, histogram, fold.
        let key = (closed.service, closed.op);
        let mut tripped: Option<(u64, &'static str, u64)> = None;
        {
            let mut stripe = self.stripe(&key.0, &key.1);
            if let Some(cfg) = wd {
                let p99 = stripe
                    .hists
                    .get(&key)
                    .filter(|h| h.count() >= cfg.min_samples)
                    .map(|h| h.p99())
                    .unwrap_or(0);
                let rel = if p99 > 0 {
                    Some((cfg.multiplier * p99 as f64) as u64)
                } else {
                    None
                };
                tripped = match (rel, cfg.slo_ns) {
                    (Some(r), Some(s)) if dur > r.min(s) => Some(if r <= s {
                        (r, "p99", p99)
                    } else {
                        (s, "slo", p99)
                    }),
                    (Some(r), None) if dur > r => Some((r, "p99", p99)),
                    (None, Some(s)) if dur > s => Some((s, "slo", p99)),
                    _ => None,
                };
            }
            if matches!(closed.kind, SpanKind::Invoke | SpanKind::Dispatch) {
                stripe.hists.entry(key.clone()).or_default().record(dur);
            }
            if let Some(retx) = closed.fold_retransmissions {
                let agg = stripe.retired.entry(key.clone()).or_default();
                match closed.kind {
                    SpanKind::Invoke => agg.invokes += 1,
                    SpanKind::Dispatch => agg.dispatches += 1,
                    SpanKind::Oneway => agg.oneways += 1,
                }
                agg.retransmissions += retx;
            }
        }
        // Phase 3 — misc: exemplar pinning and the flight recorder.
        if let Some((threshold_ns, trigger, p99)) = tripped {
            let mut misc = self.misc();
            let cap = misc.watchdog.map_or(0, |c| c.max_exemplars);
            if misc.exemplars.len() < cap {
                let exemplar = Exemplar {
                    span: id,
                    service: key.0.clone(),
                    op: key.1.clone(),
                    start_ns: closed.start_ns,
                    latency_ns: dur,
                    threshold_ns,
                    p99_ns: p99,
                    trigger,
                    ok,
                    breakdown: None,
                };
                misc.exemplars.push(exemplar);
            } else {
                misc.exemplars_suppressed += 1;
            }
        }
        if closed.kind == SpanKind::Invoke && self.ts_enabled.load(Ordering::Relaxed) {
            let mut guard = self
                .lane()
                .timeseries
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if let Some(ts) = guard.as_mut() {
                let outcome = if ok { "calls_ok" } else { "calls_err" };
                ts.add(now_ns, &format!("{outcome}@{}", key.0), 1);
                ts.observe(now_ns, &format!("latency@{}", key.0), dur);
            }
        }
        self.sm_end(t0);
    }

    /// Notes a retransmission of the request belonging to `id`. A span
    /// already retired counts toward the run total without a record to
    /// land on.
    pub fn span_retransmit(&self, id: SpanId) {
        if !id.is_some() || !self.on() {
            return;
        }
        let t0 = self.sm_start();
        let mut shard = self.shard(id.0);
        match shard.get_mut(&id.0) {
            Some(rec) => rec.retransmissions += 1,
            None => {
                if id.0 <= self.next_span.load(Ordering::Relaxed) {
                    self.retired_retransmissions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        drop(shard);
        self.sm_end(t0);
    }

    /// Like [`MetricsRegistry::span_retransmit`], but with a timestamp
    /// so the retransmission also lands in the `retx@<service>` window
    /// of the flight recorder (when enabled).
    pub fn span_retransmit_at(&self, id: SpanId, now_ns: u64) {
        if !id.is_some() || !self.on() {
            return;
        }
        let t0 = self.sm_start();
        let mut service: Option<String> = None;
        {
            let mut shard = self.shard(id.0);
            match shard.get_mut(&id.0) {
                Some(rec) => {
                    rec.retransmissions += 1;
                    if self.ts_enabled.load(Ordering::Relaxed) {
                        service = Some(rec.service.clone());
                    }
                }
                None => {
                    if id.0 <= self.next_span.load(Ordering::Relaxed) {
                        self.retired_retransmissions.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        if let Some(service) = service {
            self.ts_add(now_ns, &format!("retx@{service}"), 1);
        }
        self.sm_end(t0);
    }

    /// Notes a reply observed for the raw wire span `raw` and classifies
    /// it against the registry's span table. A reply for a span that was
    /// allocated but has since been retired is `Late` — retirement only
    /// ever evicts *closed* spans, so any further reply is by definition
    /// a duplicate or stale one.
    pub fn span_reply(&self, raw: u64, _now_ns: u64) -> ReplyKind {
        if !self.on() {
            return ReplyKind::Untracked;
        }
        let t0 = self.sm_start();
        let kind = if raw == 0 {
            self.cell()
                .replies_untracked
                .fetch_add(1, Ordering::Relaxed);
            ReplyKind::Untracked
        } else if raw > self.next_span.load(Ordering::Relaxed) {
            self.cell()
                .replies_unknown_span
                .fetch_add(1, Ordering::Relaxed);
            ReplyKind::UnknownSpan
        } else {
            let mut shard = self.shard(raw);
            match shard.get_mut(&raw) {
                Some(rec) => {
                    rec.replies += 1;
                    if rec.end_ns.is_some() {
                        self.cell().replies_late.fetch_add(1, Ordering::Relaxed);
                        ReplyKind::Late
                    } else {
                        self.cell().replies_matched.fetch_add(1, Ordering::Relaxed);
                        ReplyKind::Matched
                    }
                }
                None => {
                    self.cell().replies_late.fetch_add(1, Ordering::Relaxed);
                    ReplyKind::Late
                }
            }
        };
        self.sm_end(t0);
        kind
    }

    /// Records a one-way notification as an immediately-closed span
    /// parented to `parent` (commonly the dispatch span that triggered
    /// the notification). Returns the new span's id.
    pub fn note_oneway(&self, parent: SpanId, service: &str, op: &str, now_ns: u64) -> SpanId {
        if !self.on() {
            return SpanId::NONE;
        }
        let id = self.open_span(SpanKind::Oneway, parent, service, op, now_ns);
        let t0 = self.sm_start();
        let mut fold = false;
        {
            let mut shard = self.shard(id.0);
            if let Some(rec) = shard.get_mut(&id.0) {
                // Close without touching the latency histograms: a
                // one-way has no observable duration.
                rec.end_ns = Some(now_ns);
                rec.ok = Some(true);
                if self.retire_enabled.load(Ordering::Relaxed) {
                    if self.retire_keeps() {
                        self.sampled_kept.fetch_add(1, Ordering::Relaxed);
                    } else {
                        let rec = shard.remove(&id.0).expect("record just closed");
                        self.note_evicted(&rec);
                        fold = true;
                    }
                }
            }
        }
        if fold {
            self.stripe(service, op)
                .retired
                .entry((service.to_string(), op.to_string()))
                .or_default()
                .oneways += 1;
        }
        self.sm_end(t0);
        id
    }

    /// Visits every resident span in ascending id order. This replaces
    /// the old `spans()` full-table clone: the visitor borrows each
    /// record in place (one shard lock at a time), so building a trace
    /// or checking invariants costs O(resident), not O(all-time) heap.
    pub fn for_each_span(&self, mut f: impl FnMut(&SpanRecord)) {
        let mut ids: Vec<u64> = Vec::new();
        for shard in self.span_shards.iter() {
            let s = shard.lock().unwrap_or_else(|e| e.into_inner());
            ids.extend(s.keys().copied());
        }
        ids.sort_unstable();
        for id in ids {
            let s = self.shard(id);
            if let Some(rec) = s.get(&id) {
                f(rec);
            }
        }
    }

    /// Copy of one resident span record, if `id` is still in the table.
    pub fn span_record(&self, id: SpanId) -> Option<SpanRecord> {
        if !id.is_some() {
            return None;
        }
        self.shard(id.0).get(&id.0).cloned()
    }

    /// Number of spans opened so far (summed over writer lanes).
    pub fn span_count(&self) -> u64 {
        self.lanes
            .iter()
            .map(|l| l.spans_opened.load(Ordering::Relaxed))
            .sum()
    }

    /// Spans currently resident in the table (open + retained).
    pub fn resident_spans(&self) -> u64 {
        self.lanes
            .iter()
            .map(|l| l.resident.load(Ordering::Relaxed))
            .sum()
    }

    /// The plane's self-measurement gauges, as they stand right now.
    /// Current values are exact lane sums; the peaks are the sum of
    /// per-lane peaks — a deterministic upper bound on the true
    /// concurrent peak (exact with one writer lane).
    pub fn obs_plane(&self) -> ObsPlaneReport {
        let lsum = |field: fn(&WriterLane) -> &AtomicU64| -> u64 {
            self.lanes
                .iter()
                .map(|l| field(l).load(Ordering::Relaxed))
                .sum()
        };
        ObsPlaneReport {
            spans_retired: self.retired.load(Ordering::Relaxed),
            spans_sampled: self.sampled_kept.load(Ordering::Relaxed),
            spans_resident: lsum(|l| &l.resident),
            spans_resident_peak: lsum(|l| &l.resident_peak),
            span_table_bytes: lsum(|l| &l.table_bytes),
            span_table_bytes_peak: lsum(|l| &l.table_bytes_peak),
            self_ns: self.self_ns.load(Ordering::Relaxed),
            self_calls: self.self_calls.load(Ordering::Relaxed),
        }
    }

    /// Checks the structural causality invariants of the span table and
    /// returns a human-readable description of each violation:
    ///
    /// * every parent reference points at an allocated span,
    /// * a child span never starts before its parent (when the parent is
    ///   still resident — a retired parent was a valid closed span),
    /// * every `Dispatch` span has an `Invoke` or `Dispatch` parent,
    /// * no reply was observed for a span id that was never allocated.
    pub fn verify_causality(&self) -> Vec<String> {
        let allocated = self.next_span.load(Ordering::Relaxed);
        let mut spans: Vec<SpanRecord> = Vec::new();
        self.for_each_span(|rec| spans.push(rec.clone()));
        let by_id: HashMap<u64, usize> =
            spans.iter().enumerate().map(|(i, r)| (r.id.0, i)).collect();
        let mut violations = Vec::new();
        for rec in &spans {
            if rec.parent.is_some() {
                if rec.parent.0 > allocated {
                    violations.push(format!(
                        "{} ({} {}/{}) has unallocated parent {}",
                        rec.id,
                        rec.kind.label(),
                        rec.service,
                        rec.op,
                        rec.parent
                    ));
                } else if let Some(&pi) = by_id.get(&rec.parent.0) {
                    let parent = &spans[pi];
                    if rec.start_ns < parent.start_ns {
                        violations.push(format!(
                            "{} starts at {}ns before its parent {} at {}ns",
                            rec.id, rec.start_ns, parent.id, parent.start_ns
                        ));
                    }
                    if rec.kind == SpanKind::Dispatch && parent.kind == SpanKind::Oneway {
                        violations.push(format!(
                            "dispatch {} is parented to one-way {}",
                            rec.id, parent.id
                        ));
                    }
                }
                // An allocated-but-absent parent was retired: it closed
                // validly, nothing left to cross-check.
            }
        }
        let unknown: u64 = self
            .counters
            .iter()
            .map(|c| c.replies_unknown_span.load(Ordering::Relaxed))
            .sum();
        if unknown > 0 {
            violations.push(format!(
                "{unknown} replies carried span ids never allocated"
            ));
        }
        violations
    }

    // -- latency ----------------------------------------------------------

    /// Records a latency sample for `(service, op)` directly (spans do
    /// this automatically when closed).
    pub fn record_latency(&self, service: &str, op: &str, ns: u64) {
        if !self.on() {
            return;
        }
        let t0 = self.sm_start();
        self.stripe(service, op)
            .hists
            .entry((service.to_string(), op.to_string()))
            .or_default()
            .record(ns);
        self.sm_end(t0);
    }

    /// Copy of the histogram for `(service, op)`, if any sample landed.
    pub fn histogram(&self, service: &str, op: &str) -> Option<Histogram> {
        self.stripe(service, op)
            .hists
            .get(&(service.to_string(), op.to_string()))
            .cloned()
    }

    // -- flight recorder ---------------------------------------------------

    /// Turns on the windowed flight recorder with `width_ns`-wide
    /// windows and a ring of at most `capacity` windows *per writer
    /// lane*. Idempotent in effect but resets the recording when called
    /// again.
    pub fn enable_timeseries(&self, width_ns: u64, capacity: usize) {
        for lane in self.lanes.iter() {
            let mut ts = lane.timeseries.lock().unwrap_or_else(|e| e.into_inner());
            *ts = Some(TimeSeries::new(width_ns, capacity));
        }
        self.ts_enabled.store(true, Ordering::Relaxed);
    }

    /// True when the flight recorder is on. Call sites use this to skip
    /// series-name formatting on hot paths; it is one relaxed atomic
    /// load.
    #[inline]
    pub fn timeseries_enabled(&self) -> bool {
        self.ts_enabled.load(Ordering::Relaxed)
    }

    /// Adds `delta` to counter `series` in the window covering `at_ns`
    /// (in the calling lane's recorder). No-op while the recorder is off.
    pub fn ts_add(&self, at_ns: u64, series: &str, delta: u64) {
        if !self.timeseries_enabled() {
            return;
        }
        let mut guard = self
            .lane()
            .timeseries
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if let Some(ts) = guard.as_mut() {
            ts.add(at_ns, series, delta);
        }
    }

    /// Samples gauge `series` at `value` in the window covering `at_ns`
    /// (in the calling lane's recorder). No-op while the recorder is off.
    pub fn ts_gauge(&self, at_ns: u64, series: &str, value: u64) {
        if !self.timeseries_enabled() {
            return;
        }
        let mut guard = self
            .lane()
            .timeseries
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if let Some(ts) = guard.as_mut() {
            ts.gauge(at_ns, series, value);
        }
    }

    /// Records `value` into windowed histogram `series` (in the calling
    /// lane's recorder). No-op while the recorder is off.
    pub fn ts_observe(&self, at_ns: u64, series: &str, value: u64) {
        if !self.timeseries_enabled() {
            return;
        }
        let mut guard = self
            .lane()
            .timeseries
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if let Some(ts) = guard.as_mut() {
            ts.observe(at_ns, series, value);
        }
    }

    /// Snapshot of the flight recording, if the recorder is on. With
    /// one writer lane this is that lane's report verbatim; with more,
    /// the lanes are merged deterministically by window (counters sum,
    /// histograms merge, gauge extrema combine — see
    /// [`TimeSeries::merged`]).
    pub fn timeseries_report(&self) -> Option<TimeSeriesReport> {
        if self.lanes.len() == 1 {
            return self.lanes[0]
                .timeseries
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .as_ref()
                .map(|ts| ts.report());
        }
        let guards: Vec<_> = self
            .lanes
            .iter()
            .map(|l| l.timeseries.lock().unwrap_or_else(|e| e.into_inner()))
            .collect();
        let lanes: Vec<&TimeSeries> = guards.iter().filter_map(|g| g.as_ref()).collect();
        if lanes.is_empty() {
            return None;
        }
        Some(TimeSeries::merged(&lanes).report())
    }

    /// Arms the slow-call watchdog. Exemplars accumulate from this point
    /// on; re-arming keeps already-pinned exemplars.
    pub fn enable_watchdog(&self, cfg: WatchdogConfig) {
        let mut misc = self.misc();
        misc.watchdog = Some(cfg);
        self.wd_enabled.store(true, Ordering::Relaxed);
    }

    /// Copy of the exemplars pinned so far.
    pub fn exemplars(&self) -> Vec<Exemplar> {
        self.misc().exemplars.clone()
    }

    /// Stamps run provenance into the registry (merged field-wise: only
    /// `Some` fields overwrite).
    pub fn set_run_meta(&self, meta: RunMeta) {
        let mut misc = self.misc();
        let RunMeta {
            seed,
            mode,
            config_hash,
            git_rev,
            date,
        } = meta;
        if seed.is_some() {
            misc.meta.seed = seed;
        }
        if mode.is_some() {
            misc.meta.mode = mode;
        }
        if config_hash.is_some() {
            misc.meta.config_hash = config_hash;
        }
        if git_rev.is_some() {
            misc.meta.git_rev = git_rev;
        }
        if date.is_some() {
            misc.meta.date = date;
        }
    }

    // -- RPC counters ------------------------------------------------------

    /// A call was issued.
    pub fn on_call(&self) {
        if self.on() {
            self.cell().calls.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A request was retransmitted.
    pub fn on_retry(&self) {
        if self.on() {
            self.cell().retries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A call exhausted all attempts.
    pub fn on_timeout(&self) {
        if self.on() {
            self.cell().timeouts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A reply arrived for an already-completed call.
    pub fn on_stale_reply(&self) {
        if self.on() {
            self.cell().stale_replies.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A stray packet was discarded while waiting for a reply.
    pub fn on_stray_dropped(&self) {
        if self.on() {
            self.cell().strays_dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A request was executed for the first time.
    pub fn on_executed(&self) {
        if self.on() {
            self.cell().executed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A duplicate request was answered from the reply cache.
    pub fn on_duplicate_suppressed(&self) {
        if self.on() {
            self.cell()
                .duplicates_suppressed
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A duplicate request was dropped.
    pub fn on_duplicate_dropped(&self) {
        if self.on() {
            self.cell()
                .duplicates_dropped
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A one-way message was received by a server.
    pub fn on_oneway_rx(&self) {
        if self.on() {
            self.cell().oneways.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// An undecodable packet was received by a server.
    pub fn on_undecodable(&self) {
        if self.on() {
            self.cell().undecodable.fetch_add(1, Ordering::Relaxed);
        }
    }

    // -- published snapshots ----------------------------------------------

    /// Publishes the latest stats of one proxy. Keyed `service@owner`;
    /// stats are monotonic so overwriting is idempotent.
    pub fn set_proxy_stats(&self, owner: &str, service: &str, stats: ProxyStats) {
        if !self.on() {
            return;
        }
        self.misc()
            .proxies
            .insert(format!("{service}@{owner}"), stats);
    }

    /// Publishes the latest stats of one service server.
    pub fn set_server_stats(&self, service: &str, stats: ServerStats) {
        if !self.on() {
            return;
        }
        self.misc().servers.insert(service.to_string(), stats);
    }

    // -- reporting ---------------------------------------------------------

    /// Builds the unified report. `net` is the simulator's counter
    /// snapshot and `end_time_ns` the simulated clock at report time.
    ///
    /// The merge is deterministic: per-key statistics live wholly in one
    /// stripe, cross-shard sums are commutative, and map output is
    /// key-ordered — the same run produces byte-identical JSON for any
    /// shard/stripe layout.
    pub fn report(&self, net: MetricsSnapshot, end_time_ns: u64) -> RunReport {
        // Hot counters: sum the stripes.
        let csum = |field: fn(&CounterCell) -> &AtomicU64| -> u64 {
            self.counters
                .iter()
                .map(|c| field(c).load(Ordering::Relaxed))
                .sum()
        };
        let client = CallStats {
            calls: csum(|c| &c.calls),
            retries: csum(|c| &c.retries),
            timeouts: csum(|c| &c.timeouts),
            stale_replies: csum(|c| &c.stale_replies),
            strays_dropped: csum(|c| &c.strays_dropped),
        };
        let server = ServeStats {
            executed: csum(|c| &c.executed),
            duplicates_suppressed: csum(|c| &c.duplicates_suppressed),
            duplicates_dropped: csum(|c| &c.duplicates_dropped),
            oneways: csum(|c| &c.oneways),
            undecodable: csum(|c| &c.undecodable),
        };
        // Stripes: histograms into the key-ordered ops map, retired
        // aggregates into the span totals.
        let mut ops = BTreeMap::new();
        let mut started = 0u64;
        let mut completed = 0u64;
        let mut oneways = 0u64;
        let mut retransmissions = self.retired_retransmissions.load(Ordering::Relaxed);
        for stripe in self.stripes.iter() {
            let s = stripe.lock().unwrap_or_else(|e| e.into_inner());
            for ((service, op), hist) in &s.hists {
                ops.insert(format!("{service}/{op}"), hist.summary());
            }
            for agg in s.retired.values() {
                started += agg.invokes + agg.dispatches;
                completed += agg.invokes + agg.dispatches;
                oneways += agg.oneways;
                retransmissions += agg.retransmissions;
            }
        }
        // Shards: the resident spans.
        for shard in self.span_shards.iter() {
            let s = shard.lock().unwrap_or_else(|e| e.into_inner());
            for rec in s.values() {
                match rec.kind {
                    SpanKind::Oneway => oneways += 1,
                    _ => {
                        started += 1;
                        if rec.end_ns.is_some() {
                            completed += 1;
                        }
                    }
                }
                retransmissions += rec.retransmissions;
            }
        }
        let misc = self.misc();
        RunReport {
            end_time_ns,
            net,
            rpc: RpcReport { client, server },
            proxies: misc.proxies.clone(),
            servers: misc.servers.clone(),
            ops,
            spans: SpanReport {
                started,
                completed,
                open: started - completed,
                oneways,
                retransmissions,
                replies: ReplyReport {
                    matched: csum(|c| &c.replies_matched),
                    late: csum(|c| &c.replies_late),
                    unknown_span: csum(|c| &c.replies_unknown_span),
                    untracked: csum(|c| &c.replies_untracked),
                },
            },
            obs: self.obs_plane(),
            trace_evicted: 0,
            meta: misc.meta.clone(),
            timeseries: self.timeseries_report(),
            profile: self.profile_report(),
            exemplars: misc.exemplars.clone(),
            exemplars_suppressed: misc.exemplars_suppressed,
        }
    }
}

// ---------------------------------------------------------------------------
// Unified run report
// ---------------------------------------------------------------------------

/// Aggregated RPC counters, both sides.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RpcReport {
    /// Summed over every client in the run.
    pub client: CallStats,
    /// Summed over every server in the run.
    pub server: ServeStats,
}

/// Reply/span correlation counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplyReport {
    /// Replies matched to a live span.
    pub matched: u64,
    /// Replies whose span had already closed (duplicates, stale).
    pub late: u64,
    /// Replies carrying a span id that was never allocated. Any nonzero
    /// value is a causality violation.
    pub unknown_span: u64,
    /// Replies carrying no span (traffic outside tracked invocations).
    pub untracked: u64,
}

/// Span table summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanReport {
    /// Invoke + dispatch spans opened.
    pub started: u64,
    /// Of those, spans closed.
    pub completed: u64,
    /// Spans still open at report time.
    pub open: u64,
    /// One-way notification spans.
    pub oneways: u64,
    /// Retransmissions summed over all spans.
    pub retransmissions: u64,
    /// Reply correlation counts.
    pub replies: ReplyReport,
}

/// The unified observability report for one run: network counters, RPC
/// counters, per-proxy and per-server stats, per-op latency percentiles
/// and the span summary, in one serializable value.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunReport {
    /// Simulated clock when the report was taken, in nanoseconds.
    pub end_time_ns: u64,
    /// Network simulator counters.
    pub net: MetricsSnapshot,
    /// RPC layer counters.
    pub rpc: RpcReport,
    /// Per-proxy stats, keyed `service@owner`.
    pub proxies: BTreeMap<String, ProxyStats>,
    /// Per-service server stats.
    pub servers: BTreeMap<String, ServerStats>,
    /// Per-op latency summaries, keyed `service/op`.
    pub ops: BTreeMap<String, OpLatency>,
    /// Span table summary.
    pub spans: SpanReport,
    /// Self-measurement of the observability plane itself: retirement
    /// counts, resident span-table footprint and time spent inside
    /// registry calls.
    pub obs: ObsPlaneReport,
    /// Events the bounded simnet trace ring evicted (0 when tracing is
    /// off or the ring never filled — i.e. the timeline is complete).
    /// Filled in by the simulator when it builds the report.
    pub trace_evicted: u64,
    /// Run provenance (seed, mode, config hash, git rev, date).
    pub meta: RunMeta,
    /// The windowed flight recording, when the recorder was on.
    pub timeseries: Option<TimeSeriesReport>,
    /// The folded-stack wall-time profile, when the profiler was on.
    /// Frame paths and call counts are deterministic; `wall_ns` is
    /// host-dependent and reported-not-judged.
    pub profile: Option<ProfileReport>,
    /// Slow calls pinned by the watchdog.
    pub exemplars: Vec<Exemplar>,
    /// Slow calls observed after the exemplar buffer filled.
    pub exemplars_suppressed: u64,
}

impl RunReport {
    /// Fills each exemplar's causal decomposition from `trace`.
    ///
    /// [`analysis::critical_paths`] decomposes every traced invoke span
    /// into queue/wire/server/retransmit components that tile the span
    /// exactly; this copies the decomposition onto exemplars whose span
    /// appears in the trace. Returns how many exemplars got a breakdown.
    /// Exemplars whose span was sampled out of the trace keep
    /// `breakdown: None` — an honest "unexplained" rather than a guess.
    pub fn attach_exemplars(&mut self, trace: &CausalTrace) -> usize {
        if self.exemplars.is_empty() {
            return 0;
        }
        let paths = critical_paths(trace);
        let by_span: BTreeMap<SpanId, &CriticalPath> = paths.iter().map(|p| (p.span, p)).collect();
        let mut attached = 0;
        for ex in &mut self.exemplars {
            if ex.breakdown.is_some() {
                continue;
            }
            if let Some(p) = by_span.get(&ex.span) {
                ex.breakdown = Some(ExemplarBreakdown {
                    queue_ns: p.queue_ns,
                    wire_ns: p.wire_ns,
                    server_ns: p.server_ns,
                    retransmit_ns: p.retransmit_ns,
                    retransmissions: p.retransmissions,
                    drops: p.drops,
                });
                attached += 1;
            }
        }
        attached
    }
    /// Renders the report as a self-contained JSON object.
    ///
    /// Hand-rolled so the report stays serializable even when the
    /// workspace is built against the offline serde stand-in; the output
    /// is stable (maps are ordered) and safe to diff across runs.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.obj(|w| {
            w.field_u64("end_time_ns", self.end_time_ns);
            w.field_u64("trace_evicted", self.trace_evicted);
            w.field_obj("meta", |w| {
                let RunMeta {
                    seed,
                    mode,
                    config_hash,
                    git_rev,
                    date,
                } = &self.meta;
                if let Some(seed) = seed {
                    w.field_u64("seed", *seed);
                }
                if let Some(mode) = mode {
                    w.field_str("mode", mode);
                }
                if let Some(hash) = config_hash {
                    w.field_str("config_hash", hash);
                }
                if let Some(rev) = git_rev {
                    w.field_str("git_rev", rev);
                }
                if let Some(date) = date {
                    w.field_str("date", date);
                }
            });
            w.field_obj("net", |w| {
                let MetricsSnapshot {
                    msgs_sent,
                    msgs_delivered,
                    msgs_dropped,
                    msgs_duplicated,
                    msgs_blackholed,
                    bytes_sent,
                    events_dispatched,
                    processes_spawned,
                    processes_peak,
                    sched_time_inversions,
                } = self.net;
                w.field_u64("msgs_sent", msgs_sent);
                w.field_u64("msgs_delivered", msgs_delivered);
                w.field_u64("msgs_dropped", msgs_dropped);
                w.field_u64("msgs_duplicated", msgs_duplicated);
                w.field_u64("msgs_blackholed", msgs_blackholed);
                w.field_u64("bytes_sent", bytes_sent);
                w.field_u64("events_dispatched", events_dispatched);
                w.field_u64("processes_spawned", processes_spawned);
                w.field_u64("processes_peak", processes_peak);
                w.field_u64("sched_time_inversions", sched_time_inversions);
            });
            w.field_obj("rpc", |w| {
                w.field_obj("client", |w| {
                    let CallStats {
                        calls,
                        retries,
                        timeouts,
                        stale_replies,
                        strays_dropped,
                    } = self.rpc.client;
                    w.field_u64("calls", calls);
                    w.field_u64("retries", retries);
                    w.field_u64("timeouts", timeouts);
                    w.field_u64("stale_replies", stale_replies);
                    w.field_u64("strays_dropped", strays_dropped);
                });
                w.field_obj("server", |w| {
                    let ServeStats {
                        executed,
                        duplicates_suppressed,
                        duplicates_dropped,
                        oneways,
                        undecodable,
                    } = self.rpc.server;
                    w.field_u64("executed", executed);
                    w.field_u64("duplicates_suppressed", duplicates_suppressed);
                    w.field_u64("duplicates_dropped", duplicates_dropped);
                    w.field_u64("oneways", oneways);
                    w.field_u64("undecodable", undecodable);
                });
            });
            w.field_obj("proxies", |w| {
                for (key, s) in &self.proxies {
                    w.field_obj(key, |w| {
                        let ProxyStats {
                            invocations,
                            local_hits,
                            remote_calls,
                            invalidations_rx,
                            migrations,
                            checkins,
                            rebinds,
                            strategy_switches,
                            datagrams_discarded,
                            bulk_spills,
                            bulk_resolves,
                        } = *s;
                        w.field_u64("invocations", invocations);
                        w.field_u64("local_hits", local_hits);
                        w.field_u64("remote_calls", remote_calls);
                        w.field_u64("invalidations_rx", invalidations_rx);
                        w.field_u64("migrations", migrations);
                        w.field_u64("checkins", checkins);
                        w.field_u64("rebinds", rebinds);
                        w.field_u64("strategy_switches", strategy_switches);
                        w.field_u64("datagrams_discarded", datagrams_discarded);
                        w.field_u64("bulk_spills", bulk_spills);
                        w.field_u64("bulk_resolves", bulk_resolves);
                    });
                }
            });
            w.field_obj("servers", |w| {
                for (key, s) in &self.servers {
                    w.field_obj(key, |w| {
                        let ServerStats {
                            dispatched,
                            writes,
                            invalidations_sent,
                            checkouts,
                            checkins,
                            recalls_sent,
                            unavailable,
                            checkpoints,
                        } = *s;
                        w.field_u64("dispatched", dispatched);
                        w.field_u64("writes", writes);
                        w.field_u64("invalidations_sent", invalidations_sent);
                        w.field_u64("checkouts", checkouts);
                        w.field_u64("checkins", checkins);
                        w.field_u64("recalls_sent", recalls_sent);
                        w.field_u64("unavailable", unavailable);
                        w.field_u64("checkpoints", checkpoints);
                    });
                }
            });
            w.field_obj("ops", |w| {
                for (key, s) in &self.ops {
                    w.field_obj(key, |w| {
                        let OpLatency {
                            count,
                            min_ns,
                            max_ns,
                            mean_ns,
                            p50_ns,
                            p95_ns,
                            p99_ns,
                        } = *s;
                        w.field_u64("count", count);
                        w.field_u64("min_ns", min_ns);
                        w.field_u64("max_ns", max_ns);
                        w.field_u64("mean_ns", mean_ns);
                        w.field_u64("p50_ns", p50_ns);
                        w.field_u64("p95_ns", p95_ns);
                        w.field_u64("p99_ns", p99_ns);
                    });
                }
            });
            w.field_obj("spans", |w| {
                let SpanReport {
                    started,
                    completed,
                    open,
                    oneways,
                    retransmissions,
                    replies,
                } = self.spans;
                w.field_u64("started", started);
                w.field_u64("completed", completed);
                w.field_u64("open", open);
                w.field_u64("oneways", oneways);
                w.field_u64("retransmissions", retransmissions);
                w.field_obj("replies", |w| {
                    let ReplyReport {
                        matched,
                        late,
                        unknown_span,
                        untracked,
                    } = replies;
                    w.field_u64("matched", matched);
                    w.field_u64("late", late);
                    w.field_u64("unknown_span", unknown_span);
                    w.field_u64("untracked", untracked);
                });
            });
            w.field_obj("obs", |w| {
                let ObsPlaneReport {
                    spans_retired,
                    spans_sampled,
                    spans_resident,
                    spans_resident_peak,
                    span_table_bytes,
                    span_table_bytes_peak,
                    self_ns,
                    self_calls,
                } = self.obs;
                w.field_u64("spans_retired", spans_retired);
                w.field_u64("spans_sampled", spans_sampled);
                w.field_u64("spans_resident", spans_resident);
                w.field_u64("spans_resident_peak", spans_resident_peak);
                w.field_u64("span_table_bytes", span_table_bytes);
                w.field_u64("span_table_bytes_peak", span_table_bytes_peak);
                w.field_u64("self_ns", self_ns);
                w.field_u64("self_calls", self_calls);
            });
            if let Some(p) = &self.profile {
                w.field_obj("profile", |w| {
                    w.field_u64("frames_resident", p.frames_resident);
                    w.field_u64("frames_evicted", p.frames_evicted);
                    w.field_u64("self_ns", p.self_ns);
                    w.field_u64("self_calls", p.self_calls);
                    w.field_obj("frames", |w| {
                        for (path, st) in &p.frames {
                            w.field_obj(path, |w| {
                                w.field_u64("calls", st.calls);
                                w.field_u64("wall_ns", st.wall_ns);
                            });
                        }
                    });
                });
            }
            w.field_u64("exemplars_suppressed", self.exemplars_suppressed);
            w.field_arr("exemplars", |w| {
                for ex in &self.exemplars {
                    w.elem_obj(|w| {
                        w.field_u64("span", ex.span.raw());
                        w.field_str("service", &ex.service);
                        w.field_str("op", &ex.op);
                        w.field_u64("start_ns", ex.start_ns);
                        w.field_u64("latency_ns", ex.latency_ns);
                        w.field_u64("threshold_ns", ex.threshold_ns);
                        w.field_u64("p99_ns", ex.p99_ns);
                        w.field_str("trigger", ex.trigger);
                        w.field_u64("ok", u64::from(ex.ok));
                        if let Some(b) = ex.breakdown {
                            w.field_obj("breakdown", |w| {
                                let ExemplarBreakdown {
                                    queue_ns,
                                    wire_ns,
                                    server_ns,
                                    retransmit_ns,
                                    retransmissions,
                                    drops,
                                } = b;
                                w.field_u64("queue_ns", queue_ns);
                                w.field_u64("wire_ns", wire_ns);
                                w.field_u64("server_ns", server_ns);
                                w.field_u64("retransmit_ns", retransmit_ns);
                                w.field_u64("retransmissions", retransmissions);
                                w.field_u64("drops", drops);
                            });
                        }
                    });
                }
            });
            if let Some(ts) = &self.timeseries {
                w.field_obj("timeseries", |w| {
                    w.field_u64("width_ns", ts.width_ns);
                    w.field_u64("windows_evicted", ts.windows_evicted);
                    w.field_u64("late_dropped", ts.late_dropped);
                    w.field_arr("windows", |w| {
                        for win in &ts.windows {
                            w.elem_obj(|w| {
                                w.field_u64("start_ns", win.start_ns);
                                w.field_obj("counters", |w| {
                                    for (name, v) in &win.counters {
                                        w.field_u64(name, *v);
                                    }
                                });
                                w.field_obj("gauges", |w| {
                                    for (name, g) in &win.gauges {
                                        w.field_obj(name, |w| {
                                            let GaugeStat {
                                                last,
                                                min,
                                                max,
                                                sum,
                                                samples,
                                            } = *g;
                                            w.field_u64("last", last);
                                            w.field_u64("min", min);
                                            w.field_u64("max", max);
                                            w.field_u64("sum", sum);
                                            w.field_u64("samples", samples);
                                        });
                                    }
                                });
                                w.field_obj("hists", |w| {
                                    for (name, h) in &win.hists {
                                        w.field_obj(name, |w| {
                                            let OpLatency {
                                                count,
                                                min_ns,
                                                max_ns,
                                                mean_ns,
                                                p50_ns,
                                                p95_ns,
                                                p99_ns,
                                            } = *h;
                                            w.field_u64("count", count);
                                            w.field_u64("min_ns", min_ns);
                                            w.field_u64("max_ns", max_ns);
                                            w.field_u64("mean_ns", mean_ns);
                                            w.field_u64("p50_ns", p50_ns);
                                            w.field_u64("p95_ns", p95_ns);
                                            w.field_u64("p99_ns", p99_ns);
                                        });
                                    }
                                });
                            });
                        }
                    });
                });
            }
        });
        w.finish()
    }
}

/// Minimal JSON emitter: objects with string keys and u64 / nested
/// object values — exactly what [`RunReport::to_json`] needs.
struct JsonWriter {
    out: String,
    need_comma: Vec<bool>,
}

impl JsonWriter {
    fn new() -> JsonWriter {
        JsonWriter {
            out: String::new(),
            need_comma: Vec::new(),
        }
    }

    fn sep(&mut self) {
        if let Some(need) = self.need_comma.last_mut() {
            if *need {
                self.out.push(',');
            }
            *need = true;
        }
    }

    fn push_escaped(&mut self, s: &str) {
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
    }

    fn key(&mut self, key: &str) {
        self.sep();
        self.out.push('"');
        self.push_escaped(key);
        self.out.push_str("\":");
    }

    fn obj(&mut self, body: impl FnOnce(&mut JsonWriter)) {
        self.out.push('{');
        self.need_comma.push(false);
        body(self);
        self.need_comma.pop();
        self.out.push('}');
    }

    fn field_u64(&mut self, key: &str, value: u64) {
        self.key(key);
        self.out.push_str(&value.to_string());
    }

    fn field_str(&mut self, key: &str, value: &str) {
        self.key(key);
        self.out.push('"');
        self.push_escaped(value);
        self.out.push('"');
    }

    fn field_obj(&mut self, key: &str, body: impl FnOnce(&mut JsonWriter)) {
        self.key(key);
        self.obj(body);
    }

    fn field_arr(&mut self, key: &str, body: impl FnOnce(&mut JsonWriter)) {
        self.key(key);
        self.out.push('[');
        self.need_comma.push(false);
        body(self);
        self.need_comma.pop();
        self.out.push(']');
    }

    /// One object element inside a [`JsonWriter::field_arr`] body.
    fn elem_obj(&mut self, body: impl FnOnce(&mut JsonWriter)) {
        self.sep();
        self.obj(body);
    }

    fn finish(self) -> String {
        self.out
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_uniform() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        // Log2 buckets give factor-of-two resolution; check the order of
        // magnitude, not exact values.
        let p50 = h.p50();
        assert!((250..=1000).contains(&p50), "p50 = {p50}");
        assert!(h.p95() >= p50);
        assert!(h.p99() >= h.p95());
        assert!(h.p99() <= 1000);
    }

    #[test]
    fn histogram_empty_and_single() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);

        let mut h = Histogram::new();
        h.record(42);
        assert_eq!(h.p50(), 42);
        assert_eq!(h.p99(), 42);
        assert_eq!(h.mean(), 42);
    }

    #[test]
    fn histogram_zero_sample() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1u64, 10, 100] {
            a.record(v);
        }
        for v in [1000u64, 10_000] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 10_000);
    }

    #[test]
    fn span_lifecycle_and_latency() {
        let reg = MetricsRegistry::new();
        let inv = reg.open_span(SpanKind::Invoke, SpanId::NONE, "kv", "get", 100);
        assert!(inv.is_some());
        let disp = reg.open_span(SpanKind::Dispatch, inv, "svc-kv", "get", 150);
        reg.close_span(disp, 180, true);
        assert_eq!(reg.span_reply(inv.raw(), 190), ReplyKind::Matched);
        reg.close_span(inv, 200, true);
        // Duplicate reply after the span closed.
        assert_eq!(reg.span_reply(inv.raw(), 210), ReplyKind::Late);
        // Closing twice is a no-op.
        reg.close_span(inv, 999, false);

        let h = reg.histogram("kv", "get").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.p50(), 100);
        let hd = reg.histogram("svc-kv", "get").unwrap();
        assert_eq!(hd.count(), 1);

        assert!(reg.verify_causality().is_empty());

        let report = reg.report(MetricsSnapshot::default(), 1000);
        assert_eq!(report.spans.started, 2);
        assert_eq!(report.spans.completed, 2);
        assert_eq!(report.spans.replies.matched, 1);
        assert_eq!(report.spans.replies.late, 1);
        assert_eq!(report.spans.replies.unknown_span, 0);
    }

    #[test]
    fn unknown_and_untracked_replies() {
        let reg = MetricsRegistry::new();
        assert_eq!(reg.span_reply(0, 10), ReplyKind::Untracked);
        assert_eq!(reg.span_reply(777, 10), ReplyKind::UnknownSpan);
        let violations = reg.verify_causality();
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("never allocated"));
    }

    #[test]
    fn retransmissions_accumulate_on_one_span() {
        let reg = MetricsRegistry::new();
        let sp = reg.open_span(SpanKind::Invoke, SpanId::NONE, "kv", "put", 0);
        reg.span_retransmit(sp);
        reg.span_retransmit(sp);
        let report = reg.report(MetricsSnapshot::default(), 50);
        assert_eq!(report.spans.retransmissions, 2);
        let rec = reg.span_record(sp).expect("span resident");
        assert_eq!(rec.retransmissions, 2);
    }

    #[test]
    fn causality_flags_bad_parent() {
        let reg = MetricsRegistry::new();
        reg.open_span(SpanKind::Dispatch, SpanId(99), "svc", "op", 5);
        let violations = reg.verify_causality();
        assert!(!violations.is_empty());
        assert!(violations[0].contains("unallocated parent"));
    }

    #[test]
    fn oneway_spans_are_closed_and_parented() {
        let reg = MetricsRegistry::new();
        let disp = reg.open_span(SpanKind::Dispatch, SpanId::NONE, "svc-kv", "put", 10);
        let ow = reg.note_oneway(disp, "kv", "inv", 20);
        let rec = reg.span_record(ow).expect("span resident");
        assert_eq!(rec.kind, SpanKind::Oneway);
        assert_eq!(rec.parent, disp);
        assert_eq!(rec.end_ns, Some(20));
        // One-way spans never land in a latency histogram.
        assert!(reg.histogram("kv", "inv").is_none());
    }

    #[test]
    fn snapshot_since_saturates() {
        let a = MetricsSnapshot {
            msgs_sent: 10,
            msgs_delivered: 8,
            msgs_dropped: 2,
            msgs_duplicated: 0,
            msgs_blackholed: 0,
            bytes_sent: 640,
            events_dispatched: 30,
            processes_spawned: 3,
            processes_peak: 3,
            sched_time_inversions: 0,
        };
        let b = MetricsSnapshot {
            msgs_sent: 15,
            msgs_delivered: 12,
            msgs_dropped: 3,
            msgs_duplicated: 1,
            msgs_blackholed: 0,
            bytes_sent: 900,
            events_dispatched: 45,
            processes_spawned: 5,
            processes_peak: 4,
            sched_time_inversions: 0,
        };
        let d = b.since(&a);
        assert_eq!(d.msgs_sent, 5);
        assert_eq!(d.msgs_delivered, 4);
        assert_eq!(d.bytes_sent, 260);
        assert_eq!(d.processes_spawned, 2);
        // Gauge semantics: the window reports the peak as of its end,
        // not a counter-style diff (which would read 0 in any window
        // where the high-water mark did not rise).
        assert_eq!(d.processes_peak, 4);
        // Reversed order saturates instead of wrapping.
        let r = a.since(&b);
        assert_eq!(r.msgs_sent, 0);
    }

    #[test]
    fn snapshot_since_peak_is_a_gauge_in_flat_windows() {
        // Regression for the flight-recorder window diff: a window in
        // which the process high-water mark did not move used to report
        // `processes_peak == 0` because the gauge was diffed like a
        // counter. The window must report the level, not the rise.
        let a = MetricsSnapshot {
            processes_spawned: 5,
            processes_peak: 5,
            ..Default::default()
        };
        let b = MetricsSnapshot {
            processes_spawned: 7,
            processes_peak: 5,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.processes_spawned, 2);
        assert_eq!(d.processes_peak, 5, "flat window must report the level");
    }

    #[test]
    fn report_json_is_wellformed() {
        let reg = MetricsRegistry::new();
        let sp = reg.open_span(SpanKind::Invoke, SpanId::NONE, "kv", "get", 0);
        reg.on_call();
        reg.close_span(sp, 1500, true);
        reg.set_proxy_stats(
            "client-1",
            "kv",
            ProxyStats {
                invocations: 1,
                remote_calls: 1,
                ..Default::default()
            },
        );
        reg.set_server_stats(
            "kv",
            ServerStats {
                dispatched: 1,
                ..Default::default()
            },
        );
        let json = reg
            .report(
                MetricsSnapshot {
                    msgs_sent: 2,
                    msgs_delivered: 2,
                    ..Default::default()
                },
                2000,
            )
            .to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"end_time_ns\":2000"));
        assert!(json.contains("\"kv/get\""));
        assert!(json.contains("\"p99_ns\""));
        assert!(json.contains("\"kv@client-1\""));
        assert!(json.contains("\"msgs_sent\":2"));
        // Balanced braces.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn snapshot_since_every_field_smaller() {
        // "Service removed mid-run": the later snapshot is smaller in
        // every field. The diff must saturate to zero field-wise, never
        // wrap.
        let earlier = MetricsSnapshot {
            msgs_sent: 100,
            msgs_delivered: 90,
            msgs_dropped: 10,
            msgs_duplicated: 5,
            msgs_blackholed: 3,
            bytes_sent: 64_000,
            events_dispatched: 500,
            processes_spawned: 12,
            processes_peak: 8,
            sched_time_inversions: 2,
        };
        let later = MetricsSnapshot {
            msgs_sent: 40,
            msgs_delivered: 30,
            msgs_dropped: 4,
            msgs_duplicated: 2,
            msgs_blackholed: 1,
            bytes_sent: 8_000,
            events_dispatched: 200,
            processes_spawned: 6,
            processes_peak: 4,
            sched_time_inversions: 1,
        };
        // Counters saturate to zero; the peak gauge carries the later
        // snapshot's level through untouched.
        assert_eq!(
            later.since(&earlier),
            MetricsSnapshot {
                processes_peak: 4,
                ..MetricsSnapshot::default()
            }
        );
        // Mixed: only some fields went backwards.
        let mixed = MetricsSnapshot {
            msgs_sent: 150,
            ..later
        };
        let d = mixed.since(&earlier);
        assert_eq!(d.msgs_sent, 50);
        assert_eq!(d.msgs_delivered, 0);
        assert_eq!(d.bytes_sent, 0);
    }

    #[test]
    fn histogram_merge_then_extreme_quantiles() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [7u64, 12, 30] {
            a.record(v);
        }
        for v in [3u64, 5_000] {
            b.record(v);
        }
        a.merge(&b);
        // q=0.0 and q=1.0 must pin to the merged min and max exactly,
        // despite log2-bucket interpolation.
        assert_eq!(a.quantile(0.0), a.min());
        assert_eq!(a.quantile(0.0), 3);
        assert_eq!(a.quantile(1.0), a.max());
        assert_eq!(a.quantile(1.0), 5_000);
        // Merging into an empty histogram keeps the extremes intact.
        let mut empty = Histogram::new();
        empty.merge(&a);
        assert_eq!(empty.quantile(0.0), 3);
        assert_eq!(empty.quantile(1.0), 5_000);
    }

    #[test]
    fn watchdog_pins_slo_exemplar() {
        let reg = MetricsRegistry::new();
        reg.enable_watchdog(WatchdogConfig {
            multiplier: 3.0,
            slo_ns: Some(1_000),
            min_samples: 32,
            max_exemplars: 4,
        });
        // Fast call: under the SLO, relative trigger unarmed.
        let fast = reg.open_span(SpanKind::Invoke, SpanId::NONE, "kv", "get", 0);
        reg.close_span(fast, 500, true);
        // Slow call: over the SLO.
        let slow = reg.open_span(SpanKind::Invoke, SpanId::NONE, "kv", "get", 1_000);
        reg.close_span(slow, 3_500, true);
        let exemplars = reg.exemplars();
        assert_eq!(exemplars.len(), 1);
        let ex = &exemplars[0];
        assert_eq!(ex.span, slow);
        assert_eq!(ex.latency_ns, 2_500);
        assert_eq!(ex.threshold_ns, 1_000);
        assert_eq!(ex.trigger, "slo");
        assert!(ex.breakdown.is_none());
    }

    #[test]
    fn watchdog_relative_trigger_arms_after_min_samples() {
        let reg = MetricsRegistry::new();
        reg.enable_watchdog(WatchdogConfig {
            multiplier: 3.0,
            slo_ns: None,
            min_samples: 10,
            max_exemplars: 4,
        });
        // Nine ~100ns calls: below min_samples, nothing can trip even
        // though every call dwarfs the (unarmed) p99.
        for i in 0..9u64 {
            let sp = reg.open_span(SpanKind::Invoke, SpanId::NONE, "kv", "get", i * 10_000);
            reg.close_span(sp, i * 10_000 + 100, true);
        }
        assert!(reg.exemplars().is_empty());
        // Tenth call arms the trigger for the *next* close...
        let sp = reg.open_span(SpanKind::Invoke, SpanId::NONE, "kv", "get", 100_000);
        reg.close_span(sp, 100_100, true);
        // ...and an outlier 50x the p99 trips it.
        let outlier = reg.open_span(SpanKind::Invoke, SpanId::NONE, "kv", "get", 200_000);
        reg.close_span(outlier, 205_000, false);
        let exemplars = reg.exemplars();
        assert_eq!(exemplars.len(), 1);
        let ex = &exemplars[0];
        assert_eq!(ex.span, outlier);
        assert_eq!(ex.trigger, "p99");
        assert!(ex.p99_ns > 0);
        assert!(ex.latency_ns > ex.threshold_ns);
        assert!(!ex.ok);
    }

    #[test]
    fn watchdog_buffer_cap_suppresses() {
        let reg = MetricsRegistry::new();
        reg.enable_watchdog(WatchdogConfig {
            multiplier: 3.0,
            slo_ns: Some(10),
            min_samples: u64::MAX,
            max_exemplars: 2,
        });
        for i in 0..5u64 {
            let sp = reg.open_span(SpanKind::Invoke, SpanId::NONE, "kv", "get", i * 1_000);
            reg.close_span(sp, i * 1_000 + 100, true);
        }
        let report = reg.report(MetricsSnapshot::default(), 10_000);
        assert_eq!(report.exemplars.len(), 2);
        assert_eq!(report.exemplars_suppressed, 3);
    }

    #[test]
    fn timeseries_feeds_from_span_close_and_retransmit() {
        let reg = MetricsRegistry::new();
        assert!(!reg.timeseries_enabled());
        reg.enable_timeseries(1_000, 64);
        assert!(reg.timeseries_enabled());
        let ok = reg.open_span(SpanKind::Invoke, SpanId::NONE, "kv", "get", 0);
        reg.span_retransmit_at(ok, 300);
        reg.close_span(ok, 500, true);
        let err = reg.open_span(SpanKind::Invoke, SpanId::NONE, "kv", "get", 1_200);
        reg.close_span(err, 1_800, false);
        // Dispatch spans land in aggregate histograms but not in the
        // per-service call counters (no double counting).
        let disp = reg.open_span(SpanKind::Dispatch, ok, "svc-kv", "get", 100);
        reg.close_span(disp, 400, true);
        let ts = reg.timeseries_report().expect("recorder on");
        assert_eq!(ts.counter_total("calls_ok@kv"), 1);
        assert_eq!(ts.counter_total("calls_err@kv"), 1);
        assert_eq!(ts.counter_total("retx@kv"), 1);
        assert_eq!(ts.counter_total("calls_ok@svc-kv"), 0);
        assert_eq!(ts.windows.len(), 2);
        assert_eq!(ts.windows[0].hists["latency@kv"].max_ns, 500);
        // Direct API shapes.
        reg.ts_gauge(2_500, "depth", 7);
        reg.ts_add(2_500, "bytes", 128);
        reg.ts_observe(2_500, "lag", 0);
        let ts = reg.timeseries_report().unwrap();
        assert_eq!(ts.windows[2].gauges["depth"].max, 7);
        assert_eq!(ts.counter_total("bytes"), 128);
    }

    #[test]
    fn run_meta_merges_and_serializes() {
        let reg = MetricsRegistry::new();
        reg.set_run_meta(RunMeta {
            seed: Some(42),
            mode: Some("full".into()),
            ..Default::default()
        });
        reg.set_run_meta(RunMeta {
            date: Some("2026-08-06".into()),
            ..Default::default()
        });
        let report = reg.report(MetricsSnapshot::default(), 0);
        assert_eq!(report.meta.seed, Some(42));
        assert_eq!(report.meta.mode.as_deref(), Some("full"));
        assert_eq!(report.meta.date.as_deref(), Some("2026-08-06"));
        let json = report.to_json();
        assert!(json.contains("\"meta\":{\"seed\":42,\"mode\":\"full\",\"date\":\"2026-08-06\"}"));
    }

    #[test]
    fn report_json_with_timeseries_and_exemplars_is_wellformed() {
        let reg = MetricsRegistry::new();
        reg.enable_timeseries(1_000, 8);
        reg.enable_watchdog(WatchdogConfig {
            slo_ns: Some(100),
            min_samples: u64::MAX,
            ..Default::default()
        });
        let sp = reg.open_span(SpanKind::Invoke, SpanId::NONE, "kv", "get", 0);
        reg.ts_gauge(500, "sched_depth", 3);
        reg.close_span(sp, 2_500, true);
        let json = reg.report(MetricsSnapshot::default(), 3_000).to_json();
        assert!(json.contains("\"exemplars\":[{\"span\":1"));
        assert!(json.contains("\"trigger\":\"slo\""));
        assert!(json.contains("\"timeseries\":{\"width_ns\":1000"));
        assert!(json.contains("\"windows\":[{"));
        assert!(json.contains("\"calls_ok@kv\":1"));
        assert!(json.contains("\"sched_depth\""));
        // Balanced braces and brackets, and it round-trips through the
        // hand-rolled parser.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let parsed = crate::json::parse(&json).expect("report JSON parses");
        let ts = parsed.get("timeseries").expect("timeseries present");
        assert_eq!(ts.u64_field("width_ns"), Some(1_000));
        assert_eq!(
            parsed
                .get("exemplars")
                .and_then(|e| e.as_arr())
                .map(|a| a.len()),
            Some(1)
        );
    }

    /// Drives an identical call sequence into a registry.
    fn drive(reg: &MetricsRegistry) {
        for i in 0..100u64 {
            let svc = if i % 2 == 0 { "kv" } else { "dir" };
            let op = if i % 3 == 0 { "get" } else { "put" };
            let inv = reg.open_span(SpanKind::Invoke, SpanId::NONE, svc, op, i * 10);
            let disp = reg.open_span(SpanKind::Dispatch, inv, svc, op, i * 10 + 2);
            if i % 7 == 0 {
                reg.span_retransmit(inv);
            }
            reg.on_call();
            reg.on_executed();
            reg.close_span(disp, i * 10 + 5, true);
            reg.span_reply(inv.raw(), i * 10 + 6);
            reg.close_span(inv, i * 10 + 8, i % 11 != 0);
            if i % 5 == 0 {
                reg.note_oneway(disp, svc, "inv", i * 10 + 9);
            }
        }
        // Leave a few spans open so `open` is nonzero.
        for _ in 0..3 {
            reg.open_span(SpanKind::Invoke, SpanId::NONE, "kv", "get", 9_999);
        }
    }

    #[test]
    fn report_is_byte_identical_across_layouts() {
        let base = {
            let reg = MetricsRegistry::with_layout(1, 1);
            drive(&reg);
            reg.report(MetricsSnapshot::default(), 10_000).to_json()
        };
        for (shards, stripes) in [(4, 2), (16, 8), (64, 16)] {
            let reg = MetricsRegistry::with_layout(shards, stripes);
            drive(&reg);
            let json = reg.report(MetricsSnapshot::default(), 10_000).to_json();
            assert_eq!(json, base, "layout {shards}x{stripes} diverged");
        }
    }

    #[test]
    fn retirement_conserves_report_totals() {
        let plain = MetricsRegistry::new();
        drive(&plain);
        let retiring = MetricsRegistry::new();
        retiring.enable_retirement(0);
        drive(&retiring);

        let a = plain.report(MetricsSnapshot::default(), 10_000);
        let b = retiring.report(MetricsSnapshot::default(), 10_000);
        // Everything the report derives from spans is conserved exactly.
        assert_eq!(a.spans, b.spans);
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.rpc, b.rpc);
        // But the retiring table only holds what is still open.
        assert_eq!(b.obs.spans_resident, 3);
        assert_eq!(
            b.obs.spans_retired + b.obs.spans_resident,
            b.spans.started + b.spans.oneways
        );
        assert!(plain.resident_spans() > retiring.resident_spans());
    }

    #[test]
    fn retirement_sampler_keeps_every_nth() {
        let reg = MetricsRegistry::new();
        reg.enable_retirement(10);
        for i in 0..100u64 {
            let sp = reg.open_span(SpanKind::Invoke, SpanId::NONE, "kv", "get", i);
            reg.close_span(sp, i + 1, true);
        }
        let obs = reg.obs_plane();
        assert_eq!(obs.spans_sampled, 10);
        assert_eq!(obs.spans_retired, 90);
        assert_eq!(obs.spans_resident, 10);
        // Sampled records are real, closed records.
        let mut kept = 0;
        reg.for_each_span(|rec| {
            assert!(rec.end_ns.is_some());
            kept += 1;
        });
        assert_eq!(kept, 10);
    }

    #[test]
    fn retired_span_reply_is_late_and_retransmit_counted() {
        let reg = MetricsRegistry::new();
        reg.enable_retirement(0);
        let sp = reg.open_span(SpanKind::Invoke, SpanId::NONE, "kv", "get", 0);
        reg.close_span(sp, 5, true);
        assert!(reg.span_record(sp).is_none(), "span retired");
        // A reply for a retired span is by definition late: retirement
        // only ever evicts closed spans.
        assert_eq!(reg.span_reply(sp.raw(), 9), ReplyKind::Late);
        reg.span_retransmit(sp);
        let report = reg.report(MetricsSnapshot::default(), 10);
        assert_eq!(report.spans.replies.late, 1);
        assert_eq!(report.spans.replies.unknown_span, 0);
        assert_eq!(report.spans.retransmissions, 1);
    }

    #[test]
    fn disabled_plane_is_inert() {
        let reg = MetricsRegistry::new();
        reg.set_enabled(false);
        let sp = reg.open_span(SpanKind::Invoke, SpanId::NONE, "kv", "get", 0);
        assert_eq!(sp, SpanId::NONE);
        reg.close_span(sp, 5, true);
        assert_eq!(reg.span_reply(7, 9), ReplyKind::Untracked);
        reg.on_call();
        reg.on_executed();
        reg.record_latency("kv", "get", 100);
        let report = reg.report(MetricsSnapshot::default(), 10);
        assert_eq!(report.spans.started, 0);
        assert_eq!(report.rpc.client.calls, 0);
        assert_eq!(report.rpc.server.executed, 0);
        assert_eq!(report.spans.replies.untracked, 0);
        assert!(report.ops.is_empty());
        assert_eq!(reg.span_count(), 0);
        // And it can be turned back on.
        reg.set_enabled(true);
        assert!(reg
            .open_span(SpanKind::Invoke, SpanId::NONE, "kv", "get", 0)
            .is_some());
    }

    #[test]
    fn for_each_span_visits_ascending_ids() {
        let reg = MetricsRegistry::with_layout(4, 2);
        for i in 0..50u64 {
            reg.open_span(SpanKind::Invoke, SpanId::NONE, "kv", "get", i);
        }
        let mut prev = 0;
        let mut seen = 0;
        reg.for_each_span(|rec| {
            assert!(rec.id.raw() > prev, "ids must ascend");
            prev = rec.id.raw();
            seen += 1;
        });
        assert_eq!(seen, 50);
    }

    #[test]
    fn obs_plane_gauges_track_residency_and_bytes() {
        let reg = MetricsRegistry::new();
        let a = reg.open_span(SpanKind::Invoke, SpanId::NONE, "kv", "get", 0);
        let b = reg.open_span(SpanKind::Invoke, SpanId::NONE, "dirsvc", "lookup", 1);
        let full = reg.obs_plane();
        assert_eq!(full.spans_resident, 2);
        assert_eq!(full.spans_resident_peak, 2);
        let per = std::mem::size_of::<SpanRecord>() as u64;
        let strings = ("kv".len() + "get".len() + "dirsvc".len() + "lookup".len()) as u64;
        assert_eq!(full.span_table_bytes, 2 * per + strings);
        reg.enable_retirement(0);
        reg.close_span(a, 5, true);
        reg.close_span(b, 6, true);
        let after = reg.obs_plane();
        assert_eq!(after.spans_resident, 0);
        assert_eq!(after.span_table_bytes, 0);
        assert_eq!(after.spans_resident_peak, 2);
        assert_eq!(after.span_table_bytes_peak, full.span_table_bytes);
        assert_eq!(after.spans_retired, 2);
    }

    #[test]
    fn self_measure_accumulates_when_armed() {
        let reg = MetricsRegistry::new();
        let sp = reg.open_span(SpanKind::Invoke, SpanId::NONE, "kv", "get", 0);
        reg.close_span(sp, 5, true);
        assert_eq!(reg.obs_plane().self_calls, 0, "off by default");
        reg.enable_self_measure();
        let sp = reg.open_span(SpanKind::Invoke, SpanId::NONE, "kv", "get", 10);
        reg.close_span(sp, 15, true);
        let obs = reg.obs_plane();
        assert_eq!(obs.self_calls, 2);
    }

    #[test]
    fn run_report_json_has_obs_section() {
        let reg = MetricsRegistry::new();
        reg.enable_retirement(2);
        for i in 0..4u64 {
            let sp = reg.open_span(SpanKind::Invoke, SpanId::NONE, "kv", "get", i);
            reg.close_span(sp, i + 1, true);
        }
        let json = reg.report(MetricsSnapshot::default(), 100).to_json();
        let parsed = json::parse(&json).expect("report json parses");
        let obs = parsed.get("obs").expect("obs object");
        assert_eq!(obs.u64_field("spans_retired"), Some(2));
        assert_eq!(obs.u64_field("spans_sampled"), Some(2));
        assert_eq!(obs.u64_field("spans_resident"), Some(2));
        assert_eq!(obs.u64_field("self_calls"), Some(0));
    }
}
