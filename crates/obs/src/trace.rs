//! The unified causal trace: span records and network-level events
//! merged into one time-ordered timeline.
//!
//! The simulator records *what the network did* ([`crate::SpanRecord`]s
//! live in the [`crate::MetricsRegistry`], simnet's trace ring holds
//! `Sent`/`Delivered`/... events). Neither alone explains a slow
//! request: the proxy principle hides binding, retransmission,
//! forwarding and migration behind one local call, so the evidence is
//! split across layers. A [`TraceSink`] merges both streams —
//! network events arrive in the crate-neutral [`NetEvent`] form so this
//! crate stays dependency-free — into a [`CausalTrace`] that exporters
//! ([`crate::export`]) and the critical-path analyzer
//! ([`crate::analysis`]) consume.
//!
//! The sink is bounded and honest about it: a full ring *counts* what
//! it evicts, and the every-Nth-span sampling knob counts what it
//! sampled away, so a truncated trace can never be mistaken for a
//! complete one.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;

use crate::{SpanId, SpanKind, SpanRecord};

/// A node/port location — the neutral mirror of simnet's `Endpoint`,
/// kept here so `obs` needs no simulator dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc {
    /// Node (machine) id.
    pub node: u32,
    /// Port on that node.
    pub port: u32,
}

impl Loc {
    /// Builds a location.
    pub fn new(node: u32, port: u32) -> Loc {
        Loc { node, port }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}:p{}", self.node, self.port)
    }
}

/// One network-level event with causal attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct NetEvent {
    /// When it happened (simulated nanoseconds).
    pub at_ns: u64,
    /// The span on whose behalf it happened, or [`SpanId::NONE`].
    pub span: SpanId,
    /// What happened.
    pub kind: NetEventKind,
}

/// The kinds of network/runtime events a simulator can contribute.
#[derive(Debug, Clone, PartialEq)]
pub enum NetEventKind {
    /// A datagram was handed to the network.
    Sent {
        /// Source endpoint.
        src: Loc,
        /// Destination endpoint.
        dst: Loc,
        /// Payload size.
        bytes: u64,
    },
    /// A datagram reached a destination mailbox.
    Delivered {
        /// Source endpoint.
        src: Loc,
        /// Destination endpoint.
        dst: Loc,
        /// Payload size.
        bytes: u64,
    },
    /// The loss model dropped a datagram.
    Dropped {
        /// Source endpoint.
        src: Loc,
        /// Destination endpoint.
        dst: Loc,
    },
    /// A partition, down node or unbound endpoint swallowed a datagram.
    Blackholed {
        /// Source endpoint.
        src: Loc,
        /// Destination endpoint.
        dst: Loc,
    },
    /// Several RPC envelopes were coalesced into one datagram.
    Batched {
        /// The batching endpoint.
        src: Loc,
        /// Where the batch went.
        dst: Loc,
        /// How many envelopes it carried.
        count: u64,
    },
    /// An RPC client gave up waiting and re-sent a request.
    Retransmit {
        /// The retransmitting client.
        src: Loc,
        /// The unresponsive server.
        dst: Loc,
        /// Attempt number (1 = first retransmission).
        attempt: u32,
    },
    /// A server finished executing a dispatched operation.
    ServerExecute {
        /// The executing server process.
        service: String,
        /// The operation.
        op: String,
        /// How long the handler ran (virtual time).
        dur_ns: u64,
    },
    /// A caching proxy answered a read locally.
    ProxyCacheHit {
        /// The proxied service.
        service: String,
        /// The operation.
        op: String,
    },
    /// A caching proxy had to go remote for a read.
    ProxyCacheMiss {
        /// The proxied service.
        service: String,
        /// The operation.
        op: String,
    },
    /// A forwarder redirected a request to the object's new home.
    Forwarded {
        /// The forwarder that answered.
        from: Loc,
        /// Where it pointed the caller.
        to: Loc,
    },
    /// An object moved between nodes (migration, checkout or checkin).
    Migrated {
        /// The service that moved.
        service: String,
        /// Where it was.
        from: Loc,
        /// Where it now lives.
        to: Loc,
    },
}

impl NetEventKind {
    /// A stable lowercase tag, used by the exporters.
    pub fn tag(&self) -> &'static str {
        match self {
            NetEventKind::Sent { .. } => "sent",
            NetEventKind::Delivered { .. } => "delivered",
            NetEventKind::Dropped { .. } => "dropped",
            NetEventKind::Blackholed { .. } => "blackholed",
            NetEventKind::Batched { .. } => "batched",
            NetEventKind::Retransmit { .. } => "retransmit",
            NetEventKind::ServerExecute { .. } => "server_execute",
            NetEventKind::ProxyCacheHit { .. } => "cache_hit",
            NetEventKind::ProxyCacheMiss { .. } => "cache_miss",
            NetEventKind::Forwarded { .. } => "forwarded",
            NetEventKind::Migrated { .. } => "migrated",
        }
    }
}

/// One entry of the merged timeline.
#[derive(Debug, Clone)]
pub enum CausalEvent {
    /// A span (ordered by its open instant).
    Span(SpanRecord),
    /// A network-level event.
    Net(NetEvent),
}

impl CausalEvent {
    /// The instant this entry is ordered by.
    pub fn at_ns(&self) -> u64 {
        match self {
            CausalEvent::Span(s) => s.start_ns,
            CausalEvent::Net(e) => e.at_ns,
        }
    }

    /// The span this entry belongs to ([`SpanId::NONE`] for
    /// unattributed network traffic).
    pub fn span(&self) -> SpanId {
        match self {
            CausalEvent::Span(s) => s.id,
            CausalEvent::Net(e) => e.span,
        }
    }
}

/// Collects span records and network events, then merges them into a
/// [`CausalTrace`].
///
/// The network-event side is a bounded ring (oldest events fall off and
/// are counted); span records are small and kept unconditionally so the
/// analyzer can always resolve parent chains. The sampling knob keeps
/// every Nth *root* span — a sampled-out root drops its entire subtree
/// and all attributed network events, which keeps sampled traces
/// self-consistent instead of leaving orphan events.
#[derive(Debug)]
pub struct TraceSink {
    capacity: usize,
    sample_every: u64,
    spans: Vec<SpanRecord>,
    net: VecDeque<NetEvent>,
    evicted: u64,
    upstream_evicted: u64,
}

/// Default network-event capacity: enough for every experiment in the
/// bench suite without eviction.
pub const DEFAULT_SINK_CAPACITY: usize = 1 << 20;

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::new()
    }
}

impl TraceSink {
    /// A sink with the default capacity and no sampling.
    pub fn new() -> TraceSink {
        TraceSink::with_capacity(DEFAULT_SINK_CAPACITY)
    }

    /// A sink holding at most `capacity` network events.
    pub fn with_capacity(capacity: usize) -> TraceSink {
        TraceSink {
            capacity: capacity.max(1),
            sample_every: 1,
            spans: Vec::new(),
            net: VecDeque::new(),
            evicted: 0,
            upstream_evicted: 0,
        }
    }

    /// Keeps only every `n`th root span (and its events). `0` and `1`
    /// both mean "keep everything".
    pub fn sample_every(mut self, n: u64) -> TraceSink {
        self.sample_every = n.max(1);
        self
    }

    /// Accounts for events lost *before* they reached this sink (e.g.
    /// the simulator's own trace ring overflowed).
    pub fn note_upstream_evicted(&mut self, n: u64) {
        self.upstream_evicted += n;
    }

    /// Adds one span record.
    pub fn push_span(&mut self, span: SpanRecord) {
        self.spans.push(span);
    }

    /// Adds one network event; evicts (and counts) the oldest when full.
    pub fn push_net(&mut self, event: NetEvent) {
        if self.net.len() >= self.capacity {
            self.net.pop_front();
            self.evicted += 1;
        }
        self.net.push_back(event);
    }

    /// Network events evicted by this sink so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Merges everything collected into a time-ordered [`CausalTrace`],
    /// applying the sampling knob.
    pub fn build(self) -> CausalTrace {
        let TraceSink {
            sample_every,
            spans,
            net,
            evicted,
            upstream_evicted,
            ..
        } = self;

        // Parent map over *all* spans, so sampling decisions and later
        // root resolution agree even for spans that get sampled away.
        let parents: HashMap<SpanId, SpanId> = spans.iter().map(|s| (s.id, s.parent)).collect();
        let root_of = |mut id: SpanId| -> SpanId {
            let mut hops = 0;
            while let Some(&p) = parents.get(&id) {
                if !p.is_some() || hops > 64 {
                    break;
                }
                id = p;
                hops += 1;
            }
            id
        };
        let keep = |span: SpanId| -> bool {
            sample_every <= 1 || !span.is_some() || root_of(span).0 % sample_every == 0
        };

        let mut sampled_out_spans = 0u64;
        let mut sampled_out_events = 0u64;
        let mut events: Vec<CausalEvent> = Vec::with_capacity(spans.len() + net.len());
        for s in spans {
            if keep(s.id) {
                events.push(CausalEvent::Span(s));
            } else {
                sampled_out_spans += 1;
            }
        }
        for e in net {
            if keep(e.span) {
                events.push(CausalEvent::Net(e));
            } else {
                sampled_out_events += 1;
            }
        }
        // Stable: ties keep span-open entries ahead of same-instant
        // network events, which is the causal order (the send happens
        // inside the already-open span).
        events.sort_by_key(|e| e.at_ns());
        CausalTrace {
            events,
            evicted: evicted + upstream_evicted,
            sampled_out_spans,
            sampled_out_events,
        }
    }
}

/// The merged, time-ordered causal trace.
#[derive(Debug, Clone, Default)]
pub struct CausalTrace {
    /// All surviving entries, ordered by [`CausalEvent::at_ns`].
    pub events: Vec<CausalEvent>,
    /// Network events lost to ring eviction (sink + upstream). A
    /// nonzero value means the timeline has a hole at the *start*.
    pub evicted: u64,
    /// Spans removed by the sampling knob.
    pub sampled_out_spans: u64,
    /// Network events removed because their root span was sampled out.
    pub sampled_out_events: u64,
}

impl CausalTrace {
    /// True when nothing was evicted or sampled away.
    pub fn is_complete(&self) -> bool {
        self.evicted == 0 && self.sampled_out_spans == 0 && self.sampled_out_events == 0
    }

    /// The span records in the trace, in open order.
    pub fn spans(&self) -> impl Iterator<Item = &SpanRecord> {
        self.events.iter().filter_map(|e| match e {
            CausalEvent::Span(s) => Some(s),
            CausalEvent::Net(_) => None,
        })
    }

    /// The network events in the trace, in time order.
    pub fn net_events(&self) -> impl Iterator<Item = &NetEvent> {
        self.events.iter().filter_map(|e| match e {
            CausalEvent::Net(n) => Some(n),
            CausalEvent::Span(_) => None,
        })
    }

    /// Span id → record lookup.
    pub fn span_index(&self) -> HashMap<SpanId, &SpanRecord> {
        self.spans().map(|s| (s.id, s)).collect()
    }

    /// Resolves the root ancestor of `id` (itself if parentless or
    /// unknown).
    pub fn root_of(&self, id: SpanId) -> SpanId {
        let index = self.span_index();
        let mut cur = id;
        let mut hops = 0;
        while let Some(rec) = index.get(&cur) {
            if !rec.parent.is_some() || hops > 64 {
                break;
            }
            cur = rec.parent;
            hops += 1;
        }
        cur
    }

    /// The root request spans: closed invokes with no tracked parent,
    /// slowest first. These are the units the critical-path analyzer
    /// explains.
    pub fn root_requests(&self) -> Vec<&SpanRecord> {
        let index = self.span_index();
        let mut roots: Vec<&SpanRecord> = self
            .spans()
            .filter(|s| {
                s.kind == SpanKind::Invoke
                    && s.end_ns.is_some()
                    && (!s.parent.is_some() || !index.contains_key(&s.parent))
            })
            .collect();
        roots.sort_by_key(|s| std::cmp::Reverse(s.duration_ns().unwrap_or(0)));
        roots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: u64, kind: SpanKind, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            id: SpanId(id),
            parent: SpanId(parent),
            kind,
            service: "svc".into(),
            op: "op".into(),
            start_ns: start,
            end_ns: Some(end),
            ok: Some(true),
            retransmissions: 0,
            replies: 1,
        }
    }

    fn sent(at: u64, span: u64) -> NetEvent {
        NetEvent {
            at_ns: at,
            span: SpanId(span),
            kind: NetEventKind::Sent {
                src: Loc::new(0, 1),
                dst: Loc::new(1, 10),
                bytes: 64,
            },
        }
    }

    #[test]
    fn merge_orders_by_time() {
        let mut sink = TraceSink::new();
        sink.push_net(sent(100, 1));
        sink.push_span(span(1, 0, SpanKind::Invoke, 100, 400));
        sink.push_net(sent(50, 1));
        let trace = sink.build();
        let ats: Vec<u64> = trace.events.iter().map(|e| e.at_ns()).collect();
        assert_eq!(ats, vec![50, 100, 100]);
        assert!(trace.is_complete());
        assert_eq!(trace.spans().count(), 1);
        assert_eq!(trace.net_events().count(), 2);
    }

    #[test]
    fn ring_evicts_and_counts() {
        let mut sink = TraceSink::with_capacity(2);
        for i in 0..5 {
            sink.push_net(sent(i, 0));
        }
        assert_eq!(sink.evicted(), 3);
        sink.note_upstream_evicted(7);
        let trace = sink.build();
        assert_eq!(trace.evicted, 10);
        assert!(!trace.is_complete());
        assert_eq!(trace.net_events().count(), 2);
    }

    #[test]
    fn sampling_keeps_whole_request_subtrees() {
        let mut sink = TraceSink::new().sample_every(2);
        // Root 2 (kept: 2 % 2 == 0) with child dispatch 5; root 3
        // (sampled out) with child dispatch 4.
        sink.push_span(span(2, 0, SpanKind::Invoke, 0, 100));
        sink.push_span(span(5, 2, SpanKind::Dispatch, 10, 60));
        sink.push_span(span(3, 0, SpanKind::Invoke, 0, 100));
        sink.push_span(span(4, 3, SpanKind::Dispatch, 10, 60));
        sink.push_net(sent(5, 2));
        sink.push_net(sent(6, 5));
        sink.push_net(sent(7, 3));
        sink.push_net(sent(8, 4));
        sink.push_net(sent(9, 0)); // unattributed: always kept
        let trace = sink.build();
        assert_eq!(trace.sampled_out_spans, 2);
        assert_eq!(trace.sampled_out_events, 2);
        let kept: Vec<u64> = trace.net_events().map(|e| e.span.0).collect();
        assert_eq!(kept, vec![2, 5, 0]);
    }

    #[test]
    fn root_requests_excludes_dispatches_and_open_spans() {
        let mut sink = TraceSink::new();
        sink.push_span(span(1, 0, SpanKind::Invoke, 0, 500));
        sink.push_span(span(2, 1, SpanKind::Dispatch, 10, 60));
        let mut open = span(3, 0, SpanKind::Invoke, 0, 0);
        open.end_ns = None;
        sink.push_span(open);
        sink.push_span(span(4, 0, SpanKind::Oneway, 5, 5));
        let trace = sink.build();
        let roots = trace.root_requests();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].id, SpanId(1));
        assert_eq!(trace.root_of(SpanId(2)), SpanId(1));
    }
}
